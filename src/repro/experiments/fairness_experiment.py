"""The edge-usage fairness experiment (Section 1's "locally fair" claim).

The experiment measures, on the star, the double star and a random regular
graph:

* the per-edge traversal distribution of a stationary agent population (the
  agent protocols' "bandwidth" usage), which the paper argues is uniform over
  edges, and
* the per-edge distribution of *sampled exchanges* under push-pull (every call
  a vertex makes, informing or not), which on the double star starves the
  single bridge edge: it is selected with probability only O(1/n) per round.

The headline numbers are the Gini coefficient of the per-edge usage counts and
the maximum single-edge share of the total traffic.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List

import numpy as np

from ..analysis.fairness import FairnessReport, edge_usage_from_walks, fairness_from_counts
from ..core.engine import Engine
from ..core.observers import EdgeUsageObserver, ObserverGroup
from ..core.protocols import make_protocol
from ..core.rng import derive_seed
from ..graphs.double_star import double_star
from ..graphs.graph import Graph
from ..graphs.regular import random_regular_graph
from ..graphs.star import star
from ..store import cell_key, document_cell_payload, resolve_store
from .regular_graphs import regular_degree_for

__all__ = [
    "FairnessExperimentResult",
    "fairness_cell",
    "run_fairness_experiment",
    "default_fairness_graphs",
]


def default_fairness_graphs(size: int, seed: int) -> Dict[str, Graph]:
    """The three graphs the fairness experiment compares."""
    degree = regular_degree_for(size)
    rng = np.random.default_rng(seed)
    return {
        "star": star(size),
        "double-star": double_star(size),
        "random-regular": random_regular_graph(size, degree, rng),
    }


@dataclass
class FairnessExperimentResult:
    """Fairness reports keyed by (graph label, mechanism label)."""

    size: int
    reports: Dict[str, Dict[str, FairnessReport]] = field(default_factory=dict)

    def gini(self, graph_label: str, mechanism: str) -> float:
        """Convenience accessor for the Gini coefficient of one cell."""
        return self.reports[graph_label][mechanism].gini

    def table_rows(self) -> List[Dict[str, object]]:
        """Rows for the report: one per (graph, mechanism)."""
        rows = []
        for graph_label in sorted(self.reports):
            for mechanism, report in sorted(self.reports[graph_label].items()):
                rows.append(
                    {
                        "graph": graph_label,
                        "mechanism": mechanism,
                        "edges": report.num_edges,
                        "total uses": report.total_uses,
                        "gini": report.gini,
                        "max edge share": report.max_share,
                        "min edge share": report.min_share,
                        "unused edges": report.unused_edges,
                    }
                )
        return rows

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (stored as a ``"fairness"`` document cell)."""
        return {
            "size": int(self.size),
            "reports": {
                graph_label: {mechanism: asdict(r) for mechanism, r in cells.items()}
                for graph_label, cells in self.reports.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FairnessExperimentResult":
        """Invert :meth:`to_dict` (all reports are flat dataclasses)."""
        result = cls(size=int(payload["size"]))
        result.reports = {
            graph_label: {
                mechanism: FairnessReport(**r) for mechanism, r in cells.items()
            }
            for graph_label, cells in payload["reports"].items()
        }
        return result


def _push_pull_edge_usage(graph: Graph, source: int, seed: int, trials: int) -> FairnessReport:
    """Aggregate sampled-exchange edge usage of push-pull over several runs."""
    combined: Dict[tuple, int] = {}
    for trial in range(trials):
        observer = EdgeUsageObserver()
        engine = Engine(record_history=False)
        protocol = make_protocol("push-pull", track_all_exchanges=True)
        engine.run(
            protocol,
            graph,
            source,
            seed=derive_seed(seed, "fairness-ppull", trial),
            observers=ObserverGroup([observer]),
        )
        for edge, count in observer.counts.items():
            combined[edge] = combined.get(edge, 0) + count
    return fairness_from_counts(graph, combined)


def fairness_cell(
    *,
    size: int = 256,
    walk_rounds: int = 200,
    push_pull_trials: int = 5,
    base_seed: int = 0,
) -> Dict[str, Any]:
    """The experiment's document-cell payload (hash with ``cell_key``)."""
    return document_cell_payload(
        "fairness",
        {
            "size": int(size),
            "walk_rounds": int(walk_rounds),
            "push_pull_trials": int(push_pull_trials),
            "base_seed": int(base_seed),
        },
    )


def run_fairness_experiment(
    *,
    size: int = 256,
    walk_rounds: int = 200,
    push_pull_trials: int = 5,
    base_seed: int = 0,
    store=None,
    force: bool = False,
) -> FairnessExperimentResult:
    """Measure edge-usage fairness of agents vs push-pull on three graphs.

    ``store`` / ``force`` follow the :func:`~repro.store.resolve_store`
    rules: with a store, the whole experiment is cached as one *document
    cell* keyed on its full argument set, so ``report --from-store`` can
    regenerate the fairness section with zero simulation.
    """
    store_obj = resolve_store(store)
    cell = None
    key = None
    if store_obj is not None:
        cell = fairness_cell(
            size=size,
            walk_rounds=walk_rounds,
            push_pull_trials=push_pull_trials,
            base_seed=base_seed,
        )
        key = cell_key(cell)
        if not force:
            document = store_obj.get_document(key, kind="fairness")
            if document is not None:
                return FairnessExperimentResult.from_dict(document)
    graphs = default_fairness_graphs(size, derive_seed(base_seed, "fairness-graphs", size))
    result = FairnessExperimentResult(size=size)
    for label, graph in graphs.items():
        agent_report = edge_usage_from_walks(
            graph,
            rounds=walk_rounds,
            seed=derive_seed(base_seed, "fairness-walks", label),
            lazy=graph.is_bipartite(),
        )
        ppull_report = _push_pull_edge_usage(
            graph,
            source=2 if graph.num_vertices > 2 else 0,
            seed=derive_seed(base_seed, "fairness-ppull", label),
            trials=push_pull_trials,
        )
        result.reports[label] = {
            "agents (all traversals)": agent_report,
            "push-pull (sampled edges)": ppull_report,
        }
    if store_obj is not None:
        store_obj.put_document(key, result.to_dict(), kind="fairness", cell=cell)
    return result
