"""Shared helpers for the benchmark harness (imported by the bench modules)."""

from __future__ import annotations

import numpy as np

from repro import simulate
from repro.core.batch import run_batch, supports_batched

__all__ = ["mean_broadcast_time"]


def mean_broadcast_time(protocol, graph, source, trials=3, **kwargs):
    """Mean broadcast time over a few completed runs (asserts completion).

    Uses the batched multi-trial backend (one vectorized run for all trials)
    for every protocol — all six have kernels — falling back to per-trial
    sequential runs only when explicit engine observers are supplied.
    Trial ``t`` is seeded with ``t`` in both paths.
    """
    max_rounds = kwargs.pop("max_rounds", None)
    observers = kwargs.pop("observers", None)
    if observers is None and supports_batched(protocol, kwargs):
        result = run_batch(
            protocol, graph, source, seeds=range(trials), max_rounds=max_rounds, **kwargs
        )
        assert result.completed.all(), f"{protocol} did not complete on {graph.name}"
        return float(result.broadcast_times.mean())
    times = []
    for seed in range(trials):
        result = simulate(
            protocol,
            graph,
            source=source,
            seed=seed,
            max_rounds=max_rounds,
            observers=observers,
            **kwargs,
        )
        assert result.completed, f"{protocol} did not complete on {graph.name}"
        times.append(result.broadcast_time)
    return float(np.mean(times))
