"""Content-addressed result store and resumable sweep orchestration.

Every (graph, protocol, seeds, backend) cell in this package is a pure
function of its spec, so finished cells are cached *exactly*: the store maps
a canonical cell key (:mod:`repro.store.keys`) to a compressed artifact
holding the full :class:`~repro.core.results.TrialSet`
(:mod:`repro.store.artifacts`), sweeps journal their progress for resume and
garbage-collection anchoring (:mod:`repro.store.journal`), and
:mod:`repro.store.orchestrator` resolves (spec, case) pairs into the cell
plans the experiment runner executes and the reporting layer looks up.

Storage is pluggable (:mod:`repro.store.backends`): the same
:class:`ResultStore` facade runs over a local directory
(:class:`~repro.store.backends.LocalBackend`) or over the HTTP service of
:mod:`repro.store.service` (``repro store serve``) through
:class:`~repro.store.backends.RemoteBackend`, which read-through-caches
every fetched object locally so a warm central store serves many laptops
and CI runs while each object crosses the network at most once.  Started
with an auth token, the service additionally exposes an authenticated,
server-verified write path plus a lease-based work queue
(:mod:`repro.store.farm`), and ``repro worker``
(:mod:`repro.store.worker`) turns any machine into a stateless compute
node that leases missing cells, simulates them and publishes the results
back — crash-safe on both sides by construction.

Enable it with ``store=`` on :func:`repro.experiments.runner.run_trial_set`
/ :func:`~repro.experiments.runner.run_experiment`, the ``--store`` CLI flag
or the ``REPRO_STORE`` environment variable (a directory path or an
``http(s)://host:port`` service URL); manage it with
``repro store serve|submit|status|ls|info|gc|export`` and ``repro worker``.
"""

from .artifacts import (
    STORE_ENV_VAR,
    ResultStore,
    StoreConflictError,
    StoreCorruptionError,
    StoreError,
    StoreUnavailableError,
    resolve_store,
)
from .backends import (
    CACHE_ENV_VAR,
    LocalBackend,
    RemoteBackend,
    StoreBackend,
    resolve_backend,
)
from .farm import FarmError, SweepFarm, UnknownLeaseError, UnknownSweepError
from .journal import SweepJournal, sweep_id
from .keys import (
    SEMANTICS_VERSION,
    STORE_FORMAT_VERSION,
    canonical_json,
    cell_key,
    document_cell_payload,
    dynamics_spec,
    graph_fingerprint,
    trial_cell_payload,
)
from .orchestrator import (
    CellPlan,
    GraphStub,
    ManifestMismatchError,
    SweepCellPlan,
    resolve_cell,
    resolve_sweep_plans,
    sweep_payload,
)
from .service import StoreService, serve
from .worker import run_worker, submit_sweep, sweep_status

__all__ = [
    "CACHE_ENV_VAR",
    "CellPlan",
    "FarmError",
    "GraphStub",
    "LocalBackend",
    "ManifestMismatchError",
    "RemoteBackend",
    "ResultStore",
    "SEMANTICS_VERSION",
    "STORE_ENV_VAR",
    "STORE_FORMAT_VERSION",
    "StoreBackend",
    "StoreConflictError",
    "StoreCorruptionError",
    "StoreError",
    "StoreService",
    "StoreUnavailableError",
    "SweepCellPlan",
    "SweepFarm",
    "SweepJournal",
    "UnknownLeaseError",
    "UnknownSweepError",
    "canonical_json",
    "cell_key",
    "document_cell_payload",
    "dynamics_spec",
    "graph_fingerprint",
    "resolve_backend",
    "resolve_cell",
    "resolve_store",
    "resolve_sweep_plans",
    "run_worker",
    "serve",
    "submit_sweep",
    "sweep_id",
    "sweep_payload",
    "sweep_status",
    "trial_cell_payload",
]
