"""repro — reproduction of "How to Spread a Rumor: Call Your Neighbors or Take a Walk?".

The package simulates the four information-dissemination protocols compared by
Giakkoupis, Mallmann-Trenn and Saribekyan (PODC 2019) — PUSH, PUSH-PULL,
VISIT-EXCHANGE and MEET-EXCHANGE — on the graph families from the paper, and
ships the experiment harness that reproduces every claim of its evaluation.

Quickstart
----------
>>> from repro import simulate, graphs
>>> graph = graphs.double_star(200)
>>> result = simulate("push-pull", graph, source=2, seed=1)
>>> result.completed
True

See ``examples/quickstart.py`` for a guided tour and ``DESIGN.md`` for the
full system inventory.
"""

from __future__ import annotations

from typing import Optional

from . import analysis, core, graphs, store, theory
from .core import (
    AgentSystem,
    BatchResult,
    run_batch,
    CoupledPushVisitExchange,
    Engine,
    HybridPushPullVisitProtocol,
    MeetExchangeProtocol,
    PROTOCOL_REGISTRY,
    PullProtocol,
    PushProtocol,
    PushPullProtocol,
    RunResult,
    TrialSet,
    VisitExchangeProtocol,
    make_protocol,
)
from .core.observers import ObserverGroup
from .graphs import Graph
from .store import ResultStore

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "simulate",
    "simulate_batch",
    "run_batch",
    "BatchResult",
    "Graph",
    "Engine",
    "RunResult",
    "TrialSet",
    "AgentSystem",
    "PushProtocol",
    "PushPullProtocol",
    "PullProtocol",
    "VisitExchangeProtocol",
    "MeetExchangeProtocol",
    "HybridPushPullVisitProtocol",
    "CoupledPushVisitExchange",
    "PROTOCOL_REGISTRY",
    "make_protocol",
    "ResultStore",
    "graphs",
    "core",
    "store",
    "theory",
    "analysis",
]


def simulate(
    protocol: str,
    graph: Graph,
    source: int = 0,
    *,
    seed=None,
    max_rounds: Optional[int] = None,
    observers: Optional[ObserverGroup] = None,
    **protocol_kwargs,
) -> RunResult:
    """Run a single protocol instance and return its :class:`RunResult`.

    This is the one-call convenience entry point; experiments that need
    repeated trials, sweeps or custom instrumentation should use
    :class:`repro.core.Engine` and :mod:`repro.experiments` directly.

    Parameters
    ----------
    protocol:
        Registry name: ``"push"``, ``"push-pull"``, ``"pull"``,
        ``"visit-exchange"``, ``"meet-exchange"`` or ``"hybrid-ppull-visitx"``.
    graph:
        The graph to broadcast on (see :mod:`repro.graphs` for generators).
    source:
        The source vertex ``s``.
    seed:
        Seed or :class:`numpy.random.Generator` for reproducibility.
    max_rounds:
        Round budget; defaults to a generous bound based on the graph size.
    protocol_kwargs:
        Extra arguments forwarded to the protocol constructor (e.g.
        ``agent_density=2.0`` for the agent-based protocols).
    """
    instance = make_protocol(protocol, **protocol_kwargs)
    engine = Engine(max_rounds=max_rounds)
    return engine.run(instance, graph, source, seed=seed, observers=observers)


def simulate_batch(
    protocol: str,
    graph: Graph,
    source: int = 0,
    *,
    trials: int,
    seed: int = 0,
    max_rounds: Optional[int] = None,
    **protocol_kwargs,
) -> BatchResult:
    """Run ``trials`` independent trials of one protocol simultaneously.

    This is the batched counterpart of :func:`simulate`: all trials advance
    together on 2-D numpy state (see :mod:`repro.core.batch`), which is an
    order of magnitude faster than looping :func:`simulate` when estimating
    broadcast-time statistics.  Trial ``t`` draws from its own stream derived
    from ``(seed, "simulate-batch", t)``, so per-trial results are
    reproducible and independent of the batch size.

    Every registry protocol has a batched kernel; per-round histories and
    per-trial observers are available through
    :func:`repro.core.batch.run_batch` directly.
    """
    from .core.batch import trial_seeds

    seeds = trial_seeds(seed, "simulate-batch", trials=trials)
    return run_batch(
        protocol, graph, source, seeds=seeds, max_rounds=max_rounds, **protocol_kwargs
    )
