"""Corpus manifests: many scenarios, one resumable store-backed sweep.

A *corpus* is a declarative YAML (or JSON) document naming a set of
scenarios (see :class:`repro.scenarios.spec.ScenarioSpec`); running it is
nothing more than running each scenario's compiled
:class:`~repro.experiments.config.ExperimentConfig` through
:func:`repro.experiments.runner.run_experiment` against one result store —
so the corpus inherits journaling, manifest-trusted zero-construction warm
starts, per-cell resume, process-pool scheduling and farm dispatch without
any new execution machinery.  Multi-rumor contention blocks are the one
addition: they run the :class:`~repro.extensions.multi_rumor` simulator and
cache the outcome as content-addressed *document* cells keyed on the
versioned builder spec (never on a built graph), so warm reruns skip them
without constructing anything either.

Manifest schema
---------------
::

    corpus: example-corpus          # optional corpus name
    defaults:                       # optional; merged into every scenario
      trials: 3
      protocols: [push, push-pull, visit-exchange]
    scenarios:
      - name: communities-sbm      # becomes the experiment id
        graph:                     # spec dict or "kind:key=value" string
          kind: sbm
          num_blocks: 8
          p_in: 0.05
          p_out: 0.001
        sizes: [256, 512, 1024]
        trials: 3
        source: max-degree         # vertex id | zero|max-degree|min-degree|random
        dynamics: bernoulli-edges:rate=0.1,seed=7   # optional, any dynamics spec
        max_rounds: {model: n log n, factor: 40}    # or a plain integer
        rumors:                    # optional multi-rumor contention block
          count: 4                 # rumors injected ...
          interval: 8              # ... every `interval` rounds
          agent_density: 1.0
          trials: 2

``graph.kind: file`` entries take a ``path`` (resolved relative to the
manifest's directory), an optional ``format`` (``edges``/``csv``/``mtx``)
and ``canonicalize`` flag — see :mod:`repro.scenarios.ingest` for the
strictness contract.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.rng import derive_seed
from ..experiments.config import ExperimentConfig
from ..experiments.registry import register
from ..graphs.graph import Graph
from .spec import ScenarioError, ScenarioSpec, _scenario_from_dict

__all__ = [
    "Corpus",
    "CorpusRunSummary",
    "ScenarioRunSummary",
    "corpus_report",
    "corpus_status",
    "load_corpus",
    "register_corpus",
    "run_corpus",
]


@dataclass(frozen=True)
class Corpus:
    """A loaded corpus manifest: its name, origin path and scenarios."""

    name: str
    path: Optional[str]
    scenarios: Tuple[ScenarioSpec, ...]

    def scenario(self, name: str) -> ScenarioSpec:
        for spec in self.scenarios:
            if spec.name == name:
                return spec
        raise ScenarioError(
            f"corpus {self.name!r} has no scenario {name!r}; it has: "
            + ", ".join(s.name for s in self.scenarios)
        )


def _parse_manifest_text(text: str, path: Path) -> Dict[str, Any]:
    """Parse manifest bytes: JSON by suffix, YAML when importable."""
    suffix = path.suffix.lower()
    if suffix == ".json":
        return json.loads(text)
    try:
        import yaml
    except ImportError:
        # YAML is an optional extra; JSON is the dependency-free fallback.
        try:
            return json.loads(text)
        except json.JSONDecodeError:
            raise ScenarioError(
                f"{path}: reading YAML manifests requires PyYAML "
                "(pip install 'repro-rumor-spreading[scenarios]') — "
                "or provide the manifest as JSON"
            ) from None
    loaded = yaml.safe_load(text)
    if not isinstance(loaded, dict):
        raise ScenarioError(f"{path}: corpus manifest must be a mapping")
    return loaded


def load_corpus(path) -> Corpus:
    """Load and validate a corpus manifest from a YAML/JSON file.

    Relative ``file`` graph-source paths are resolved against the
    manifest's own directory, so a corpus and its fixtures move together.
    """
    path = Path(path)
    if not path.exists():
        raise ScenarioError(f"corpus manifest {str(path)!r} does not exist")
    raw = _parse_manifest_text(path.read_text(encoding="utf-8"), path)
    if not isinstance(raw, dict):
        raise ScenarioError(f"{path}: corpus manifest must be a mapping")
    unknown = sorted(set(raw) - {"corpus", "defaults", "scenarios"})
    if unknown:
        raise ScenarioError(
            f"{path}: unknown top-level key(s): {', '.join(unknown)}"
        )
    entries = raw.get("scenarios")
    if not isinstance(entries, list) or not entries:
        raise ScenarioError(f"{path}: manifest needs a non-empty 'scenarios' list")
    defaults = raw.get("defaults") or {}
    if not isinstance(defaults, dict):
        raise ScenarioError(f"{path}: 'defaults' must be a mapping")
    scenarios: List[ScenarioSpec] = []
    seen = set()
    for entry in entries:
        if not isinstance(entry, dict):
            raise ScenarioError(f"{path}: each scenario entry must be a mapping")
        entry = dict(entry)
        graph = entry.get("graph")
        if isinstance(graph, dict) and graph.get("kind") == "file":
            graph = dict(graph)
            file_path = Path(str(graph.get("path", "")))
            if not file_path.is_absolute():
                graph["path"] = str((path.parent / file_path).resolve())
            entry["graph"] = graph
        spec = _scenario_from_dict(entry, defaults=defaults)
        if spec.name in seen:
            raise ScenarioError(f"{path}: duplicate scenario name {spec.name!r}")
        seen.add(spec.name)
        scenarios.append(spec)
    return Corpus(
        name=str(raw.get("corpus", path.stem)),
        path=str(path),
        scenarios=tuple(scenarios),
    )


def _as_corpus(corpus) -> Corpus:
    if isinstance(corpus, Corpus):
        return corpus
    return load_corpus(corpus)


def register_corpus(corpus) -> List[str]:
    """Register every scenario with the experiment registry (idempotent).

    After this, the scenarios are ordinary experiment ids: ``repro run``,
    ``repro report`` and the store service's ``/report/<id>`` sections all
    see them.  Re-registering under the same name replaces the factory, so
    reloading a manifest is safe.
    """
    corpus = _as_corpus(corpus)
    ids: List[str] = []
    for spec in corpus.scenarios:
        register(spec.name, _ScenarioFactory(spec), replace=True)
        ids.append(spec.name)
    return ids


class _ScenarioFactory:
    """A named factory so registry entries stay introspectable (and picklable)."""

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec

    def __call__(self) -> ExperimentConfig:
        return self.spec.to_config()


@dataclass
class ScenarioRunSummary:
    """Per-scenario outcome of one corpus run (or status probe)."""

    name: str
    total_cells: int
    computed: int
    cached: int
    rumor_cells: int = 0
    rumor_computed: int = 0

    @property
    def missing(self) -> int:
        return self.total_cells - self.computed - self.cached

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "cells": self.total_cells,
            "computed": self.computed,
            "cached": self.cached,
            "rumor_cells": self.rumor_cells,
            "rumor_computed": self.rumor_computed,
        }


@dataclass
class CorpusRunSummary:
    """Whole-corpus outcome: per-scenario counts plus construction audit."""

    corpus: str
    scenarios: List[ScenarioRunSummary] = field(default_factory=list)
    graph_constructions: int = 0

    @property
    def computed(self) -> int:
        return sum(s.computed + s.rumor_computed for s in self.scenarios)

    @property
    def cached(self) -> int:
        return sum(
            s.cached + (s.rumor_cells - s.rumor_computed) for s in self.scenarios
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "corpus": self.corpus,
            "computed": self.computed,
            "cached": self.cached,
            "graph_constructions": self.graph_constructions,
            "scenarios": [s.as_dict() for s in self.scenarios],
        }


def _select(corpus: Corpus, names: Optional[Sequence[str]]) -> List[ScenarioSpec]:
    if not names:
        return list(corpus.scenarios)
    return [corpus.scenario(name) for name in names]


def _rumor_plan(
    spec: ScenarioSpec,
    config: ExperimentConfig,
    *,
    base_seed: int,
) -> List[Dict[str, Any]]:
    """Derive the multi-rumor document-cell descriptions — no construction.

    One document per sweep size; the cell params embed the versioned
    builder spec (not a graph fingerprint), the derived case seed and the
    per-trial seeds, so the key resolves from the manifest alone and a
    cached document is trusted exactly as far as the builder registry
    vouches for the spec.
    """
    rumors = dict(spec.rumors or {})
    unknown = sorted(
        set(rumors)
        - {"count", "interval", "agent_density", "num_agents", "lazy", "trials", "max_rounds"}
    )
    if unknown:
        raise ScenarioError(
            f"scenario {spec.name!r}: unknown rumors key(s): {', '.join(unknown)}"
        )
    count = int(rumors.get("count", 4))
    interval = int(rumors.get("interval", 8))
    trials = int(rumors.get("trials", spec.trials))
    if count < 1 or interval < 0 or trials < 1:
        raise ScenarioError(
            f"scenario {spec.name!r}: rumors needs count >= 1, interval >= 0, "
            "trials >= 1"
        )
    plans = []
    for size in config.sizes:
        case_seed = derive_seed(base_seed, config.experiment_id, "graph", size)
        builder = config.graph_builder.case_spec(size, case_seed)
        seeds = [
            derive_seed(base_seed, config.experiment_id, "rumors", size, trial)
            for trial in range(trials)
        ]
        params = {
            "scenario": spec.name,
            "size": int(size),
            "case_seed": int(case_seed),
            "builder": builder,
            "seeds": seeds,
            "count": count,
            "interval": interval,
            "agent_density": float(rumors.get("agent_density", 1.0)),
            "num_agents": rumors.get("num_agents"),
            "lazy": bool(rumors.get("lazy", False)),
            "max_rounds": rumors.get("max_rounds"),
        }
        plans.append(params)
    return plans


def _run_rumor_cell(
    params: Dict[str, Any], config: ExperimentConfig
) -> Dict[str, Any]:
    """Execute one multi-rumor document cell (the cold path)."""
    import numpy as np

    from ..extensions.multi_rumor import MultiRumorVisitExchange, RumorInjection

    case = config.build_case(params["size"], params["case_seed"])
    graph = case.graph
    simulator = MultiRumorVisitExchange(
        agent_density=params["agent_density"],
        num_agents=params["num_agents"],
        lazy=params["lazy"],
    )
    trials = []
    for seed in params["seeds"]:
        source_rng = np.random.default_rng([int(seed), 0x10B07])
        injections = [
            RumorInjection(
                round_index=i * params["interval"],
                source=int(source_rng.integers(graph.num_vertices)),
                label=f"rumor-{i}",
            )
            for i in range(params["count"])
        ]
        outcome = simulator.run(
            graph,
            injections,
            seed=seed,
            max_rounds=params["max_rounds"],
        )
        trials.append(
            {
                "seed": int(seed),
                "num_agents": outcome.num_agents,
                "rounds_executed": outcome.rounds_executed,
                "broadcast_times": outcome.broadcast_times,
                "all_completed": outcome.all_completed,
                "mean_broadcast_time": outcome.mean_broadcast_time(),
                "max_broadcast_time": outcome.max_broadcast_time(),
            }
        )
    return {
        "scenario": params["scenario"],
        "size": params["size"],
        "num_vertices": int(graph.num_vertices),
        "count": params["count"],
        "interval": params["interval"],
        "trials": trials,
    }


def _rumor_key(params: Dict[str, Any]) -> str:
    from ..store.keys import cell_key, document_cell_payload

    return cell_key(document_cell_payload("multi-rumor", params))


def run_corpus(
    corpus,
    *,
    store,
    base_seed: int = 0,
    backend: str = "auto",
    workers: Optional[int] = None,
    force: bool = False,
    names: Optional[Sequence[str]] = None,
) -> CorpusRunSummary:
    """Run (or resume) a corpus against a result store.

    Every scenario compiles to an :class:`ExperimentConfig` and runs
    through :func:`~repro.experiments.runner.run_experiment` — one
    store-backed, journaled, resumable sweep per scenario.  A warm rerun
    recomputes nothing and, thanks to manifest trust, constructs no graphs
    (``graph_constructions`` in the summary counts actual
    :class:`~repro.graphs.Graph` materializations so callers — and CI —
    can assert exactly that).  ``names`` restricts the run to a subset of
    scenarios; ``force`` recomputes even cached cells.
    """
    from ..experiments.runner import run_experiment
    from ..store import resolve_store

    corpus = _as_corpus(corpus)
    store_obj = resolve_store(store)
    if store_obj is None:
        raise ScenarioError("run_corpus needs an enabled result store")
    register_corpus(corpus)

    summary = CorpusRunSummary(corpus=corpus.name)
    constructed_before = Graph.construction_count
    for spec in _select(corpus, names):
        config = spec.to_config()
        result = run_experiment(
            config,
            base_seed=base_seed,
            backend=backend,
            workers=workers,
            store=store_obj,
            force=force,
        )
        statuses = [
            getattr(cell.trials, "_store_status", ("computed", ""))[0]
            for cell in result.cells
        ]
        row = ScenarioRunSummary(
            name=spec.name,
            total_cells=len(result.cells),
            computed=sum(1 for s in statuses if s == "computed"),
            cached=sum(1 for s in statuses if s == "cached"),
        )
        if spec.rumors is not None:
            for params in _rumor_plan(spec, config, base_seed=base_seed):
                row.rumor_cells += 1
                key = _rumor_key(params)
                if not force and store_obj.get_document(key, kind="multi-rumor") is not None:
                    continue
                document = _run_rumor_cell(params, config)
                store_obj.put_document(key, document, kind="multi-rumor")
                row.rumor_computed += 1
        summary.scenarios.append(row)
    summary.graph_constructions = Graph.construction_count - constructed_before
    return summary


def corpus_status(
    corpus,
    *,
    store,
    base_seed: int = 0,
    backend: str = "auto",
) -> CorpusRunSummary:
    """Probe which corpus cells a store already holds — zero simulation.

    Cached/missing counts per scenario; resolved through each scenario's
    journaled manifest when one exists, so a warm status probe is also
    zero-construction.
    """
    from ..experiments.reporting import _store_sweep_plans
    from ..store import resolve_store

    corpus = _as_corpus(corpus)
    store_obj = resolve_store(store)
    if store_obj is None:
        raise ScenarioError("corpus_status needs an enabled result store")

    summary = CorpusRunSummary(corpus=corpus.name)
    constructed_before = Graph.construction_count
    for spec in corpus.scenarios:
        config = spec.to_config()
        plans = _store_sweep_plans(
            config, store_obj, base_seed=base_seed, backend=backend
        )
        cached = sum(1 for sp in plans if sp.plan.key in store_obj)
        row = ScenarioRunSummary(
            name=spec.name,
            total_cells=len(plans),
            computed=0,
            cached=cached,
        )
        if spec.rumors is not None:
            for params in _rumor_plan(spec, config, base_seed=base_seed):
                row.rumor_cells += 1
                if store_obj.get_document(_rumor_key(params), kind="multi-rumor") is None:
                    row.rumor_computed += 1  # pending, reported as not-cached
        summary.scenarios.append(row)
    summary.graph_constructions = Graph.construction_count - constructed_before
    return summary


def _rumor_markdown(spec: ScenarioSpec, documents: List[Dict[str, Any]]) -> List[str]:
    lines = [
        "",
        "Multi-rumor contention (visit-exchange agents, per-rumor latency):",
        "",
        "| size | n | rumors | mean T | max T | completed |",
        "| --- | --- | --- | --- | --- | --- |",
    ]
    for doc in documents:
        means = [t["mean_broadcast_time"] for t in doc["trials"]]
        maxes = [t["max_broadcast_time"] for t in doc["trials"]]
        done = all(t["all_completed"] for t in doc["trials"])
        mean = (
            f"{sum(m for m in means if m is not None) / max(sum(1 for m in means if m is not None), 1):.1f}"
            if any(m is not None for m in means)
            else "—"
        )
        peak = (
            str(max(m for m in maxes if m is not None))
            if any(m is not None for m in maxes)
            else "—"
        )
        lines.append(
            f"| {doc['size']} | {doc['num_vertices']} | {doc['count']} | "
            f"{mean} | {peak} | {'yes' if done else 'no'} |"
        )
    lines.append("")
    return lines


def corpus_report(
    corpus,
    *,
    store,
    base_seed: int = 0,
    backend: str = "auto",
    strict: bool = False,
) -> str:
    """Render the corpus report from the store — zero simulation.

    One Markdown section per scenario family (the standard sweep section
    with its spreading-time table and growth fits), plus a multi-rumor
    table for scenarios that declare contention.  ``strict=True`` raises
    on missing cells; the default renders what the store holds.
    """
    from ..experiments.reporting import experiment_markdown_section_from_store
    from ..store import resolve_store

    corpus = _as_corpus(corpus)
    store_obj = resolve_store(store)
    if store_obj is None:
        raise ScenarioError("corpus_report needs an enabled result store")

    lines = [f"## Scenario corpus `{corpus.name}`", ""]
    for spec in corpus.scenarios:
        config = spec.to_config()
        try:
            section = experiment_markdown_section_from_store(
                config, store_obj, base_seed=base_seed, backend=backend, strict=strict
            )
        except KeyError as exc:
            if strict:
                raise
            section = (
                f"### `{spec.name}` — {config.title}\n\n"
                f"(no cached cells: {exc})\n"
            )
        lines.append(section)
        if spec.rumors is not None:
            documents = []
            for params in _rumor_plan(spec, config, base_seed=base_seed):
                doc = store_obj.get_document(_rumor_key(params), kind="multi-rumor")
                if doc is not None:
                    documents.append(doc)
            if documents:
                lines.extend(_rumor_markdown(spec, documents))
    return "\n".join(lines)
