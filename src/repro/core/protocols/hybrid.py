"""A hybrid of PUSH-PULL and VISIT-EXCHANGE.

The paper's introduction concludes that "agent-based information
dissemination, separately or **in combination with push-pull**, can
significantly improve the broadcast time".  The hybrid runs push-pull on the
vertices and visit-exchange agents over the *same* informed-vertex set; on
every example family of Figure 1 it inherits the faster of the two mechanisms
(up to constants).

The round transition lives in
:class:`~repro.core.kernels.hybrid.HybridKernel`; this class is the
single-trial adapter for the sequential engine.
"""

from __future__ import annotations

from typing import Optional

from ..kernels.hybrid import HybridKernel
from .adapter import KernelProtocolAdapter

__all__ = ["HybridPushPullVisitProtocol"]


class HybridPushPullVisitProtocol(KernelProtocolAdapter):
    """Sequential adapter for the vectorized hybrid kernel.

    Per round, in order: (1) every vertex performs a push-pull exchange with a
    random neighbor; (2) all agents take one random-walk step and apply the
    visit-exchange rules against the shared informed-vertex set.  Completion is
    "all vertices informed", as for push-pull and visit-exchange.
    """

    name = "hybrid-ppull-visitx"
    kernel_class = HybridKernel

    def __init__(
        self,
        *,
        agent_density: float = 1.0,
        num_agents: Optional[int] = None,
        lazy: bool = False,
        dynamics=None,
    ) -> None:
        self.agent_density = float(agent_density)
        self.explicit_num_agents = num_agents
        self.lazy = bool(lazy)
        super().__init__(
            agent_density=self.agent_density,
            num_agents=num_agents,
            lazy=self.lazy,
            dynamics=dynamics,
        )
