"""Result records produced by protocol runs.

A single protocol run produces a :class:`RunResult`; repeated trials of the
same configuration are aggregated into a :class:`TrialSet` by the experiment
runner.  Both are plain dataclasses so they serialize cleanly to JSON for the
EXPERIMENTS.md report generator.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["RunResult", "TrialSet", "RoundRecord"]


def _json_safe(value: Any, *, strict_floats: bool = False) -> Any:
    """Recursively coerce a value into plain JSON-serializable Python types.

    Run metadata flows in from numpy-heavy code (kernels, observers), so
    numpy scalars and arrays show up in ``metadata`` / ``extra`` dicts.
    ``to_dict`` normalizes them — along with tuples, which JSON cannot
    distinguish from lists — so that ``from_dict(json.loads(json.dumps(
    to_dict())))`` reconstructs an *equal* record: the result store depends
    on this round trip being lossless.

    ``strict_floats`` is the canonical-hashing mode used by
    :mod:`repro.store.keys` (the single other normalizer in the codebase —
    keep it that way): ``-0.0`` folds into ``0.0`` so the two IEEE zeros
    cannot produce distinct cell keys, and NaN/infinity are rejected because
    they have no canonical (or even standard) JSON form.
    """
    if isinstance(value, dict):
        for k in value:
            if not isinstance(k, str):
                # str(k) would round-trip {3: x} into {"3": x} — a silently
                # *different* dict that breaks the bit-identical cache
                # contract; refuse instead, like every other lossy case.
                raise TypeError(
                    f"dict keys must be strings to serialize losslessly, "
                    f"got {type(k).__name__}"
                )
        return {
            k: _json_safe(v, strict_floats=strict_floats) for k, v in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [_json_safe(v, strict_floats=strict_floats) for v in value]
    if hasattr(value, "tolist") and not isinstance(value, (str, bytes)):
        # numpy arrays and numpy scalars both expose tolist().
        return _json_safe(value.tolist(), strict_floats=strict_floats)
    if isinstance(value, float) and strict_floats:
        if math.isnan(value) or math.isinf(value):
            raise ValueError("canonical JSON must not contain NaN or infinite floats")
        return 0.0 if value == 0.0 else value
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"value of type {type(value).__name__} cannot be serialized losslessly"
    )


@dataclass(frozen=True)
class RoundRecord:
    """Per-round snapshot captured by observers.

    Attributes
    ----------
    round_index:
        The round number (round 0 is the initialisation round of Section 3).
    informed_vertices:
        Number of informed vertices after this round (protocol dependent; for
        meet-exchange this stays at most 1, the source).
    informed_agents:
        Number of informed agents after this round (0 for push/push-pull).
    extra:
        Free-form protocol specific fields (e.g. messages sent this round).
    """

    round_index: int
    informed_vertices: int
    informed_agents: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class RunResult:
    """Outcome of one protocol run on one graph from one source.

    ``broadcast_time`` follows the paper's definitions: for push, push-pull and
    visit-exchange it is the first round by which every vertex is informed; for
    meet-exchange it is the first round by which every agent is informed.  If
    the run hit ``max_rounds`` before completing, ``completed`` is False and
    ``broadcast_time`` is ``None``.
    """

    protocol: str
    graph_name: str
    num_vertices: int
    num_edges: int
    source: int
    broadcast_time: Optional[int]
    rounds_executed: int
    completed: bool
    num_agents: int = 0
    informed_vertex_history: List[int] = field(default_factory=list)
    informed_agent_history: List[int] = field(default_factory=list)
    messages_sent: int = 0
    edge_traversals: Dict[str, int] = field(default_factory=dict)
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.completed and self.broadcast_time is None:
            raise ValueError("completed runs must record a broadcast time")
        if not self.completed and self.broadcast_time is not None:
            raise ValueError("incomplete runs must not record a broadcast time")

    @property
    def normalized_broadcast_time(self) -> Optional[float]:
        """Broadcast time divided by ``log2(n)`` — a convenient scale-free view."""
        if self.broadcast_time is None:
            return None
        return self.broadcast_time / max(math.log2(max(self.num_vertices, 2)), 1.0)

    def to_dict(self) -> Dict[str, Any]:
        """Return a JSON-serializable dictionary representation.

        Every field — including per-round histories, edge-traversal counts
        and free-form metadata (e.g. dynamics parameters stamped by the
        kernels) — survives the dict round trip losslessly; numpy scalars
        and tuples are normalized to plain Python types on the way out.
        """
        return _json_safe(asdict(self))

    def to_json(self) -> str:
        """Serialize the result to a JSON string."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunResult":
        """Reconstruct a :class:`RunResult` from :meth:`to_dict` output."""
        return cls(**payload)


@dataclass
class TrialSet:
    """A collection of runs of the same protocol/graph/source configuration.

    ``backend`` records which trial-execution backend produced the runs
    (``"batched"`` or ``"sequential"``); it is stamped by the experiment
    runner and ``None`` for trial sets assembled by hand.
    """

    protocol: str
    graph_name: str
    num_vertices: int
    results: List[RunResult] = field(default_factory=list)
    backend: Optional[str] = None

    @property
    def store_status(self) -> Optional[tuple]:
        """``(status, cell_key)`` stamped by a store-backed runner, else None.

        ``status`` is ``"cached"`` (served from the result store) or
        ``"computed"`` (executed and persisted this run).  This is the public
        contract the benchmarks, examples and CI smoke checks read.  It
        deliberately lives outside the dataclass fields: cached and computed
        trial sets must compare equal and serialize identically — the status
        describes *how this object was obtained*, not what it contains.
        """
        return getattr(self, "_store_status", None)

    def add(self, result: RunResult) -> None:
        """Append a run result, validating that it matches the configuration."""
        if result.protocol != self.protocol:
            raise ValueError(
                f"protocol mismatch: expected {self.protocol!r}, got {result.protocol!r}"
            )
        if result.num_vertices != self.num_vertices:
            raise ValueError("all trials in a TrialSet must share the vertex count")
        self.results.append(result)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def completed_results(self) -> List[RunResult]:
        """Runs that finished before their round budget."""
        return [r for r in self.results if r.completed]

    @property
    def completion_rate(self) -> float:
        """Fraction of runs that completed within the round budget."""
        if not self.results:
            return 0.0
        return len(self.completed_results) / len(self.results)

    def broadcast_times(self) -> List[int]:
        """Broadcast times of the completed runs."""
        return [r.broadcast_time for r in self.completed_results if r.broadcast_time is not None]

    def mean_broadcast_time(self) -> Optional[float]:
        """Mean broadcast time over completed runs, or None if none completed."""
        times = self.broadcast_times()
        if not times:
            return None
        return sum(times) / len(times)

    def max_broadcast_time(self) -> Optional[int]:
        """Maximum broadcast time over completed runs."""
        times = self.broadcast_times()
        return max(times) if times else None

    def min_broadcast_time(self) -> Optional[int]:
        """Minimum broadcast time over completed runs."""
        times = self.broadcast_times()
        return min(times) if times else None

    def to_dict(self) -> Dict[str, Any]:
        """Return a JSON-serializable dictionary representation.

        Round-trips losslessly through :meth:`from_dict`: the trial-set
        fields (including ``backend``) and *all* fields of every contained
        :class:`RunResult` — histories, metadata, edge traversals — are
        preserved exactly.  The result store's artifacts are (re)assembled
        through this pair, so losing a field here would silently truncate
        every cached result.
        """
        return {
            "protocol": self.protocol,
            "graph_name": self.graph_name,
            "num_vertices": int(self.num_vertices),
            "backend": self.backend,
            "results": [r.to_dict() for r in self.results],
        }

    def to_json(self) -> str:
        """Serialize the trial set to a JSON string."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TrialSet":
        """Reconstruct a :class:`TrialSet` from :meth:`to_dict` output.

        Each result re-enters through :meth:`add`, so a tampered payload
        that mixes protocols or vertex counts is rejected rather than
        silently accepted.
        """
        trials = cls(
            protocol=payload["protocol"],
            graph_name=payload["graph_name"],
            num_vertices=payload["num_vertices"],
            backend=payload.get("backend"),
        )
        for result_payload in payload["results"]:
            trials.add(RunResult.from_dict(result_payload))
        return trials

    @classmethod
    def from_json(cls, text: str) -> "TrialSet":
        """Reconstruct a :class:`TrialSet` from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_results(cls, results: Sequence[RunResult]) -> "TrialSet":
        """Build a trial set from a non-empty homogeneous result sequence."""
        if not results:
            raise ValueError("cannot build a TrialSet from an empty result list")
        first = results[0]
        trials = cls(
            protocol=first.protocol,
            graph_name=first.graph_name,
            num_vertices=first.num_vertices,
        )
        for result in results:
            trials.add(result)
        return trials
