"""Tests for coupon-collector helpers (repro.theory.coupon_collector)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.theory.coupon_collector import (
    collection_time_tail_bound,
    expected_collection_time,
    expected_partial_collection_time,
    harmonic_number,
    simulate_collection_time,
)


class TestHarmonicNumber:
    def test_small_values(self):
        assert harmonic_number(0) == 0.0
        assert harmonic_number(1) == pytest.approx(1.0)
        assert harmonic_number(2) == pytest.approx(1.5)
        assert harmonic_number(4) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)

    def test_close_to_log_for_large_n(self):
        n = 10000
        assert harmonic_number(n) == pytest.approx(math.log(n) + 0.5772, abs=0.01)

    def test_asymptotic_branch_continuous(self):
        # The asymptotic expansion used above 10^6 must agree with direct
        # summation at the crossover point.
        direct = float(np.sum(1.0 / np.arange(1, 10**6 + 1)))
        assert harmonic_number(10**6 + 1) == pytest.approx(direct + 1 / (10**6 + 1), rel=1e-9)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            harmonic_number(-1)


class TestExpectations:
    def test_full_collection_formula(self):
        assert expected_collection_time(1) == pytest.approx(1.0)
        assert expected_collection_time(2) == pytest.approx(3.0)
        assert expected_collection_time(3) == pytest.approx(5.5)

    def test_partial_collection_boundaries(self):
        assert expected_partial_collection_time(10, 0) == 0.0
        assert expected_partial_collection_time(10, 10) == pytest.approx(
            expected_collection_time(10)
        )

    def test_partial_collection_monotone_in_target(self):
        values = [expected_partial_collection_time(20, t) for t in range(21)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_partial_rejects_bad_target(self):
        with pytest.raises(ValueError):
            expected_partial_collection_time(5, 6)

    def test_full_rejects_zero(self):
        with pytest.raises(ValueError):
            expected_collection_time(0)


class TestTailBound:
    def test_bound_decreases_with_deviation(self):
        assert collection_time_tail_bound(10, 1.0) > collection_time_tail_bound(10, 3.0)

    def test_bound_at_most_one(self):
        assert collection_time_tail_bound(10, -5.0) == 1.0


class TestSimulation:
    def test_simulated_mean_matches_formula(self):
        n = 20
        rng = np.random.default_rng(0)
        samples = [simulate_collection_time(n, rng) for _ in range(300)]
        expected = expected_collection_time(n)
        assert abs(np.mean(samples) - expected) < 0.15 * expected

    def test_partial_target(self):
        rng = np.random.default_rng(1)
        draws = simulate_collection_time(10, rng, target=3)
        assert draws >= 3

    def test_zero_target(self):
        rng = np.random.default_rng(1)
        assert simulate_collection_time(10, rng, target=0) == 0

    def test_invalid_arguments(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError):
            simulate_collection_time(0, rng)
        with pytest.raises(ValueError):
            simulate_collection_time(5, rng, target=9)
