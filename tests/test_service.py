"""Tests for the HTTP store service and the remote store backend.

The shared-store contract extends the local one across a network hop: a
sweep against a pre-warmed served store must execute zero simulation cells
and reproduce the local-store results bit for bit, every object must cross
the network at most once (read-through cache), and a corrupted or truncated
transfer must fail loudly without poisoning the cache.  The service itself
must stay consistent while a writer persists into the root it serves.
"""

from __future__ import annotations

import json
import pickle
import threading
import urllib.error
import urllib.request

import pytest

from repro.experiments.config import ExperimentConfig, GraphCase, ProtocolSpec
from repro.experiments.reporting import result_from_store
from repro.experiments.runner import run_experiment, run_trial_set
from repro.graphs import complete_graph, star
from repro.store import (
    LocalBackend,
    RemoteBackend,
    ResultStore,
    StoreCorruptionError,
    StoreError,
    StoreService,
    resolve_backend,
    resolve_store,
)


def star_case(size=30):
    return GraphCase(graph=star(size), source=0, size_parameter=size)


def complete_builder(size, seed):
    return GraphCase(graph=complete_graph(size), source=0, size_parameter=size)


TOY_CONFIG = ExperimentConfig(
    experiment_id="toy-service",
    title="Toy service experiment",
    paper_reference="none",
    description="fast experiment used by the service tests",
    graph_builder=complete_builder,
    sizes=(8, 16),
    protocols=(ProtocolSpec("push"), ProtocolSpec("pull")),
    trials=3,
)


def count_batches(monkeypatch):
    """Patch the runner's kernel dispatch to count cell executions."""
    import repro.experiments.runner as runner_module

    calls = {"n": 0}
    real_run_batch = runner_module.run_batch

    def counting_run_batch(*args, **kwargs):
        calls["n"] += 1
        return real_run_batch(*args, **kwargs)

    monkeypatch.setattr(runner_module, "run_batch", counting_run_batch)
    return calls


def http_get(url):
    """(status, bytes) of a GET, treating HTTP errors as responses."""
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


@pytest.fixture
def served(tmp_path):
    """A local store pre-warmed with one toy sweep."""
    store = ResultStore(tmp_path / "served")
    run_experiment(TOY_CONFIG, base_seed=6, store=store)
    return store


@pytest.fixture
def service(served):
    with StoreService(served, port=0) as svc:
        yield svc


@pytest.fixture
def remote(service, tmp_path):
    """A remote store over the service with a fresh read-through cache."""
    return ResultStore(service.url, cache=tmp_path / "cache")


class TestServiceEndpoints:
    def test_healthz_reports_store_summary(self, service, served):
        status, body = http_get(service.url + "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["objects"] == len(list(served.keys()))
        assert payload["format"] == 1

    def test_sidecar_and_object_served_verbatim(self, service, served):
        key = next(served.keys())
        npz_path, sidecar_path = served.object_paths(key)
        status, sidecar = http_get(f"{service.url}/cells/{key}")
        assert (status, sidecar) == (200, sidecar_path.read_bytes())
        status, npz = http_get(f"{service.url}/cells/{key}/object")
        assert (status, npz) == (200, npz_path.read_bytes())

    def test_missing_key_is_404(self, service):
        status, _body = http_get(f"{service.url}/cells/{'0' * 64}")
        assert status == 404
        status, _body = http_get(f"{service.url}/cells/{'0' * 64}/object")
        assert status == 404

    def test_malformed_key_is_400(self, service):
        status, _body = http_get(f"{service.url}/cells/not-a-key")
        assert status == 400

    def test_uncommitted_object_is_invisible(self, service, served):
        # An NPZ whose sidecar never landed is not committed; the service
        # must not serve the payload half of it.
        orphan = "e" * 64
        npz_path, _ = served.object_paths(orphan)
        npz_path.parent.mkdir(parents=True, exist_ok=True)
        npz_path.write_bytes(b"uncommitted payload")
        status, _body = http_get(f"{service.url}/cells/{orphan}/object")
        assert status == 404

    def test_ls_filters_by_prefix_and_proto(self, service, served):
        entries = served.entries()
        key = entries[0]["key"]
        status, body = http_get(f"{service.url}/ls")
        assert status == 200
        assert json.loads(body)["count"] == len(entries)
        _status, body = http_get(f"{service.url}/ls?prefix={key[:8]}")
        filtered = json.loads(body)["entries"]
        assert [e["key"] for e in filtered] == [key]
        _status, body = http_get(f"{service.url}/ls?proto=push")
        assert {e["protocol"] for e in json.loads(body)["entries"]} == {"push"}

    def test_sweep_journal_served_verbatim(self, service, served):
        journal = next(served.sweeps_dir.glob("*.jsonl"))
        status, body = http_get(f"{service.url}/sweeps/{journal.stem}")
        assert (status, body) == (200, journal.read_bytes())
        status, _body = http_get(f"{service.url}/sweeps/{'0' * 16}")
        assert status == 404

    def test_sweeps_listing(self, service, served):
        status, body = http_get(f"{service.url}/sweeps")
        assert status == 200
        listed = json.loads(body)["sweeps"]
        assert listed == sorted(p.stem for p in served.sweeps_dir.glob("*.jsonl"))

    def test_unknown_route_is_404(self, service):
        status, _body = http_get(f"{service.url}/objects")
        assert status == 404

    def test_writes_are_405(self, service, served):
        key = next(served.keys())
        request = urllib.request.Request(
            f"{service.url}/cells/{key}", data=b"payload", method="PUT"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 405

    def test_only_local_roots_can_be_served(self, service):
        with pytest.raises(StoreError):
            StoreService(ResultStore(service.url))


class TestRemoteBackend:
    def test_round_trip_is_bit_identical(self, served, remote):
        for key in served.keys():
            assert remote.get_trial_set(key) == served.get_trial_set(key)

    def test_each_object_fetched_at_most_once(self, service, served, remote):
        keys = list(served.keys())
        for key in keys:
            remote.get_trial_set(key)
        counts = service.request_counts
        assert counts["/cells/*/object"] == len(keys)
        for key in keys:  # warm: served from the read-through cache
            remote.get_trial_set(key)
        assert service.request_counts["/cells/*/object"] == len(keys)

    def test_missing_key_is_a_miss_not_an_error(self, remote):
        assert remote.get_trial_set("0" * 64) is None

    def test_truncated_transfer_fails_loudly_and_is_not_cached(self, service, served, tmp_path):
        key = next(served.keys())
        npz_path, _ = served.object_paths(key)
        npz_path.write_bytes(npz_path.read_bytes()[:64])  # truncate in place
        fresh = ResultStore(service.url, cache=tmp_path / "fresh-cache")
        with pytest.raises(StoreCorruptionError):
            fresh.get_trial_set(key)
        # The poisoned bytes never reached the cache: no committed object.
        assert list(fresh.backend.local.list_keys()) == []

    def test_computed_cells_land_in_the_cache(self, service, remote, monkeypatch):
        calls = count_batches(monkeypatch)
        spec = ProtocolSpec("push")
        first = run_trial_set(spec, star_case(), trials=2, base_seed=123, store=remote)
        assert calls["n"] == 1
        objects_before = service.request_counts.get("/cells/*/object", 0)
        second = run_trial_set(spec, star_case(), trials=2, base_seed=123, store=remote)
        assert calls["n"] == 1  # cache hit, no recompute
        assert second == first
        # ... and the hit never touched the network's object endpoint.
        assert service.request_counts.get("/cells/*/object", 0) == objects_before

    def test_remote_ls_merges_server_and_cache(self, served, remote):
        run_trial_set(ProtocolSpec("push"), star_case(), trials=2, base_seed=123, store=remote)
        keys = set(remote.backend.list_keys())
        assert set(served.keys()) < keys  # server keys plus the local cell
        entries = {row["key"]: row for row in remote.entries()}
        assert keys == set(entries)
        assert all(row["bytes"] > 0 for row in entries.values())

    def test_remote_entries_issue_one_ls_call(self, service, remote):
        before = service.request_counts.get("/ls", 0)
        remote.entries()
        assert service.request_counts.get("/ls", 0) == before + 1

    def test_backend_pickles_without_live_state(self, remote):
        clone = pickle.loads(pickle.dumps(remote.backend))
        assert clone == remote.backend

    def test_unreachable_service_raises_store_error(self, tmp_path):
        dead = ResultStore("http://127.0.0.1:9", cache=tmp_path / "cache")
        with pytest.raises(StoreError):
            dead.get_trial_set("0" * 64)

    def test_resolve_backend_maps_urls_and_paths(self, tmp_path):
        assert isinstance(resolve_backend(tmp_path / "s"), LocalBackend)
        backend = resolve_backend("http://example.invalid:1", cache=tmp_path / "c")
        assert isinstance(backend, RemoteBackend)
        assert backend.cache.root == tmp_path / "c"

    def test_cache_env_var_places_the_cache(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE_CACHE", str(tmp_path / "env-cache"))
        backend = resolve_backend("http://example.invalid:1")
        assert backend.cache.root == tmp_path / "env-cache"


class TestAcceptance:
    """The PR's acceptance criterion, as one test per clause."""

    def test_warm_served_sweep_runs_zero_cells_and_matches_local(
        self, service, served, tmp_path, monkeypatch
    ):
        local = run_experiment(TOY_CONFIG, base_seed=6, store=served)
        monkeypatch.setenv("REPRO_STORE", service.url)
        monkeypatch.setenv("REPRO_STORE_CACHE", str(tmp_path / "env-cache"))
        calls = count_batches(monkeypatch)
        env_store = resolve_store(None)
        assert isinstance(env_store.backend, RemoteBackend)

        warm = run_experiment(TOY_CONFIG, base_seed=6)  # store from $REPRO_STORE
        assert calls["n"] == 0  # zero simulation cells against the warm store
        assert [c.trials for c in warm.cells] == [c.trials for c in local.cells]
        assert warm.table_rows() == local.table_rows()

        object_fetches = service.request_counts["/cells/*/object"]
        assert object_fetches == len(local.cells)
        rerun = run_experiment(TOY_CONFIG, base_seed=6)
        assert calls["n"] == 0
        assert [c.trials for c in rerun.cells] == [c.trials for c in local.cells]
        # Second run is served purely by the read-through cache.
        assert service.request_counts["/cells/*/object"] == object_fetches

    def test_reporting_pulls_from_the_service(self, service, tmp_path, monkeypatch):
        calls = count_batches(monkeypatch)
        remote = ResultStore(service.url, cache=tmp_path / "report-cache")
        loaded = result_from_store(TOY_CONFIG, remote, base_seed=6)
        assert calls["n"] == 0
        assert len(loaded.cells) == len(TOY_CONFIG.sizes) * len(TOY_CONFIG.protocols)

    def test_resumed_sweep_journal_merges_server_and_local_history(self, served, remote):
        # Rerunning the server's sweep through the remote store journals the
        # new run locally; the journal view must keep the server's history
        # too (gc pins and completed_keys are the union of both).
        run_experiment(TOY_CONFIG, base_seed=6, store=remote)
        sweep = next(served.sweeps_dir.glob("*.jsonl")).stem
        merged = remote.backend.read_sweep_text(sweep)
        server_text = served.backend.read_sweep_text(sweep)
        local_text = remote.backend.local.read_sweep_text(sweep)
        assert merged == server_text + local_text

    def test_export_from_remote_carries_journals(self, served, remote, tmp_path):
        # Exported cells must keep their gc pins: the server's sweep
        # journals travel with the objects, so a routine gc on the seeded
        # destination deletes nothing.
        destination = ResultStore(tmp_path / "seeded")
        copied = remote.export(destination.root)
        assert copied == len(list(served.keys()))
        assert sorted(p.name for p in destination.sweeps_dir.glob("*.jsonl")) == sorted(
            p.name for p in served.sweeps_dir.glob("*.jsonl")
        )
        assert destination.gc() == []
        assert len(list(destination.keys())) == copied


class TestConcurrency:
    def test_two_threads_share_one_read_through_cache(self, service, served, tmp_path):
        remote = ResultStore(service.url, cache=tmp_path / "shared-cache")
        keys = list(served.keys())
        expected = {key: served.get_trial_set(key) for key in keys}
        failures = []

        def reader():
            try:
                for key in keys:
                    if remote.get_trial_set(key) != expected[key]:
                        failures.append(f"mismatch for {key}")
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                failures.append(repr(exc))

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []
        # Both threads drained through one cache; every cached object is
        # complete and verifiable (no torn writes from the racing fills).
        cached = ResultStore(remote.backend.local)
        assert set(cached.backend.list_keys()) == set(keys)
        for key in keys:
            assert cached.get_trial_set(key) == expected[key]

    def test_writer_persisting_while_the_service_serves(self, tmp_path):
        store = ResultStore(tmp_path / "live")
        run_trial_set(ProtocolSpec("push"), star_case(), trials=1, base_seed=0, store=store)
        seeds = list(range(1, 9))
        done = threading.Event()
        write_errors = []

        def writer():
            try:
                for seed in seeds:
                    run_trial_set(
                        ProtocolSpec("push"),
                        star_case(),
                        trials=1,
                        base_seed=seed,
                        store=store,
                    )
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                write_errors.append(repr(exc))
            finally:
                done.set()

        with StoreService(store, port=0) as svc:
            thread = threading.Thread(target=writer)
            thread.start()
            seen = set()
            while not done.is_set() or len(seen) < len(seeds) + 1:
                _status, body = http_get(svc.url + "/ls")
                listing = json.loads(body)  # parses even mid-write
                now = {row["key"] for row in listing["entries"]}
                assert seen <= now  # committed objects never flicker out
                seen = now
                # Every listed sidecar is complete and consistent: the
                # commit-marker ordering means no torn sidecar is ever
                # visible, even while the writer races us.
                for key in now:
                    status, sidecar = http_get(f"{svc.url}/cells/{key}")
                    assert status == 200
                    payload = json.loads(sidecar)
                    assert payload["key"] == key
                    assert len(payload["npz_sha256"]) == 64
                if done.is_set() and len(seen) < len(seeds) + 1:
                    break
            thread.join()
            assert write_errors == []
            _status, body = http_get(svc.url + "/ls")
            assert json.loads(body)["count"] == len(seeds) + 1
