"""Canonical cell keys for the content-addressed result store.

A *cell* — all trials of one protocol configuration on one graph instance —
is a pure function of its inputs: the per-trial SFC64 streams are derived
from stable components, the kernels consume them deterministically, and the
dynamic-topology schedules are pure functions of ``(graph, round_index)``.
The store therefore caches cells *exactly*: two invocations with the same
key produce bit-identical :class:`~repro.core.results.TrialSet` records, so
a cache hit is indistinguishable from a recompute.

The key is a SHA-256 over the canonical JSON of the full cell description:

* the **graph fingerprint** — a hash of the CSR arrays (``indptr`` +
  ``indices``) and the vertex/edge counts, i.e. the exact structure the
  kernels sample from, independent of how it was built or labelled;
* the **protocol spec** — protocol name plus its keyword arguments with
  dict keys sorted, tuples normalized to lists, numpy scalars unwrapped and
  ``-0.0`` folded into ``0.0`` (``canonical_json``);
* the **dynamics spec** — the schedule's round-trippable ``spec()`` dict
  (``None`` when the topology is static);
* the exact **per-trial seed list**, the trial count, the round budget and
  whether per-round histories are recorded;
* the resolved **backend name** (compiled, batched and sequential runs agree
  statistically, not sample-for-sample, so they are distinct cells) and
  :data:`SEMANTICS_VERSION`, bumped whenever a kernel's random-stream
  consumption changes so stale artifacts can never masquerade as current
  results.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional, Sequence

import numpy as np

from ..core.results import _json_safe
from ..graphs.dynamic import _resolve_dynamics
from ..graphs.graph import Graph

__all__ = [
    "STORE_FORMAT_VERSION",
    "SEMANTICS_VERSION",
    "canonical_json",
    "cell_key",
    "document_cell_payload",
    "dynamics_spec",
    "graph_fingerprint",
    "trial_cell_payload",
]

#: On-disk artifact layout version (NPZ member names, sidecar schema).  Bump
#: when the serialization format changes; old objects are then unreadable and
#: should be garbage-collected.
STORE_FORMAT_VERSION = 1

#: Version of the *simulation semantics* baked into cached results: how the
#: kernels consume their random streams, how seeds are derived, how dynamics
#: masks are applied — and what the cell payload itself hashes.  Bump on any
#: change that alters the bits a cell produces for the same spec — every
#: existing key then misses, which is the correct (if expensive) behaviour.
#:
#: Version history:
#:
#: * ``1`` — original payload; the graph fingerprint mixed in ``graph.name``
#:   and the payload carried the name alongside the fingerprint.
#: * ``2`` — the fingerprint is purely structural (CSR arrays + counts, no
#:   name) and the payload's graph record drops the display name, honouring
#:   the documented "same structure, same fingerprint" contract.
SEMANTICS_VERSION = 2


def canonical_json(value: Any) -> str:
    """Serialize ``value`` to canonical JSON: sorted keys, normalized scalars.

    The output is byte-stable across processes and platforms for any nesting
    of dicts, lists/tuples, numpy arrays/scalars, strings, ints, floats,
    bools and ``None`` — which is exactly the vocabulary of protocol kwargs
    and dynamics specs.  Normalization is the strict-float mode of the
    shared :func:`repro.core.results._json_safe` walker: dict keys are
    sorted, tuples listified, numpy types unwrapped, ``-0.0`` folded into
    ``0.0``, and NaN/infinity rejected (``ValueError``).  Anything else
    raises ``TypeError`` rather than hashing an unstable ``repr``.
    """
    return json.dumps(
        _json_safe(value, strict_floats=True),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )


def graph_fingerprint(graph: Graph) -> str:
    """SHA-256 fingerprint of a graph's exact CSR structure (hex digest).

    The contract is **structural identity**: the hash covers the vertex and
    edge counts plus the CSR adjacency arrays (``indptr`` + ``indices``) and
    nothing else, so two differently-described — or differently *named* —
    constructions of the same instance share a fingerprint, and any
    structural change, however the graph was produced, yields a new one.
    The display name is metadata, not structure; it still travels in artifact
    sidecars for ``store ls``, it just no longer perturbs addressing.

    A graph-like object carrying a non-``None`` ``trusted_fingerprint``
    attribute (see :class:`~repro.store.orchestrator.GraphStub`) short-cuts
    the hash entirely: that is how a manifest-trusted warm start resolves
    cell keys without ever building the CSR arrays.
    """
    trusted = getattr(graph, "trusted_fingerprint", None)
    if trusted is not None:
        return str(trusted)
    digest = hashlib.sha256()
    digest.update(b"repro-graph-v2\0")
    digest.update(np.int64(graph.num_vertices).tobytes())
    digest.update(np.int64(graph.num_edges).tobytes())
    digest.update(np.ascontiguousarray(graph.indptr, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(graph.indices, dtype=np.int64).tobytes())
    return digest.hexdigest()


def dynamics_spec(dynamics: Any) -> Optional[Dict[str, Any]]:
    """Canonical spec dict of a ``dynamics=`` value (None for static topology).

    Accepts everything :func:`~repro.graphs.dynamic.resolve_dynamics` does —
    ``None``, a schedule instance, a spec dict or a CLI spec string — and
    returns the schedule's round-trippable ``spec()`` form, which is what the
    cell key hashes.
    """
    schedule = _resolve_dynamics(dynamics)
    return None if schedule is None else schedule.spec()


def trial_cell_payload(
    *,
    graph: Graph,
    source: int,
    protocol_name: str,
    protocol_kwargs: Optional[Dict[str, Any]] = None,
    dynamics: Any = None,
    seeds: Sequence[int],
    max_rounds: Optional[int] = None,
    record_history: bool = False,
    backend: str,
) -> Dict[str, Any]:
    """Assemble the full, canonicalizable description of one cell.

    This is the store's source of truth for "what was run": hash it with
    :func:`cell_key` to address the cell's artifact, and persist it in the
    artifact's JSON sidecar so ``repro store info`` can explain any object.
    The returned payload is already in canonical normalized form (numpy
    scalars unwrapped, tuples listified, strict floats), so the bytes stored
    in the sidecar are exactly the bytes that were hashed and a numpy-typed
    protocol kwarg can never crash the sidecar write after the simulation
    has already run.  ``backend`` must be the *resolved* backend name
    (``"compiled"``, ``"batched"`` or ``"sequential"``), never ``"auto"``.
    """
    if backend not in ("compiled", "batched", "sequential"):
        raise ValueError(f"backend must be resolved, got {backend!r}")
    payload = {
        "format": STORE_FORMAT_VERSION,
        "semantics": SEMANTICS_VERSION,
        "graph": {
            "fingerprint": graph_fingerprint(graph),
            "num_vertices": int(graph.num_vertices),
            "num_edges": int(graph.num_edges),
        },
        "source": int(source),
        "protocol": {
            "name": protocol_name,
            "kwargs": dict(protocol_kwargs or {}),
        },
        "dynamics": dynamics_spec(dynamics),
        "seeds": [int(s) for s in seeds],
        "trials": len(seeds),
        "max_rounds": None if max_rounds is None else int(max_rounds),
        "record_history": bool(record_history),
        "backend": backend,
    }
    return _json_safe(payload, strict_floats=True)


def document_cell_payload(kind: str, params: Dict[str, Any]) -> Dict[str, Any]:
    """Assemble the canonical description of a *document* cell.

    Document cells cache whole-experiment results that are not trial sets
    (the coupling and fairness experiments) under the same content-addressed
    machinery: ``kind`` names the experiment family, ``params`` its complete
    argument set.  Both version counters participate so a semantics bump
    invalidates cached documents exactly like trial-set cells.
    """
    payload = {
        "format": STORE_FORMAT_VERSION,
        "semantics": SEMANTICS_VERSION,
        "document": str(kind),
        "params": dict(params),
    }
    return _json_safe(payload, strict_floats=True)


def cell_key(payload: Dict[str, Any]) -> str:
    """SHA-256 hex key of a cell payload (see :func:`trial_cell_payload`)."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
