"""Tests for coupled-run congestion summaries (repro.analysis.congestion)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.congestion import summarize_coupled_runs
from repro.core.coupling import CoupledPushVisitExchange, CoupledRunResult
from repro.graphs import random_regular_graph


def synthetic_run(push_times, visitx_times, counters, push_bt=None, visitx_bt=None):
    push_times = np.asarray(push_times)
    visitx_times = np.asarray(visitx_times)
    counters = np.asarray(counters)
    return CoupledRunResult(
        num_vertices=len(push_times),
        num_agents=len(push_times),
        push_inform_round=push_times,
        visitx_inform_round=visitx_times,
        c_counter_at_inform=counters,
        push_broadcast_time=int(push_bt if push_bt is not None else push_times.max()),
        visitx_broadcast_time=int(
            visitx_bt if visitx_bt is not None else visitx_times.max()
        ),
    )


class TestCoupledRunResultHelpers:
    def test_lemma13_violation_detection(self):
        good = synthetic_run([0, 2, 3], [0, 1, 2], [0, 2, 5])
        assert good.lemma13_holds()
        bad = synthetic_run([0, 6, 3], [0, 1, 2], [0, 2, 5])
        assert not bad.lemma13_holds()
        assert bad.lemma13_violations() == [1]

    def test_ratio_helpers(self):
        run = synthetic_run([0, 4], [0, 2], [0, 6])
        assert run.max_congestion() == 6
        assert run.congestion_ratio() == pytest.approx(3.0)
        assert run.broadcast_time_ratio() == pytest.approx(2.0)


class TestSummarizeCoupledRuns:
    def test_aggregates_means_and_maxima(self):
        runs = [
            synthetic_run([0, 4], [0, 2], [0, 4]),
            synthetic_run([0, 6], [0, 2], [0, 8]),
        ]
        summary = summarize_coupled_runs(runs)
        assert summary.num_runs == 2
        assert summary.lemma13_violation_count == 0
        assert summary.lemma13_always_holds
        assert summary.mean_push_time == pytest.approx(5.0)
        assert summary.mean_visitx_time == pytest.approx(2.0)
        assert summary.max_broadcast_ratio == pytest.approx(3.0)
        assert summary.max_congestion_ratio == pytest.approx(4.0)

    def test_violations_counted(self):
        runs = [synthetic_run([0, 9], [0, 1], [0, 3])]
        summary = summarize_coupled_runs(runs)
        assert summary.lemma13_violation_count == 1
        assert not summary.lemma13_always_holds

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_coupled_runs([])

    def test_describe_mentions_runs(self):
        summary = summarize_coupled_runs([synthetic_run([0, 1], [0, 1], [0, 2])])
        assert "runs=1" in summary.describe()

    def test_end_to_end_with_real_coupled_runs(self, rng):
        graph = random_regular_graph(48, 8, rng)
        runs = [
            CoupledPushVisitExchange().run(graph, source=0, seed=seed) for seed in range(3)
        ]
        summary = summarize_coupled_runs(runs)
        assert summary.lemma13_always_holds
        assert summary.mean_broadcast_ratio > 0
