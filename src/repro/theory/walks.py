"""Random-walk quantities on graphs: stationary measure, mixing, hitting, meeting.

The agent-based protocols are driven by independent random walks, so the
theory layer provides the standard walk quantities the paper leans on:

* the stationary distribution ``pi(v) = deg(v)/2|E|`` (initial placement of
  agents, Section 3),
* spectral mixing-time estimates (used to sanity-check the "fast on random
  regular graphs" intuition),
* expected hitting and meeting times via the fundamental matrix / simulation
  (meet-exchange is governed by meeting times, cf. the related-work bound of
  Dimitriou et al. that ``T_meetx = O(T_meet log n)``), and
* cover-time estimation, which upper-bounds ``T_visitx`` for a single agent.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..graphs.graph import Graph, GraphError

__all__ = [
    "transition_matrix",
    "stationary_distribution",
    "spectral_gap",
    "relaxation_time",
    "mixing_time_bound",
    "expected_hitting_times",
    "simulate_meeting_time",
    "simulate_cover_time",
]


def transition_matrix(graph: Graph, *, lazy: bool = False) -> np.ndarray:
    """Dense transition matrix ``P`` of the (lazy) simple random walk.

    Dense matrices keep the implementation simple; the theory helpers are only
    ever invoked on the moderate graph sizes used in tests and experiments.
    """
    n = graph.num_vertices
    matrix = np.zeros((n, n), dtype=float)
    for u in range(n):
        neighbors = graph.neighbors(u)
        if neighbors.size == 0:
            raise GraphError("random walks are undefined on isolated vertices")
        matrix[u, neighbors] = 1.0 / neighbors.size
    if lazy:
        matrix = 0.5 * np.eye(n) + 0.5 * matrix
    return matrix


def stationary_distribution(graph: Graph) -> np.ndarray:
    """Stationary distribution of the simple random walk: ``deg(v) / 2|E|``."""
    return graph.stationary_distribution()


def spectral_gap(graph: Graph, *, lazy: bool = False) -> float:
    """Return ``1 - lambda_2`` where ``lambda_2`` is the second-largest eigenvalue.

    Uses the symmetrized walk matrix ``D^{-1/2} A D^{-1/2}`` so the spectrum is
    real.  A larger gap means faster mixing.
    """
    n = graph.num_vertices
    degrees = graph.degrees.astype(float)
    inv_sqrt = 1.0 / np.sqrt(degrees)
    adjacency = np.zeros((n, n), dtype=float)
    for u in range(n):
        adjacency[u, graph.neighbors(u)] = 1.0
    normalized = adjacency * inv_sqrt[:, None] * inv_sqrt[None, :]
    if lazy:
        normalized = 0.5 * np.eye(n) + 0.5 * normalized
    eigenvalues = np.linalg.eigvalsh(normalized)
    eigenvalues = np.sort(eigenvalues)[::-1]
    return float(1.0 - eigenvalues[1])


def relaxation_time(graph: Graph, *, lazy: bool = False) -> float:
    """Relaxation time ``1 / (1 - lambda_2)``."""
    gap = spectral_gap(graph, lazy=lazy)
    if gap <= 0:
        return math.inf
    return 1.0 / gap


def mixing_time_bound(graph: Graph, *, epsilon: float = 0.25, lazy: bool = True) -> float:
    """Standard upper bound ``t_mix <= t_rel * ln(1 / (epsilon * pi_min))``."""
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must lie in (0, 1)")
    pi_min = float(graph.stationary_distribution().min())
    t_rel = relaxation_time(graph, lazy=lazy)
    if math.isinf(t_rel):
        return math.inf
    return t_rel * math.log(1.0 / (epsilon * pi_min))


def expected_hitting_times(graph: Graph, target: int, *, lazy: bool = False) -> np.ndarray:
    """Expected hitting times ``E_u[T_target]`` for every start vertex ``u``.

    Solves the linear system ``h(u) = 1 + sum_v P(u, v) h(v)`` for ``u != target``
    with ``h(target) = 0``.
    """
    n = graph.num_vertices
    if not 0 <= target < n:
        raise GraphError("target vertex out of range")
    matrix = transition_matrix(graph, lazy=lazy)
    others = [u for u in range(n) if u != target]
    sub = matrix[np.ix_(others, others)]
    system = np.eye(len(others)) - sub
    solution = np.linalg.solve(system, np.ones(len(others)))
    hitting = np.zeros(n, dtype=float)
    for index, vertex in enumerate(others):
        hitting[vertex] = solution[index]
    return hitting


def simulate_meeting_time(
    graph: Graph,
    rng: np.random.Generator,
    *,
    start_a: Optional[int] = None,
    start_b: Optional[int] = None,
    lazy: bool = True,
    max_steps: int = 10**6,
) -> int:
    """Simulate the meeting time of two independent (lazy) random walks.

    Starts are sampled from the stationary distribution unless given.  The
    walks are lazy by default so that a meeting happens almost surely also on
    bipartite graphs.
    """
    stationary = graph.stationary_distribution()
    a = int(rng.choice(graph.num_vertices, p=stationary)) if start_a is None else int(start_a)
    b = int(rng.choice(graph.num_vertices, p=stationary)) if start_b is None else int(start_b)
    if a == b:
        return 0
    for step in range(1, max_steps + 1):
        if not lazy or rng.random() < 0.5:
            a = graph.sample_neighbor(a, rng)
        if not lazy or rng.random() < 0.5:
            b = graph.sample_neighbor(b, rng)
        if a == b:
            return step
    raise RuntimeError("walks did not meet within the step budget")


def simulate_cover_time(
    graph: Graph,
    rng: np.random.Generator,
    *,
    start: Optional[int] = None,
    max_steps: int = 10**7,
) -> int:
    """Simulate the cover time of a single simple random walk."""
    position = int(rng.integers(graph.num_vertices)) if start is None else int(start)
    visited = np.zeros(graph.num_vertices, dtype=bool)
    visited[position] = True
    remaining = graph.num_vertices - 1
    for step in range(1, max_steps + 1):
        position = graph.sample_neighbor(position, rng)
        if not visited[position]:
            visited[position] = True
            remaining -= 1
            if remaining == 0:
                return step
    raise RuntimeError("walk did not cover the graph within the step budget")
