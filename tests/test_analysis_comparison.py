"""Tests for protocol comparison helpers (repro.analysis.comparison)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.comparison import (
    compare_trials,
    separation_exponent,
    winner_table,
)
from repro.core.results import RunResult, TrialSet


def trialset(protocol, times, n=100, incomplete=0):
    results = [
        RunResult(
            protocol=protocol,
            graph_name="toy",
            num_vertices=n,
            num_edges=n - 1,
            source=0,
            broadcast_time=t,
            rounds_executed=t,
            completed=True,
        )
        for t in times
    ]
    results += [
        RunResult(
            protocol=protocol,
            graph_name="toy",
            num_vertices=n,
            num_edges=n - 1,
            source=0,
            broadcast_time=None,
            rounds_executed=999,
            completed=False,
        )
        for _ in range(incomplete)
    ]
    return TrialSet.from_results(results)


class TestCompareTrials:
    def test_identifies_faster_protocol(self):
        comparison = compare_trials(
            trialset("push", [100, 120]), trialset("visit-exchange", [10, 12])
        )
        assert comparison.faster == "visit-exchange"
        assert comparison.speedup_of_a == pytest.approx(11 / 110)

    def test_describe_mentions_both_protocols(self):
        comparison = compare_trials(
            trialset("push", [10]), trialset("push-pull", [5])
        )
        text = comparison.describe()
        assert "push" in text and "push-pull" in text

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            compare_trials(trialset("push", [10], n=50), trialset("pull", [10], n=60))

    def test_requires_completed_runs(self):
        with pytest.raises(ValueError):
            compare_trials(
                trialset("push", [], incomplete=2), trialset("pull", [10])
            )


class TestSeparationExponent:
    def test_constant_factor_separation_is_flat(self):
        sizes = [100, 200, 400, 800]
        a = [2.0 * math.log(n) for n in sizes]
        b = [1.0 * math.log(n) for n in sizes]
        assert abs(separation_exponent(sizes, a, b)) < 0.01

    def test_polynomial_separation_detected(self):
        sizes = [100, 200, 400, 800]
        a = [float(n) for n in sizes]          # linear protocol
        b = [math.log(n) for n in sizes]       # logarithmic protocol
        assert separation_exponent(sizes, a, b) > 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            separation_exponent([1], [1.0], [1.0])


class TestWinnerTable:
    def test_sorted_by_mean(self):
        table = winner_table(
            [
                trialset("push", [100, 110]),
                trialset("visit-exchange", [10, 12]),
                trialset("push-pull", [30, 40]),
            ]
        )
        assert list(table.keys()) == ["visit-exchange", "push-pull", "push"]

    def test_incomplete_protocols_sort_last(self):
        table = winner_table(
            [
                trialset("push", [50]),
                trialset("meet-exchange", [], incomplete=3),
            ]
        )
        assert list(table.keys())[-1] == "meet-exchange"
        assert table["meet-exchange"]["mean"] == math.inf
        assert table["meet-exchange"]["completion_rate"] == 0.0

    def test_completion_rate_reported(self):
        table = winner_table([trialset("push", [10, 20], incomplete=2)])
        assert table["push"]["completion_rate"] == pytest.approx(0.5)
