"""The PULL rumor-spreading protocol.

PULL is the mirror image of PUSH: in every round each *uninformed* vertex
samples a uniformly random neighbor and, if that neighbor was informed before
the round, becomes informed.  The paper studies PUSH and PUSH-PULL; PULL is
included here as an additional baseline because the classic analysis
(Karp et al. 2000) treats PUSH-PULL as the combination of the two directions,
and having PULL available makes the ablation benchmarks self-contained.

The round transition lives in :class:`~repro.core.kernels.pull.PullKernel`;
this class is the single-trial adapter for the sequential engine.
"""

from __future__ import annotations

import numpy as np

from ..kernels.pull import PullKernel
from .adapter import KernelProtocolAdapter

__all__ = ["PullProtocol"]


class PullProtocol(KernelProtocolAdapter):
    """Sequential adapter for the vectorized PULL kernel.

    Parameters
    ----------
    dynamics:
        Optional dynamic-topology spec (see
        :func:`repro.graphs.dynamic.resolve_dynamics`); pulls over inactive
        edges fail.
    """

    name = "pull"
    kernel_class = PullKernel

    def __init__(self, *, dynamics=None) -> None:
        super().__init__(dynamics=dynamics)

    def informed_mask(self) -> np.ndarray:
        """Return a copy of the per-vertex informed mask (for tests/analysis)."""
        return self.kernel.informed[0].copy()
