"""Tests for the unified ScenarioSpec API and the shared spec grammar."""

from __future__ import annotations

import warnings

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.scenarios import (
    ScenarioError,
    ScenarioSpec,
    graph_source_kinds,
    resolve_graph_spec,
    resolve_scenario,
)
from repro.specs import SpecError, format_spec_string, parse_spec_string


class TestSpecGrammar:
    def test_parse_round_trip(self):
        spec = parse_spec_string("sbm:num_blocks=8,p_in=0.05,p_out=0.001")
        assert spec == {"kind": "sbm", "num_blocks": 8, "p_in": 0.05, "p_out": 0.001}
        assert parse_spec_string(format_spec_string(spec)) == spec

    def test_scalar_coercion(self):
        spec = parse_spec_string("x:flag=true,off=false,n=3,r=0.5,s=hello")
        assert spec["flag"] is True and spec["off"] is False
        assert spec["n"] == 3 and spec["r"] == 0.5 and spec["s"] == "hello"

    def test_bare_kind(self):
        assert parse_spec_string("push-pull") == {"kind": "push-pull"}

    def test_malformed_specs_rejected(self):
        with pytest.raises(SpecError):
            parse_spec_string("")
        with pytest.raises(SpecError):
            parse_spec_string(":rate=1")
        with pytest.raises(SpecError):
            parse_spec_string("kind:novalue")


class TestGraphSourceSpecs:
    def test_string_and_dict_forms_agree(self):
        from_string = resolve_graph_spec("sbm:num_blocks=2,p_in=0.2,p_out=0.01")
        from_dict = resolve_graph_spec(
            {"kind": "sbm", "num_blocks": 2, "p_in": 0.2, "p_out": 0.01}
        )
        assert from_string == from_dict

    def test_kinds_cover_paper_families_and_corpus(self):
        kinds = graph_source_kinds()
        for expected in ("star", "double-star", "complete", "powerlaw", "sbm",
                         "geometric", "file"):
            assert expected in kinds

    def test_unknown_kind_and_option_rejected(self):
        with pytest.raises(ScenarioError, match="unknown graph source kind"):
            resolve_graph_spec({"kind": "smallworld"})
        with pytest.raises(ScenarioError, match="unknown option"):
            resolve_graph_spec({"kind": "sbm", "blocks": 4, "p_in": 0.1, "p_out": 0.01})


class TestResolveScenario:
    def test_dict_entry_compiles_to_config(self):
        spec = resolve_scenario(
            {
                "name": "toy",
                "graph": {"kind": "complete"},
                "protocols": ["push"],
                "sizes": [16, 32],
                "trials": 2,
            }
        )
        assert isinstance(spec, ScenarioSpec)
        config = spec.to_config()
        assert config.experiment_id == "toy"
        assert config.sizes == (16, 32)
        assert [p.name for p in config.protocols] == ["push"]
        case = config.graph_builder(16, 123)
        assert case.graph.num_vertices == 16
        assert case.source == 0

    def test_defaults(self):
        spec = resolve_scenario({"name": "d", "graph": "complete"})
        assert spec.sizes == (256, 512, 1024)
        assert [p.name for p in spec.protocols] == [
            "push", "push-pull", "visit-exchange",
        ]

    def test_scenario_dynamics_merges_into_protocols(self):
        spec = resolve_scenario(
            {
                "name": "dyn",
                "graph": "complete",
                "protocols": ["push", {"kind": "push", "label": "pinned",
                                       "dynamics": "bernoulli-edges:rate=0.5"}],
                "dynamics": "bernoulli-edges:rate=0.1,seed=1",
                "sizes": [8],
            }
        )
        config = spec.to_config()
        assert config.protocols[0].kwargs["dynamics"] == "bernoulli-edges:rate=0.1,seed=1"
        # A protocol that pins its own schedule keeps it.
        assert config.protocols[1].kwargs["dynamics"] == "bernoulli-edges:rate=0.5"

    def test_source_policy_enters_builder_spec(self):
        base = {"name": "s", "graph": "complete", "sizes": [8]}
        zero = resolve_scenario(dict(base)).to_config()
        hub = resolve_scenario(dict(base, source="max-degree")).to_config()
        assert (
            zero.graph_builder.case_spec(8, 0) != hub.graph_builder.case_spec(8, 0)
        )

    def test_bad_specs_rejected(self):
        with pytest.raises(ScenarioError, match="name"):
            resolve_scenario({"graph": "complete"})
        with pytest.raises(ScenarioError, match="graph"):
            resolve_scenario({"name": "x"})
        with pytest.raises(ScenarioError, match="unknown key"):
            resolve_scenario({"name": "x", "graph": "complete", "sized": [8]})
        with pytest.raises(ScenarioError, match="positive"):
            resolve_scenario({"name": "x", "graph": "complete", "sizes": [0]})
        with pytest.raises(ScenarioError):
            resolve_scenario(42)


class TestDeprecatedShims:
    def test_old_resolve_dynamics_warns_and_matches(self):
        from repro.graphs import dynamic
        from repro.scenarios import resolve_dynamics as canonical

        with pytest.warns(DeprecationWarning, match="repro.scenarios"):
            old = dynamic.resolve_dynamics("bernoulli-edges:rate=0.25,seed=3")
        new = canonical("bernoulli-edges:rate=0.25,seed=3")
        assert type(old) is type(new)
        assert old.rate == new.rate == 0.25

    def test_canonical_spelling_does_not_warn(self):
        from repro.scenarios import resolve_dynamics

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert resolve_dynamics(None) is None
            schedule = resolve_dynamics("bernoulli-edges:rate=0.1")
        assert schedule is not None


# ---------------------------------------------------------------------------
# Property: a manifest entry resolved twice yields identical cell keys.
# ---------------------------------------------------------------------------
_GRAPHS = st.sampled_from(
    [
        {"kind": "complete"},
        {"kind": "powerlaw", "exponent": 2.5, "min_degree": 2},
        {"kind": "sbm", "num_blocks": 2, "p_in": 0.3, "p_out": 0.05},
        {"kind": "geometric", "radius": 0.25},
    ]
)

_ENTRIES = st.fixed_dictionaries(
    {
        "graph": _GRAPHS,
        "sizes": st.lists(st.integers(8, 48), min_size=1, max_size=2, unique=True),
        "trials": st.integers(1, 2),
        "source": st.sampled_from(["zero", "max-degree"]),
        "protocols": st.sampled_from([["push"], ["push", "push-pull"]]),
    }
)


@given(entry=_ENTRIES, base_seed=st.integers(0, 3))
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_manifest_entry_resolved_twice_gives_identical_cell_keys(entry, base_seed):
    from repro.store.orchestrator import resolve_sweep_plans

    def keys():
        config = resolve_scenario({"name": "prop", **entry}).to_config()
        plans = resolve_sweep_plans(
            config,
            base_seed=base_seed,
            sizes=config.sizes,
            trials=config.trials,
        )
        return [plan.plan.key for plan in plans]

    first, second = keys(), keys()
    assert first == second
    assert len(set(first)) == len(first)  # every cell distinct
