"""Tests for the dynamic-population extension (repro.extensions.dynamic_agents)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import simulate
from repro.extensions import DynamicAgentsSimulation, DynamicVisitExchange
from repro.graphs import GraphError, complete_graph, double_star, random_regular_graph


class TestValidation:
    def test_bad_rates_rejected(self):
        with pytest.raises(ValueError):
            DynamicVisitExchange(death_rate=1.0)
        with pytest.raises(ValueError):
            DynamicVisitExchange(failure_fraction=1.5)
        with pytest.raises(ValueError):
            DynamicVisitExchange(agent_density=0)
        with pytest.raises(ValueError):
            DynamicAgentsSimulation(protocol="push")  # not an agent protocol

    def test_out_of_range_source_rejected(self):
        with pytest.raises(GraphError):
            DynamicVisitExchange().run(complete_graph(10), 99, seed=0)


class TestZeroChurnMatchesStaticProtocol:
    """With churn off, every protocol of the extension must behave like its
    kernel (statistically — the draw disciplines differ).  These are the
    guard rails for the deliberately re-stated protocol rules: a kernel rule
    change not mirrored in the extension lands here."""

    def test_no_deaths_no_births_behaves_like_visit_exchange(self):
        graph = double_star(100)
        dynamic = DynamicVisitExchange(death_rate=0.0, birth_rate=0.0)
        dynamic_times = []
        static_times = []
        for seed in range(5):
            result = dynamic.run(graph, 2, seed=seed)
            assert result.completed
            assert result.total_births == 0
            assert result.total_deaths == 0
            assert result.min_population == result.initial_agents
            dynamic_times.append(result.broadcast_time)
            static_times.append(
                simulate("visit-exchange", graph, source=2, seed=50 + seed).broadcast_time
            )
        assert 0.4 * np.mean(static_times) < np.mean(dynamic_times) < 2.5 * np.mean(static_times)

    @pytest.mark.parametrize("protocol", ["meet-exchange", "hybrid-ppull-visitx"])
    def test_zero_churn_matches_kernel_for_other_protocols(self, protocol, rng):
        graph = random_regular_graph(96, 8, rng)
        dynamic = DynamicAgentsSimulation(
            protocol=protocol, death_rate=0.0, birth_rate=0.0
        )
        dynamic_times = []
        kernel_times = []
        for seed in range(6):
            result = dynamic.run(graph, 0, seed=seed)
            assert result.completed
            assert result.total_births == 0 and result.total_deaths == 0
            dynamic_times.append(result.broadcast_time)
            kernel_times.append(
                simulate(protocol, graph, source=0, seed=50 + seed).broadcast_time
            )
        assert (
            0.4 * np.mean(kernel_times)
            < np.mean(dynamic_times)
            < 2.5 * np.mean(kernel_times)
        )


class TestChurn:
    def test_population_stays_near_initial_with_balanced_churn(self, rng):
        graph = random_regular_graph(100, 10, rng)
        result = DynamicVisitExchange(death_rate=0.05).run(
            graph, 0, seed=3, max_rounds=200
        )
        assert result.total_deaths > 0
        assert result.total_births > 0
        assert 0.5 * result.initial_agents < result.mean_population < 1.5 * result.initial_agents

    def test_broadcast_still_completes_under_churn(self, rng):
        graph = random_regular_graph(128, 12, rng)
        result = DynamicVisitExchange(death_rate=0.05).run(graph, 0, seed=4)
        assert result.completed
        # Still roughly logarithmic: far below anything linear in n.
        assert result.broadcast_time < 128

    def test_modest_churn_costs_only_a_constant_factor(self, rng):
        graph = random_regular_graph(128, 12, rng)
        static_times = [
            DynamicVisitExchange(death_rate=0.0, birth_rate=0.0)
            .run(graph, 0, seed=s)
            .broadcast_time
            for s in range(4)
        ]
        churn_times = [
            DynamicVisitExchange(death_rate=0.05).run(graph, 0, seed=s).broadcast_time
            for s in range(4)
        ]
        assert np.mean(churn_times) < 4 * np.mean(static_times) + 10

    def test_histories_have_matching_lengths(self, rng):
        graph = random_regular_graph(64, 8, rng)
        result = DynamicVisitExchange(death_rate=0.02).run(graph, 0, seed=5)
        assert len(result.population_history) == len(result.informed_vertex_history)
        assert len(result.population_history) == result.rounds_executed + 1


class TestFailureInjection:
    def test_mass_failure_kills_agents_but_broadcast_recovers(self, rng):
        graph = random_regular_graph(128, 12, rng)
        result = DynamicVisitExchange(
            death_rate=0.02, failure_round=3, failure_fraction=0.8
        ).run(graph, 0, seed=6)
        # The failure is visible in the population history...
        population_before = result.population_history[2]
        population_after = result.population_history[3]
        assert population_after < 0.5 * population_before
        # ...but births replenish the population and the broadcast completes.
        assert result.completed
        assert result.population_history[-1] > population_after

    def test_failure_without_births_still_completes_if_some_agents_survive(self, rng):
        graph = complete_graph(64)
        result = DynamicVisitExchange(
            death_rate=0.0, birth_rate=0.0, failure_round=2, failure_fraction=0.9
        ).run(graph, 0, seed=7)
        assert result.completed
        assert result.min_population >= 1


class TestBatchedExecution:
    """The rebuilt extension runs many trials through one shared round loop;
    per-trial results must be pure functions of their seeds."""

    def test_run_batch_matches_individual_runs(self, rng):
        graph = random_regular_graph(96, 8, rng)
        sim = DynamicVisitExchange(death_rate=0.04)
        batch = sim.run_batch(graph, 0, seeds=[11, 22, 33])
        for seed, from_batch in zip([11, 22, 33], batch):
            solo = sim.run(graph, 0, seed=seed)
            assert from_batch.broadcast_time == solo.broadcast_time
            assert from_batch.population_history == solo.population_history
            assert from_batch.informed_vertex_history == solo.informed_vertex_history
            assert from_batch.informed_agent_history == solo.informed_agent_history
            assert from_batch.total_births == solo.total_births
            assert from_batch.total_deaths == solo.total_deaths

    def test_empty_seed_list_rejected(self, rng):
        graph = complete_graph(16)
        with pytest.raises(ValueError):
            DynamicVisitExchange().run_batch(graph, 0, seeds=[])


class TestAllAgentProtocols:
    """Churn is available for every agent-based protocol, not just
    visit-exchange."""

    @pytest.mark.parametrize(
        "protocol", ["visit-exchange", "meet-exchange", "hybrid-ppull-visitx"]
    )
    def test_completes_under_churn(self, protocol, rng):
        graph = random_regular_graph(96, 8, rng)
        result = DynamicAgentsSimulation(protocol=protocol, death_rate=0.03).run(
            graph, 0, seed=9
        )
        assert result.completed
        assert result.protocol == protocol
        assert result.total_births > 0 and result.total_deaths > 0

    def test_meet_exchange_completion_is_all_alive_agents_informed(self, rng):
        graph = complete_graph(48)
        result = DynamicAgentsSimulation(
            protocol="meet-exchange", death_rate=0.02
        ).run(graph, 0, seed=12)
        assert result.completed
        # The final round's alive population is fully informed.
        assert result.informed_agent_history[-1] == result.population_history[-1]

    def test_hybrid_is_faster_than_agents_alone_on_double_star(self, rng):
        """The push-pull half keeps informing during agent churn, so the
        hybrid cannot be drastically slower than plain dynamic agents."""
        graph = double_star(100)
        agents = [
            DynamicAgentsSimulation(protocol="visit-exchange", death_rate=0.02)
            .run(graph, 2, seed=s)
            .broadcast_time
            for s in range(3)
        ]
        hybrid = [
            DynamicAgentsSimulation(protocol="hybrid-ppull-visitx", death_rate=0.02)
            .run(graph, 2, seed=s)
            .broadcast_time
            for s in range(3)
        ]
        assert np.mean(hybrid) < 3 * np.mean(agents) + 10


class TestChurnPlusTopologyDynamics:
    """Agent churn composes with the dynamic-topology layer."""

    def test_completes_under_combined_failures(self, rng):
        graph = random_regular_graph(96, 8, rng)
        result = DynamicAgentsSimulation(
            death_rate=0.02,
            dynamics={"kind": "bernoulli-edges", "rate": 0.3, "seed": 5},
        ).run(graph, 0, seed=3)
        assert result.completed

    def test_edge_failures_slow_spreading_under_churn(self, rng):
        graph = random_regular_graph(128, 12, rng)
        plain = [
            DynamicVisitExchange(death_rate=0.02).run(graph, 0, seed=s).broadcast_time
            for s in range(4)
        ]
        failing = [
            DynamicVisitExchange(
                death_rate=0.02,
                dynamics={"kind": "bernoulli-edges", "rate": 0.5, "seed": 6},
            )
            .run(graph, 0, seed=s)
            .broadcast_time
            for s in range(4)
        ]
        assert np.mean(failing) > np.mean(plain)

    def test_severed_bridge_strands_the_far_star(self, rng):
        """With the double-star bridge permanently down, churned agents can
        never reach the second star: the run must not complete."""
        graph = double_star(60)
        result = DynamicVisitExchange(
            death_rate=0.02,
            dynamics={"kind": "static", "down_edges": [(0, 1)]},
        ).run(graph, 2, seed=4, max_rounds=400)
        assert not result.completed
        assert max(result.informed_vertex_history) <= graph.num_vertices // 2
