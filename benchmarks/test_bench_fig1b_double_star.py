"""Benchmark / reproduction of Figure 1(b): the double star (Lemma 3).

Paper claims reproduced here:
* ``E[T_ppull] = Omega(n)`` — push-pull must sample the bridge edge,
* ``T_visitx = O(log n)`` and ``T_meetx = O(log n)`` w.h.p.

This is the paper's flagship separation in favour of the agent protocols.
"""

from __future__ import annotations

import math

import pytest

from _helpers import mean_broadcast_time
from repro.analysis.comparison import separation_exponent
from repro.experiments import get_experiment, run_experiment
from repro.graphs import double_star

SIZE = 512


@pytest.fixture(scope="module")
def graph():
    return double_star(SIZE)


class TestTimings:
    def test_push_pull_single_run(self, benchmark, graph):
        benchmark.pedantic(
            lambda: mean_broadcast_time("push-pull", graph, source=2, trials=1),
            rounds=3,
            iterations=1,
        )

    def test_visit_exchange_single_run(self, benchmark, graph):
        benchmark.pedantic(
            lambda: mean_broadcast_time("visit-exchange", graph, source=2, trials=1),
            rounds=3,
            iterations=1,
        )

    def test_meet_exchange_single_run(self, benchmark, graph):
        benchmark.pedantic(
            lambda: mean_broadcast_time(
                "meet-exchange", graph, source=2, trials=1, lazy=True
            ),
            rounds=3,
            iterations=1,
        )


class TestShape:
    def test_lemma3_orderings(self, benchmark, graph):
        log_n = math.log2(SIZE)
        times = {}

        def measure():
            times["push-pull"] = mean_broadcast_time("push-pull", graph, source=2, trials=4)
            times["visit-exchange"] = mean_broadcast_time(
                "visit-exchange", graph, source=2, trials=4
            )
            times["meet-exchange"] = mean_broadcast_time(
                "meet-exchange", graph, source=2, trials=4, lazy=True
            )
            return times

        benchmark.pedantic(measure, rounds=1, iterations=1)
        assert times["visit-exchange"] < 6 * log_n
        assert times["meet-exchange"] < 6 * log_n
        assert times["push-pull"] > 3 * times["visit-exchange"]

    def test_separation_grows_polynomially(self, benchmark):
        # Push-pull's time on the double star is geometric (waiting for the
        # bridge edge), so the sweep uses several trials per size and an 8x
        # size range to keep the fitted separation exponent away from zero.
        config = get_experiment("fig1b-double-star")

        def sweep():
            return run_experiment(config, base_seed=0, sizes=(64, 128, 256, 512), trials=6)

        result = benchmark.pedantic(sweep, rounds=1, iterations=1)
        sizes, ppull = result.series("push-pull")
        _sizes, visitx = result.series("visit-exchange")
        # The ratio T_ppull / T_visitx grows roughly linearly with n.
        assert separation_exponent(sizes, ppull, visitx) > 0.3
        assert visitx[-1] < ppull[-1]
