"""Append-only sweep journals: what a resumable sweep did, cell by cell.

Correctness of resume never depends on the journal — the content-addressed
objects are the ground truth, and an interrupted sweep resumes simply
because its completed cells are already in the store.  The journal exists
for two jobs the objects cannot do:

* **observability** — ``repro store info --sweep`` style inspection of which
  cells of a sweep are done, which were cache hits, and where an interrupted
  run stopped;
* **gc anchoring** — journals are the liveness roots of
  :meth:`ResultStore.gc`: an object referenced by any journal is kept.

Each sweep appends JSON lines to ``sweeps/<sweep_id>.jsonl``.  Appends are
single ``write`` calls of one line, so an interruption leaves at worst one
torn tail line, which every reader tolerates.  The sweep id hashes the sweep
description (experiment id, seed, sizes, trials, backend, dynamics), so
re-running the same sweep — including a resume after a kill — appends to the
same journal, and the file reads as the sweep's history.

Journals go through the store's backend: on a local store they live in the
store root, on a remote store they are written to the read-through cache
(the service is read-only) while reads fall back to the service's
``GET /sweeps/<id>`` for sweeps journaled on the server side.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Any, Dict, Iterator, List, Optional

from .artifacts import ResultStore
from .keys import canonical_json

__all__ = ["SweepJournal", "sweep_id"]


def sweep_id(payload: Dict[str, Any]) -> str:
    """Stable 16-hex-digit id of a sweep description (canonical-JSON hash)."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()[:16]


class SweepJournal:
    """Append-only JSONL journal of one sweep inside a result store."""

    def __init__(self, store: ResultStore, sweep: Dict[str, Any]) -> None:
        self.store = store
        self.sweep = sweep
        self.sweep_id = sweep_id(sweep)
        self.path = store.sweeps_dir / f"{self.sweep_id}.jsonl"

    def record(self, event: str, **fields: Any) -> None:
        """Append one event line (creates the journal on first use)."""
        stamp = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime())
        payload = {"event": event, "at": stamp, **fields}
        line = json.dumps(payload, sort_keys=True) + "\n"
        self.store.backend.append_sweep_line(self.sweep_id, line)

    def start(self, *, cells: int) -> None:
        """Record the start of a (re)run of this sweep."""
        self.record("sweep-start", cells=cells, sweep=self.sweep)

    def cell(
        self,
        *,
        index: int,
        size: int,
        protocol: str,
        key: str,
        status: str,
        worker: Optional[str] = None,
    ) -> None:
        """Record one completed cell.

        ``status`` is ``"cached"`` / ``"computed"`` for local sweeps,
        ``"farmed"`` for a cell published by a leased worker and
        ``"recovered"`` for one the farm found already committed in the
        store; ``worker`` names the publishing worker when known.
        """
        fields: Dict[str, Any] = {
            "index": index,
            "size": size,
            "protocol": protocol,
            "key": key,
            "status": status,
        }
        if worker is not None:
            fields["worker"] = worker
        self.record("cell", **fields)

    def manifest(self, *, cells: List[Dict[str, Any]]) -> None:
        """Record the sweep's full cell manifest (the farm's durable state).

        Each entry carries ``index``, ``size``, ``protocol`` and ``key``.
        The manifest plus the committed store objects is everything a
        restarted hub needs to rebuild the work queue: leases themselves are
        deliberately *not* journaled — a lost lease merely expires, while a
        committed object is ground truth forever — keeping the journal an
        observability surface rather than a correctness dependency.
        """
        self.record("manifest", cells=cells, sweep=self.sweep)

    def last_manifest(self) -> Optional[Dict[str, Any]]:
        """The most recent manifest event (None if this sweep has none)."""
        manifest = None
        for event in self.events():
            if event.get("event") == "manifest":
                manifest = event
        return manifest

    def finish(self) -> None:
        """Record that the sweep ran to completion."""
        self.record("sweep-end")

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def events(self) -> Iterator[Dict[str, Any]]:
        """Parsed journal events, tolerating a torn tail line."""
        text = self.store.backend.read_sweep_text(self.sweep_id)
        if text is None:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                continue

    def cell_events(self) -> List[Dict[str, Any]]:
        """All recorded cell completions, in journal order."""
        return [event for event in self.events() if event.get("event") == "cell"]

    def completed_keys(self) -> set:
        """Keys of every cell any run of this sweep has completed."""
        return {event["key"] for event in self.cell_events() if "key" in event}

    def last_run_statuses(self) -> Optional[Dict[str, str]]:
        """``key -> status`` map of the most recent run (None if never started)."""
        statuses: Optional[Dict[str, str]] = None
        for event in self.events():
            if event.get("event") == "sweep-start":
                statuses = {}
            elif event.get("event") == "cell" and statuses is not None:
                statuses[event.get("key", "")] = event.get("status", "")
        return statuses
