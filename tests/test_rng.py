"""Tests for deterministic RNG management (repro.core.rng)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rng import RngFactory, derive_seed, make_rng, spawn_rngs


class TestMakeRng:
    def test_from_int_is_deterministic(self):
        assert make_rng(7).integers(1000) == make_rng(7).integers(1000)

    def test_from_none_returns_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_passthrough_of_existing_generator(self):
        generator = np.random.default_rng(1)
        assert make_rng(generator) is generator

    def test_from_seed_sequence(self):
        sequence = np.random.SeedSequence(99)
        generator = make_rng(sequence)
        assert isinstance(generator, np.random.Generator)


class TestSpawnRngs:
    def test_count_and_independence(self):
        generators = spawn_rngs(3, 4)
        assert len(generators) == 4
        draws = [g.integers(10**9) for g in generators]
        assert len(set(draws)) == 4

    def test_deterministic_across_calls(self):
        first = [g.integers(10**9) for g in spawn_rngs(5, 3)]
        second = [g.integers(10**9) for g in spawn_rngs(5, 3)]
        assert first == second

    def test_spawn_from_generator(self):
        generators = spawn_rngs(np.random.default_rng(0), 2)
        assert len(generators) == 2

    def test_zero_count(self):
        assert spawn_rngs(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)


class TestDeriveSeed:
    def test_same_components_same_seed(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_different_components_differ(self):
        seeds = {
            derive_seed(1, "a", 0),
            derive_seed(1, "a", 1),
            derive_seed(1, "b", 0),
            derive_seed(2, "a", 0),
        }
        assert len(seeds) == 4

    def test_result_is_non_negative_int(self):
        seed = derive_seed(123, "experiment", 7)
        assert isinstance(seed, int)
        assert seed >= 0


class TestRngFactory:
    def test_named_streams_are_reproducible(self):
        factory_a = RngFactory(base_seed=10)
        factory_b = RngFactory(base_seed=10)
        assert factory_a.generator("walks", 0).integers(10**9) == factory_b.generator(
            "walks", 0
        ).integers(10**9)

    def test_different_names_differ(self):
        factory = RngFactory(base_seed=10)
        a = factory.generator("walks", 0).integers(10**9)
        b = factory.generator("push", 0).integers(10**9)
        assert a != b

    def test_issued_streams_recorded(self):
        factory = RngFactory(base_seed=0)
        factory.generator("x", 0)
        factory.generator("x", 1)
        factory.generators("y", 2)
        assert set(factory.issued_streams) == {"x#0", "x#1", "y#0", "y#1"}

    def test_duplicated_streams_detected(self):
        factory = RngFactory(base_seed=0)
        factory.generator("x", 0)
        factory.generator("x", 0)
        assert factory.duplicated_streams() == ["x#0"]
