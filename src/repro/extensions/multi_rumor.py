"""Multiple rumors disseminated in parallel by one agent population.

Section 1 of the paper motivates the stationary-start assumption with exactly
this setting: "several pieces of information (or rumors) are generated
frequently and distributed in parallel over time by the same set of agents,
which execute perpetual independent random walks."  This module implements
that setting for the visit-exchange mechanics: a single population of walking
agents carries many rumors, each injected at its own (round, source) pair, and
the simulator records a per-rumor broadcast time.

Rumor sets are stored as boolean matrices (vertices x rumors and
agents x rumors) and updated with vectorized numpy operations, so the per-round
cost is O((n + |A|) * r / 64) words for ``r`` concurrent rumors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.agents import AgentSystem, default_agent_count
from ..core.rng import make_rng
from ..graphs.graph import Graph, GraphError

__all__ = ["RumorInjection", "MultiRumorResult", "MultiRumorVisitExchange"]


@dataclass(frozen=True)
class RumorInjection:
    """One rumor: the round it is generated and the vertex it starts from."""

    round_index: int
    source: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.round_index < 0:
            raise ValueError("injection rounds must be non-negative")


@dataclass
class MultiRumorResult:
    """Outcome of a multi-rumor run.

    ``broadcast_times[i]`` is the number of rounds between the injection of
    rumor ``i`` and the round when every vertex knows it (None if the run hit
    the round budget first).
    """

    graph_name: str
    num_vertices: int
    num_agents: int
    injections: List[RumorInjection]
    completion_rounds: List[Optional[int]]
    rounds_executed: int

    @property
    def broadcast_times(self) -> List[Optional[int]]:
        """Per-rumor latency from injection to full coverage."""
        times: List[Optional[int]] = []
        for injection, completed_at in zip(self.injections, self.completion_rounds):
            if completed_at is None:
                times.append(None)
            else:
                times.append(completed_at - injection.round_index)
        return times

    @property
    def all_completed(self) -> bool:
        """True when every rumor reached every vertex within the budget."""
        return all(value is not None for value in self.completion_rounds)

    def max_broadcast_time(self) -> Optional[int]:
        """Largest per-rumor broadcast time (None if any rumor is incomplete)."""
        times = self.broadcast_times
        if any(t is None for t in times):
            return None
        return max(times)  # type: ignore[arg-type]

    def mean_broadcast_time(self) -> Optional[float]:
        """Mean per-rumor broadcast time over completed rumors."""
        times = [t for t in self.broadcast_times if t is not None]
        if not times:
            return None
        return float(np.mean(times))


class MultiRumorVisitExchange:
    """Visit-exchange dynamics carrying many rumors with one agent population.

    The update rule per round is the natural multi-rumor generalisation of
    Section 3: agents informed of rumor ``i`` in a previous round stamp it on
    the vertices they visit, and agents standing on a vertex that knows rumor
    ``i`` (from a previous round or this one) learn it.

    Parameters
    ----------
    agent_density / num_agents / lazy:
        Agent population parameters, as for
        :class:`~repro.core.protocols.visit_exchange.VisitExchangeProtocol`.
    """

    def __init__(
        self,
        *,
        agent_density: float = 1.0,
        num_agents: Optional[int] = None,
        lazy: bool = False,
    ) -> None:
        self.agent_density = float(agent_density)
        self.explicit_num_agents = num_agents
        self.lazy = bool(lazy)

    def run(
        self,
        graph: Graph,
        injections: Sequence[RumorInjection],
        *,
        seed=None,
        max_rounds: Optional[int] = None,
    ) -> MultiRumorResult:
        """Simulate until every rumor has covered the graph (or budget runs out)."""
        if not injections:
            raise ValueError("need at least one rumor injection")
        for injection in injections:
            if not (0 <= injection.source < graph.num_vertices):
                raise GraphError(f"injection source {injection.source} out of range")
        if not graph.is_connected():
            raise GraphError("multi-rumor dissemination is defined on connected graphs")

        rng = make_rng(seed)
        num_rumors = len(injections)
        count = (
            int(self.explicit_num_agents)
            if self.explicit_num_agents is not None
            else default_agent_count(graph, self.agent_density)
        )
        agents = AgentSystem.from_stationary(graph, count, rng, lazy=self.lazy)

        n = graph.num_vertices
        vertex_knows = np.zeros((n, num_rumors), dtype=bool)
        agent_knows = np.zeros((agents.num_agents, num_rumors), dtype=bool)
        completion_rounds: List[Optional[int]] = [None] * num_rumors

        budget = (
            int(max_rounds)
            if max_rounds is not None
            else max(1024, 200 * n)
        )
        last_injection = max(inj.round_index for inj in injections)

        def inject(round_index: int) -> None:
            for rumor_index, injection in enumerate(injections):
                if injection.round_index == round_index:
                    vertex_knows[injection.source, rumor_index] = True
                    at_source = agents.agents_at(injection.source)
                    agent_knows[at_source, rumor_index] = True

        def record_completions(round_index: int) -> None:
            covered = vertex_knows.all(axis=0)
            for rumor_index in range(num_rumors):
                if completion_rounds[rumor_index] is None and covered[rumor_index]:
                    # A rumor injected at an isolated moment covers trivially
                    # only once it has actually been injected.
                    if injections[rumor_index].round_index <= round_index:
                        completion_rounds[rumor_index] = round_index

        inject(0)
        record_completions(0)

        round_index = 0
        while round_index < budget:
            if all(c is not None for c in completion_rounds) and round_index >= last_injection:
                break
            round_index += 1

            informed_before = agent_knows.copy()
            agents.step(rng)
            inject(round_index)

            # Agents stamp the rumors they knew before the round onto the
            # vertices they now occupy: OR-scatter by destination vertex.
            if informed_before.any():
                np.logical_or.at(vertex_knows, agents.positions, informed_before)

            # Agents learn every rumor known by the vertex they stand on.
            agent_knows |= vertex_knows[agents.positions]

            record_completions(round_index)

        return MultiRumorResult(
            graph_name=graph.name,
            num_vertices=n,
            num_agents=agents.num_agents,
            injections=list(injections),
            completion_rounds=completion_rounds,
            rounds_executed=round_index,
        )
