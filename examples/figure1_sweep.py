"""Reproduce the Figure 1 comparisons end to end using the experiment harness.

This example runs (scaled-down versions of) the five registered Figure 1
experiments and prints, for each, the size-by-protocol table of mean broadcast
times plus the fitted growth model per protocol — i.e. exactly the evidence
used in EXPERIMENTS.md to argue that the measured shapes match the paper's
asymptotic claims.

Run with::

    python examples/figure1_sweep.py [--full]

The default run uses reduced sizes and trial counts so it finishes in a couple
of minutes; ``--full`` uses the registered (paper-scale) configurations.
"""

from __future__ import annotations

import argparse

from repro.experiments import (
    experiment_table,
    get_experiment,
    run_experiment,
)
from repro.experiments.config import scaled_sizes

FIGURE1_EXPERIMENTS = [
    "fig1a-star",
    "fig1b-double-star",
    "fig1c-heavy-tree",
    "fig1d-siamese",
    "fig1e-cycle-stars",
]


def main(full: bool = False) -> None:
    """Run the five Figure 1 experiments and print their tables and fits."""
    for experiment_id in FIGURE1_EXPERIMENTS:
        config = get_experiment(experiment_id)
        sizes = None if full else scaled_sizes(config.sizes, 0.5)
        trials = None if full else 3
        result = run_experiment(config, base_seed=0, sizes=sizes, trials=trials)

        print(experiment_table(result))
        print()
        for label in result.protocol_labels():
            fit = result.best_fit(
                label, candidates=["1", "log n", "n", "n log n", "n^(2/3)", "n^(2/3) log n"]
            )
            exponent = result.growth_exponent(label)
            if fit is None or exponent is None:
                continue
            print(
                f"  {label:>16}: best fit ~ {fit.constant:.2f} * {fit.growth}"
                f"   (power-law exponent {exponent:.2f})"
            )
        print()
        print("-" * 78)
        print()


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="use the paper-scale sweeps")
    arguments = parser.parse_args()
    main(full=arguments.full)
