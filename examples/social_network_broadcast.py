"""Rumor spreading on a social-network-like graph, with and without agents.

The introduction of the paper motivates push-pull with graph models of social
networks, where it is known to be fast.  This example builds a
preferential-attachment graph (heavy-tailed degrees, like a social network),
broadcasts from both a hub and a low-degree peripheral vertex, and compares
the standard protocols with the agent-based ones and the hybrid.

It also reports the edge-usage fairness of each mechanism: the agent
population uses every edge at a near-uniform rate, whereas push-pull's useful
traffic concentrates around the hubs.

Run with::

    python examples/social_network_broadcast.py
"""

from __future__ import annotations

import numpy as np

from repro import simulate
from repro.analysis import format_table
from repro.analysis.fairness import edge_usage_from_walks
from repro.core.engine import Engine
from repro.core.observers import EdgeUsageObserver, ObserverGroup
from repro.core.protocols import make_protocol
from repro.analysis.fairness import fairness_from_counts
from repro.graphs import preferential_attachment


def broadcast_table(graph, source: int, label: str) -> None:
    """Print mean broadcast times for every protocol from one source."""
    rows = []
    for protocol in ["push", "push-pull", "visit-exchange", "meet-exchange", "hybrid-ppull-visitx"]:
        times = []
        for trial in range(3):
            result = simulate(protocol, graph, source=source, seed=trial)
            if result.completed:
                times.append(result.broadcast_time)
        mean = sum(times) / len(times) if times else float("inf")
        rows.append([protocol, len(times), mean])
    print(
        format_table(
            ["protocol", "completed trials", "mean rounds"],
            rows,
            title=f"Broadcast from {label} (vertex {source})",
        )
    )
    print()


def fairness_comparison(graph) -> None:
    """Compare edge-usage fairness of agents vs push-pull on the social graph."""
    agent_report = edge_usage_from_walks(graph, rounds=100, seed=0)
    observer = EdgeUsageObserver()
    Engine(record_history=False).run(
        make_protocol("push-pull", track_all_exchanges=True),
        graph,
        0,
        seed=0,
        observers=ObserverGroup([observer]),
    )
    ppull_report = fairness_from_counts(graph, observer.counts)
    rows = [
        ["agents (all traversals)", agent_report.gini, agent_report.max_share, agent_report.unused_edges],
        ["push-pull (sampled edges)", ppull_report.gini, ppull_report.max_share, ppull_report.unused_edges],
    ]
    print(
        format_table(
            ["mechanism", "gini", "max edge share", "unused edges"],
            rows,
            title="Edge-usage fairness (lower gini = fairer)",
        )
    )


def main() -> None:
    """Build the social graph, compare protocols from a hub and from the periphery."""
    graph = preferential_attachment(2000, 3, np.random.default_rng(7))
    degrees = graph.degrees
    hub = int(np.argmax(degrees))
    periphery = int(np.argmin(degrees))
    print(
        f"Preferential-attachment graph: n={graph.num_vertices}, m={graph.num_edges}, "
        f"max degree {int(degrees.max())}, min degree {int(degrees.min())}\n"
    )
    broadcast_table(graph, hub, "the highest-degree hub")
    broadcast_table(graph, periphery, "a peripheral low-degree vertex")
    fairness_comparison(graph)


if __name__ == "__main__":
    main()
