"""The MEET-EXCHANGE kernel (Section 3 of the paper).

A set ``A`` of agents performs independent random walks from the stationary
distribution; only *agents* store the rumor:

* Round 0: every agent on the source vertex becomes informed.  If no agent is
  on the source, the first agent(s) to visit the source in a later round
  become informed; after that first visit the source stops informing agents.
* Each round ``t >= 1``: all agents step; whenever two agents meet on a vertex
  and exactly one of them was informed in a *previous* round, the other
  becomes informed (information does not chain within a round).

``T_meetx`` is the first round by which all agents are informed.  On bipartite
graphs the walks are made lazy (stay put with probability 1/2), following the
paper, so that the expected broadcast time is finite.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .agent import AgentWalkKernel

__all__ = ["MeetExchangeKernel"]


class MeetExchangeKernel(AgentWalkKernel):
    """Batched MEET-EXCHANGE: only agents store the rumor."""

    name = "meet-exchange"

    def __init__(self, *, lazy: Optional[bool] = None, **kwargs) -> None:
        # ``lazy=None`` auto-enables lazy walks on bipartite graphs, matching
        # the sequential protocol's convention from Section 3 of the paper.
        super().__init__(lazy=lazy, **kwargs)

    def initialize(self, graph, source, gens):
        self._setup_common(graph, gens)
        self.effective_lazy = (
            bool(self.lazy) if self.lazy is not None else graph.is_bipartite()
        )
        self.source = int(source)
        self.positions = self._place_agents(graph, gens)
        self.informed = self.positions == source
        # If no agent starts on the source it keeps the rumor for its first visitor.
        self.source_still_informs = ~self.informed.any(axis=1)
        self._register_rows(self.positions, self.informed, self.source_still_informs)
        self._setup_walk(self.effective_lazy)
        # Scratch meeting map with a slot-0 write sink (see VisitExchangeKernel).
        # The map is the kernel's only n-proportional per-round work (the
        # full-width clear); the sparse tier instead un-sets exactly the
        # slots the round wrote — O(agents) — which is a win whenever the
        # agent population is well below n.  Reads and writes are otherwise
        # identical, so the tiers are trivially bit-identical.
        self._resolve_frontier()
        self._sparse_clear = (
            self.frontier_resolved == "sparse"
            and self._num_agents * 2 < graph.num_vertices
        )
        if self._sparse_clear:
            self._meeting_flat = np.zeros(
                self.num_trials * graph.num_vertices + 1, dtype=bool
            )
        else:
            self._meeting_flat = np.empty(
                self.num_trials * graph.num_vertices + 1, dtype=bool
            )

    def step(self, k):
        self._begin_round()
        new_positions = self._walk_rows(k)
        vertex_ok = self._vertex_ok_rows(k, new_positions)
        informed_before = self.informed[:k].copy()

        # The source hands the rumor to its first visitor(s), then goes silent.
        # Agents informed directly by the source may not spread further this
        # round (they were not informed in a previous round), hence the copy of
        # ``informed_before`` above.  A crashed source informs nobody.
        still_informs = self.source_still_informs[:k]
        if np.any(still_informs) and (
            self._vertex_active is None or self._vertex_active[self.source]
        ):
            at_source = new_positions == self.source
            visited = at_source.any(axis=1) & still_informs
            if np.any(visited):
                self.informed[:k] |= at_source & visited[:, None]
                still_informs &= ~visited

        # Meetings: every vertex holding an agent informed in a previous round
        # informs all agents located there.  Crashed vertices host no
        # meetings: agents stuck on one neither give nor receive the rumor.
        informed_here = self._meeting_flat[: k * self.graph.num_vertices + 1]
        if not self._sparse_clear:
            informed_here[...] = False
        local_flat = self._position_flat[:k]
        masked = self._masked[:k]
        np.add(self._row_base1[:k], new_positions, out=local_flat)
        np.multiply(local_flat, informed_before, out=masked)
        if vertex_ok is not None:
            np.multiply(masked, vertex_ok, out=masked)
        informed_here[masked] = True
        met = self._gathered[:k]
        np.take(informed_here, local_flat, out=met, mode="clip")
        if vertex_ok is not None:
            met &= vertex_ok
        self.informed[:k] |= met
        self.positions[:k] = new_positions
        if self._sparse_clear:
            # Un-set exactly the slots this round set (the same index array,
            # including the slot-0 sink), restoring the all-False invariant
            # without touching the other k*n untouched slots.
            informed_here[masked] = False

    def complete_rows(self, k):
        return self.informed[:k].all(axis=1)

    def informed_vertex_counts(self, k):
        # Vertices do not store the rumor in meet-exchange; by convention the
        # source is reported as the single "informed" vertex.
        return np.ones(k, dtype=np.int64)

    def informed_agent_counts(self, k):
        return self.informed[:k].sum(axis=1)

    def trial_metadata(self, trial):
        return {
            "agent_density": self.agent_density,
            "lazy": self.effective_lazy,
            "one_agent_per_vertex": self.one_agent_per_vertex,
            "source_still_informs": bool(self.source_still_informs[self._row_of(trial)]),
        }
