"""The VISIT-EXCHANGE protocol (Section 3 of the paper).

A set ``A`` of agents performs independent random walks started from the
stationary distribution.  Both vertices and agents store the rumor:

* Round 0: the source vertex becomes informed, and so does every agent that
  starts on the source.
* Each round ``t >= 1``: all agents take one random-walk step in parallel.
  If an agent informed *in a previous round* visits an uninformed vertex, the
  vertex becomes informed in this round.  If an uninformed agent visits a
  vertex that is informed (from a previous round, or in the current round by
  another informed agent), the agent becomes informed.

``T_visitx`` is the first round by which all vertices (and hence all agents)
are informed.  The round transition lives in
:class:`~repro.core.kernels.visit_exchange.VisitExchangeKernel`; this class is
the single-trial adapter for the sequential engine.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..agents import AgentSystem
from ..kernels.visit_exchange import VisitExchangeKernel
from .adapter import KernelProtocolAdapter

__all__ = ["VisitExchangeProtocol"]


class VisitExchangeProtocol(KernelProtocolAdapter):
    """Sequential adapter for the vectorized VISIT-EXCHANGE kernel.

    Parameters
    ----------
    agent_density:
        ``alpha`` such that ``|A| = round(alpha * n)``; the paper assumes a
        linear number of agents, and all experiments default to ``alpha = 1``.
    num_agents:
        Explicit agent count overriding ``agent_density`` when given.
    lazy:
        Use lazy walks (stay put with probability 1/2).  Not required by the
        protocol's definition but exposed for ablations.
    one_agent_per_vertex:
        Start one agent on every vertex instead of the stationary placement
        (the alternative initialisation mentioned after Lemma 11).
    track_edge_traversals:
        If True, report every agent traversal through ``observers.on_edges_used``
        so the fairness analysis can measure per-edge utilisation.  This adds a
        per-round reporting pass and is off by default.
    dynamics:
        Optional dynamic-topology spec (see
        :func:`repro.graphs.dynamic.resolve_dynamics`); blocked traversals
        leave agents where they are and crashed vertices host no
        agent/vertex exchanges.
    """

    name = "visit-exchange"
    kernel_class = VisitExchangeKernel

    def __init__(
        self,
        *,
        agent_density: float = 1.0,
        num_agents: Optional[int] = None,
        lazy: bool = False,
        one_agent_per_vertex: bool = False,
        track_edge_traversals: bool = False,
        dynamics=None,
    ) -> None:
        self.agent_density = float(agent_density)
        self.explicit_num_agents = num_agents
        self.lazy = bool(lazy)
        self.one_agent_per_vertex = bool(one_agent_per_vertex)
        self.track_edge_traversals = bool(track_edge_traversals)
        super().__init__(
            agent_density=self.agent_density,
            num_agents=num_agents,
            lazy=self.lazy,
            one_agent_per_vertex=self.one_agent_per_vertex,
            track_edge_traversals=self.track_edge_traversals,
            dynamics=dynamics,
        )

    # ------------------------------------------------------------------
    # inspection helpers used by tests and analysis code
    # ------------------------------------------------------------------
    def vertex_informed_mask(self) -> np.ndarray:
        """Copy of the per-vertex informed mask."""
        return self.kernel.vertex_informed[0].copy()

    def agent_system(self) -> AgentSystem:
        """Live view of the run's agents; treat as read-only."""
        kernel = self.kernel
        return AgentSystem(
            graph=kernel.graph,
            positions=kernel.positions[0],
            informed=kernel.agent_informed[0],
            lazy=kernel.lazy,
        )
