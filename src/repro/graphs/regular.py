"""Regular graph families used for Theorems 1, 10, 19, 23, 24 and 25.

The paper's main technical result (Theorem 1) concerns d-regular graphs with
``d = Omega(log n)``.  The experiments exercise it on several regular families
with qualitatively different broadcast times:

* random d-regular graphs (logarithmic broadcast time),
* the hypercube (logarithmic degree and broadcast time),
* cliques joined in a cycle or path (polynomial broadcast time — the paper's
  "path of d-cliques where the broadcast time is Omega(n)" remark),
* complete graphs, cycles and torus grids as further reference points.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .builders import register_builder
from .graph import Graph, GraphError

__all__ = [
    "complete_graph",
    "cycle_graph",
    "hypercube",
    "torus_grid",
    "random_regular_graph",
    "clique_path",
    "clique_cycle",
    "circulant_graph",
    "BUILDER_VERSIONS",
]

#: Per-family builder versions; bump a family when its construction changes
#: the instance it emits for the same parameters (invalidates
#: manifest-trusted warm starts, never results).
BUILDER_VERSIONS = {
    "complete_graph": 1,
    "cycle_graph": 1,
    "hypercube": 1,
    "torus_grid": 1,
    "random_regular_graph": 1,
    "clique_path": 1,
    "clique_cycle": 1,
    "circulant_graph": 1,
}
for _family, _version in BUILDER_VERSIONS.items():
    register_builder(_family, _version)


def complete_graph(num_vertices: int) -> Graph:
    """Build the complete graph ``K_n`` (the original push-pull setting)."""
    if num_vertices < 2:
        raise GraphError("a complete graph needs at least 2 vertices")
    n = int(num_vertices)
    iu, ju = np.triu_indices(n, k=1)
    return Graph(n, np.column_stack((iu, ju)), name=f"complete(n={n})")


def cycle_graph(num_vertices: int) -> Graph:
    """Build the cycle ``C_n`` (2-regular; degree below the log n regime)."""
    if num_vertices < 3:
        raise GraphError("a cycle needs at least 3 vertices")
    n = int(num_vertices)
    u = np.arange(n, dtype=np.int64)
    return Graph(n, np.column_stack((u, (u + 1) % n)), name=f"cycle(n={n})")


def circulant_graph(num_vertices: int, offsets: List[int]) -> Graph:
    """Build a circulant graph: vertex ``u`` is adjacent to ``u ± o`` for each offset.

    Circulants give an easy deterministic way to produce d-regular graphs with
    tunable degree; they are used in the ablation benchmarks.
    """
    n = int(num_vertices)
    if n < 3:
        raise GraphError("a circulant graph needs at least 3 vertices")
    edges = set()
    for offset in offsets:
        offset = int(offset) % n
        if offset == 0 or 2 * offset == n and n % 2 == 0 and offset * 2 == n:
            # offset n/2 gives each edge once; handled below uniformly.
            pass
        if offset == 0:
            raise GraphError("offset 0 would create self loops")
        for u in range(n):
            v = (u + offset) % n
            if u != v:
                edges.add((min(u, v), max(u, v)))
    return Graph(n, sorted(edges), name=f"circulant(n={n}, offsets={sorted(set(offsets))})")


def hypercube(dimension: int) -> Graph:
    """Build the ``dimension``-dimensional hypercube (``2^dimension`` vertices).

    The hypercube is d-regular with ``d = log2(n)``, right at the boundary of
    the paper's ``d = Omega(log n)`` assumption.
    """
    if dimension < 1:
        raise GraphError("hypercube dimension must be at least 1")
    d = int(dimension)
    n = 1 << d
    # One edge per (vertex, clear bit): flipping a 0-bit always increases u,
    # so taking only those directions yields each edge exactly once.
    u = np.arange(n, dtype=np.int64)
    parts = [
        np.column_stack((masked, masked ^ (1 << bit)))
        for bit in range(d)
        for masked in (u[(u >> bit) & 1 == 0],)
    ]
    return Graph(n, np.concatenate(parts), name=f"hypercube(d={d})")


def torus_grid(rows: int, cols: int) -> Graph:
    """Build a 2-dimensional torus grid (4-regular when rows, cols >= 3)."""
    if rows < 3 or cols < 3:
        raise GraphError("torus grid needs at least 3 rows and 3 columns")
    rows, cols = int(rows), int(cols)
    n = rows * cols

    def vid(r: int, c: int) -> int:
        return (r % rows) * cols + (c % cols)

    edges = set()
    for r in range(rows):
        for c in range(cols):
            u = vid(r, c)
            for v in (vid(r + 1, c), vid(r, c + 1)):
                if u != v:
                    edges.add((min(u, v), max(u, v)))
    return Graph(n, sorted(edges), name=f"torus({rows}x{cols})")


def random_regular_graph(
    num_vertices: int, degree: int, rng: np.random.Generator, *, max_attempts: int = 200
) -> Graph:
    """Sample a random d-regular graph via the configuration (pairing) model.

    Pairings with self loops or parallel edges are rejected and resampled,
    which for ``d = O(polylog n)`` succeeds after O(1) expected attempts per
    simple-graph restriction; if the budget is exhausted a final attempt uses a
    local edge-switching repair so the function always returns a simple
    d-regular graph.
    """
    n, d = int(num_vertices), int(degree)
    if n * d % 2 != 0:
        raise GraphError("n * d must be even for a d-regular graph to exist")
    if d >= n:
        raise GraphError("degree must be smaller than the number of vertices")
    if d < 1:
        raise GraphError("degree must be at least 1")

    for _ in range(max_attempts):
        edges = _configuration_model_attempt(n, d, rng)
        if edges is not None:
            return Graph(n, edges, name=f"random_regular(n={n}, d={d})")
    edges = _configuration_model_with_repair(n, d, rng)
    return Graph(n, edges, name=f"random_regular(n={n}, d={d})")


def _configuration_model_attempt(
    n: int, d: int, rng: np.random.Generator
) -> np.ndarray | None:
    """One attempt of the pairing model; returns None if not simple."""
    stubs = np.repeat(np.arange(n, dtype=np.int64), d)
    rng.shuffle(stubs)
    first = stubs[0::2]
    second = stubs[1::2]
    if np.any(first == second):
        return None
    lo = np.minimum(first, second)
    hi = np.maximum(first, second)
    keys = lo * n + hi
    if len(np.unique(keys)) != len(keys):
        return None
    return np.column_stack((lo, hi))


def _configuration_model_with_repair(
    n: int, d: int, rng: np.random.Generator, *, max_switches: int = 100000
) -> np.ndarray:
    """Pairing model followed by double-edge switches to remove defects.

    The defect scan (self loops plus duplicate pairs, keeping each key's
    first occurrence) is vectorized per round; only the handful of switches
    runs in Python, consuming one ``rng.integers`` draw per defect in index
    order — the same stream consumption as the historical per-pair scan, so
    repaired samples are reproducible across versions.
    """
    stubs = np.repeat(np.arange(n, dtype=np.int64), d)
    rng.shuffle(stubs)
    first = stubs[0::2].copy()
    second = stubs[1::2].copy()
    num_pairs = first.size

    for _ in range(max_switches):
        keys = np.minimum(first, second) * n + np.maximum(first, second)
        loops = first == second
        # A pair is defective if it is a loop, or a non-loop duplicate of an
        # earlier non-loop pair with the same key (loops never claim a key).
        keep = np.zeros(num_pairs, dtype=bool)
        nonloop = np.flatnonzero(~loops)
        _, first_occurrence = np.unique(keys[nonloop], return_index=True)
        keep[nonloop[first_occurrence]] = True
        defects = np.flatnonzero(~keep)
        if defects.size == 0:
            break
        for index in defects.tolist():
            other = int(rng.integers(num_pairs))
            second[index], second[other] = second[other], second[index]
    else:  # pragma: no cover - pathological inputs only
        raise GraphError("failed to repair configuration-model sample")

    lo = np.minimum(first, second)
    hi = np.maximum(first, second)
    order = np.argsort(lo * n + hi)
    return np.column_stack((lo[order], hi[order]))


def clique_path(num_cliques: int, clique_size: int) -> Graph:
    """Build a path of cliques joined by perfect matchings between neighbors.

    Each vertex has ``clique_size - 1`` edges inside its clique plus one
    matching edge to each adjacent clique, so interior cliques are
    ``(clique_size + 1)``-regular while the two end cliques have degree
    ``clique_size``.  For an exactly regular variant use :func:`clique_cycle`.

    This family realises the paper's remark that the broadcast time of push on
    regular(-ish) graphs can be polynomial (``Omega(n)`` for a path of
    d-cliques).
    """
    if num_cliques < 2:
        raise GraphError("need at least 2 cliques")
    if clique_size < 2:
        raise GraphError("clique size must be at least 2")
    k, s = int(num_cliques), int(clique_size)
    n = k * s
    # Intra-clique pairs: one triangular index pattern per clique base, then
    # the matchings between consecutive cliques.
    ti, tj = np.triu_indices(s, k=1)
    bases = np.arange(k, dtype=np.int64)[:, None] * s
    clique_edges = np.column_stack(((bases + ti).ravel(), (bases + tj).ravel()))
    left = np.arange((k - 1) * s, dtype=np.int64)
    matching_edges = np.column_stack((left, left + s))
    return Graph(
        n,
        np.concatenate([clique_edges, matching_edges]),
        name=f"clique_path(k={k}, s={s})",
    )


def clique_cycle(num_cliques: int, clique_size: int) -> Graph:
    """Build a cycle of cliques joined by perfect matchings (exactly regular).

    Every vertex has degree ``clique_size + 1``: ``clique_size - 1`` inside its
    clique and one matching edge to each of the two neighboring cliques.  The
    broadcast time of push on this family is ``Theta(num_cliques)``, i.e.
    polynomial in ``n`` for constant clique size — a regular family where all
    protocols are slow, complementing the fast random-regular case.
    """
    if num_cliques < 3:
        raise GraphError("need at least 3 cliques for a cycle")
    if clique_size < 2:
        raise GraphError("clique size must be at least 2")
    k, s = int(num_cliques), int(clique_size)
    n = k * s
    edges = set()
    for c in range(k):
        base = c * s
        for i in range(s):
            for j in range(i + 1, s):
                edges.add((base + i, base + j))
        nxt = ((c + 1) % k) * s
        for i in range(s):
            u, v = base + i, nxt + i
            edges.add((min(u, v), max(u, v)))
    return Graph(n, sorted(edges), name=f"clique_cycle(k={k}, s={s})")
