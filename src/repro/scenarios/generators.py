"""Generative graph families beyond the paper's hand-built examples.

The paper's evaluation runs on the five Figure-1 families plus regular
graphs; the corpus layer adds the three standard models of "real-world"
structure the complex-networks literature reaches for first:

* **power-law degrees** (:func:`powerlaw_configuration`): an erased
  configuration model with ``P(deg = k) ∝ k^-exponent`` — hub-dominated
  like the star and double star, but with a full spectrum of hub sizes;
* **communities** (:func:`stochastic_block_model`): dense blocks joined by
  sparse cuts, the planted-partition shape on which push-pull's bridge
  problem (Lemma 3) generalizes;
* **geometry** (:func:`random_geometric`): points in the unit square joined
  within a radius — road/commute-like locality with no hubs at all.

All three build through vectorized numpy (stub pairing, batch geometric
skip sampling, KD-tree range queries) so a 2^20-vertex instance is
constructed in seconds, and all three are registered with the versioned
builder registry so corpus sweeps get the zero-construction warm path.
:func:`random_geometric` prefers :mod:`scipy.spatial` when importable and
falls back to a chunked brute-force sweep that yields the identical edge
set, so the builder version covers one algorithm, not two.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..graphs.builders import register_builder
from ..graphs.graph import Graph, GraphError

__all__ = [
    "BUILDER_VERSIONS",
    "powerlaw_configuration",
    "random_geometric",
    "stochastic_block_model",
]

#: Per-family builder versions; bump a family when its construction changes
#: the instance it emits for the same parameters (this invalidates
#: manifest-trusted warm starts, never results).
BUILDER_VERSIONS = {
    "powerlaw_configuration": 1,
    "stochastic_block_model": 1,
    "random_geometric": 1,
}
for _family, _version in BUILDER_VERSIONS.items():
    register_builder(_family, _version)


def _dedupe_undirected(num_vertices: int, us: np.ndarray, vs: np.ndarray):
    """Canonicalize (u, v) arrays to unique undirected pairs, no self-loops."""
    lo = np.minimum(us, vs).astype(np.int64)
    hi = np.maximum(us, vs).astype(np.int64)
    keep = lo != hi
    lo, hi = lo[keep], hi[keep]
    packed = np.unique(lo * np.int64(num_vertices) + hi)
    return packed // num_vertices, packed % num_vertices


def powerlaw_configuration(
    num_vertices: int,
    exponent: float,
    rng: np.random.Generator,
    *,
    min_degree: int = 2,
    max_degree: Optional[int] = None,
) -> Graph:
    """Sample an erased configuration-model graph with power-law degrees.

    Target degrees are drawn i.i.d. from ``P(k) ∝ k^-exponent`` on
    ``[min_degree, max_degree]`` (``max_degree`` defaults to ``~sqrt(n)``,
    the structural-cutoff under which the erased model stays close to the
    target sequence), stubs are paired by one global permutation, and
    self-loops/multi-edges are erased.  Vertices left with no edges by the
    erasure are re-attached to a random partner so the degree sequence has
    no zeros; the graph may still be disconnected for steep exponents.
    """
    n = int(num_vertices)
    gamma = float(exponent)
    k_min = int(min_degree)
    if n < 4:
        raise GraphError("powerlaw_configuration needs at least 4 vertices")
    if gamma <= 1.0:
        raise GraphError("power-law exponent must be > 1")
    if k_min < 1:
        raise GraphError("min_degree must be at least 1")
    k_max = int(max_degree) if max_degree is not None else max(k_min + 1, int(np.sqrt(n)))
    if k_max <= k_min:
        raise GraphError("max_degree must exceed min_degree")
    if k_max >= n:
        raise GraphError("max_degree must be below the vertex count")

    support = np.arange(k_min, k_max + 1, dtype=np.float64)
    weights = support**-gamma
    degrees = rng.choice(
        np.arange(k_min, k_max + 1), size=n, p=weights / weights.sum()
    ).astype(np.int64)
    if int(degrees.sum()) % 2 == 1:
        degrees[0] += 1

    stubs = np.repeat(np.arange(n, dtype=np.int64), degrees)
    stubs = rng.permutation(stubs).reshape(-1, 2)
    us, vs = _dedupe_undirected(n, stubs[:, 0], stubs[:, 1])

    touched = np.zeros(n, dtype=bool)
    touched[us] = True
    touched[vs] = True
    lonely = np.flatnonzero(~touched)
    if lonely.size:
        partners = rng.integers(0, n, size=lonely.size)
        clash = partners == lonely
        partners[clash] = (partners[clash] + 1) % n
        us = np.concatenate([us, lonely])
        vs = np.concatenate([vs, partners])
        us, vs = _dedupe_undirected(n, us, vs)

    edges = np.stack([us, vs], axis=1)
    return Graph(
        n, edges, name=f"powerlaw_configuration(n={n}, gamma={gamma:g})"
    )


def _sample_pair_indices(total: int, p: float, rng: np.random.Generator) -> np.ndarray:
    """Indices of a Bernoulli(p) subset of ``range(total)``, batch-geometric.

    Vectorized geometric skip sampling: draw skip gaps in batches sized to
    cover the range with high probability, extend on the rare shortfall.
    Expected work is O(total * p), independent of ``total`` itself.
    """
    if total <= 0 or p <= 0.0:
        return np.empty(0, dtype=np.int64)
    if p >= 1.0:
        return np.arange(total, dtype=np.int64)
    expected = total * p
    batch = int(expected + 6.0 * np.sqrt(expected) + 16.0)
    positions = rng.geometric(p, size=batch).astype(np.int64).cumsum() - 1
    while positions.size == 0 or positions[-1] < total - 1:
        extra = rng.geometric(p, size=batch).astype(np.int64).cumsum()
        positions = np.concatenate([positions, positions[-1] + extra]) if positions.size else extra - 1
    return positions[positions < total]


def _triangular_pairs(indices: np.ndarray, n: int):
    """Map linear indices in ``[0, n(n-1)/2)`` to pairs ``(u, v)``, ``u < v``.

    Vectorized counterpart of the scalar mapping in
    :mod:`repro.graphs.random_graphs`, with an integer correction pass that
    repairs float rounding at row boundaries.
    """
    idx = indices.astype(np.int64)
    u = ((2 * n - 1 - np.sqrt((2.0 * n - 1.0) ** 2 - 8.0 * idx)) // 2).astype(np.int64)
    np.clip(u, 0, n - 2, out=u)
    offset = u * np.int64(n) - u * (u + 1) // 2
    # Row u covers [offset(u), offset(u+1)); nudge until idx lands inside.
    for _ in range(3):
        too_low = offset + (n - 1 - u) <= idx
        too_high = offset > idx
        if not (too_low.any() or too_high.any()):
            break
        u = u + too_low.astype(np.int64) - too_high.astype(np.int64)
        offset = u * np.int64(n) - u * (u + 1) // 2
    v = idx - offset + u + 1
    return u, v


def stochastic_block_model(
    num_vertices: int,
    num_blocks: int,
    p_in: float,
    p_out: float,
    rng: np.random.Generator,
) -> Graph:
    """Sample a planted-partition stochastic block model.

    Vertices are split into ``num_blocks`` contiguous near-equal blocks;
    each intra-block pair is an edge with probability ``p_in`` and each
    inter-block pair with probability ``p_out``.  Sampling is batch
    geometric skipping per block pair, so the cost is proportional to the
    number of edges, not the number of pairs — a 2^20-vertex sparse
    instance is constructed in seconds.
    """
    n = int(num_vertices)
    b = int(num_blocks)
    p_in, p_out = float(p_in), float(p_out)
    if n < 2:
        raise GraphError("stochastic_block_model needs at least 2 vertices")
    if b < 1 or b > n:
        raise GraphError("num_blocks must lie in [1, num_vertices]")
    for label, p in (("p_in", p_in), ("p_out", p_out)):
        if not 0.0 <= p <= 1.0:
            raise GraphError(f"{label} must lie in [0, 1]")

    sizes = np.full(b, n // b, dtype=np.int64)
    sizes[: n % b] += 1
    starts = np.concatenate([[0], np.cumsum(sizes)[:-1]])

    all_us: List[np.ndarray] = []
    all_vs: List[np.ndarray] = []
    for block in range(b):
        s = int(sizes[block])
        if s >= 2 and p_in > 0.0:
            idx = _sample_pair_indices(s * (s - 1) // 2, p_in, rng)
            if idx.size:
                u, v = _triangular_pairs(idx, s)
                all_us.append(u + starts[block])
                all_vs.append(v + starts[block])
        if p_out > 0.0:
            for other in range(block + 1, b):
                t = int(sizes[other])
                idx = _sample_pair_indices(s * t, p_out, rng)
                if idx.size:
                    all_us.append(idx // t + starts[block])
                    all_vs.append(idx % t + starts[other])

    if all_us:
        edges = np.stack(
            [np.concatenate(all_us), np.concatenate(all_vs)], axis=1
        )
    else:
        edges = np.empty((0, 2), dtype=np.int64)
    return Graph(
        n,
        edges,
        name=f"stochastic_block_model(n={n}, b={b}, p_in={p_in:g}, p_out={p_out:g})",
    )


def _geometric_pairs_bruteforce(points: np.ndarray, radius: float, *, chunk: int = 2048):
    """All pairs within ``radius``, by chunked dense distance blocks.

    The scipy-free fallback: exact, vectorized, but quadratic in n — fine
    for tests and small corpora, while large instances should have scipy
    available.  Returns the same pair set as the KD-tree path.
    """
    n = len(points)
    r2 = radius * radius
    us: List[np.ndarray] = []
    vs: List[np.ndarray] = []
    for start in range(0, n, chunk):
        block = points[start : start + chunk]
        rest = points[start:]
        d2 = ((block[:, None, :] - rest[None, :, :]) ** 2).sum(axis=-1)
        iu, iv = np.nonzero(d2 <= r2)
        keep = iv > iu
        us.append(iu[keep].astype(np.int64) + start)
        vs.append(iv[keep].astype(np.int64) + start)
    return np.concatenate(us), np.concatenate(vs)


def random_geometric(
    num_vertices: int,
    radius: float,
    rng: np.random.Generator,
    *,
    attach_isolated: bool = True,
) -> Graph:
    """Sample a random geometric graph on the unit square.

    ``num_vertices`` points are placed uniformly at random and joined
    whenever their Euclidean distance is at most ``radius`` (expected mean
    degree ``≈ π r² n`` away from the boundary).  With ``attach_isolated``
    (the default) every isolated point is connected to its nearest
    neighbor, so broadcast can reach all vertices even near the
    connectivity threshold.  Uses a KD-tree range query when scipy is
    importable and an identical-output brute-force sweep otherwise.
    """
    n = int(num_vertices)
    r = float(radius)
    if n < 2:
        raise GraphError("random_geometric needs at least 2 vertices")
    if not 0.0 < r <= np.sqrt(2.0):
        raise GraphError("radius must lie in (0, sqrt(2)]")

    points = rng.random((n, 2))
    try:
        from scipy.spatial import cKDTree
    except ImportError:
        cKDTree = None
    if cKDTree is not None:
        tree = cKDTree(points)
        pairs = tree.query_pairs(r, output_type="ndarray")
        us = pairs[:, 0].astype(np.int64)
        vs = pairs[:, 1].astype(np.int64)
    else:
        us, vs = _geometric_pairs_bruteforce(points, r)

    if attach_isolated:
        touched = np.zeros(n, dtype=bool)
        touched[us] = True
        touched[vs] = True
        lonely = np.flatnonzero(~touched)
        if lonely.size:
            if cKDTree is not None:
                _, nearest = tree.query(points[lonely], k=2)
                partners = nearest[:, 1].astype(np.int64)
            else:
                d2 = ((points[lonely][:, None, :] - points[None, :, :]) ** 2).sum(axis=-1)
                d2[np.arange(lonely.size), lonely] = np.inf
                partners = d2.argmin(axis=1).astype(np.int64)
            us = np.concatenate([us, lonely])
            vs = np.concatenate([vs, partners])
            us, vs = _dedupe_undirected(n, us, vs)

    edges = np.stack([us, vs], axis=1)
    return Graph(n, edges, name=f"random_geometric(n={n}, r={r:g})")
