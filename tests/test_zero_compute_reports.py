"""Tests for the zero-compute read path: builder manifests, report serving.

The contract under test: once a sweep has run against a store, every later
read of it — warm reruns, ``result_from_store``, the ``/report`` endpoints —
must execute zero simulations *and* zero graph constructions (cell keys
resolve from the journaled builder manifest), and the HTTP layer must
revalidate unchanged answers with ``304`` instead of re-sending them.  Plus
the three contract fixes riding along: HTTP reads feed the gc LRU, the graph
fingerprint is purely structural, and ``ru_maxrss`` units are platform-gated.
"""

from __future__ import annotations

import json
import os
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig, GraphCase, ProtocolSpec, scaled_sizes
from repro.experiments.registry import get_experiment
from repro.experiments.reporting import (
    render_report_html,
    report_fingerprint,
    report_section_ids,
    result_from_store,
    store_report_payload,
)
from repro.experiments.runner import run_experiment
from repro.graphs import (
    builder_spec,
    builder_version,
    complete_graph,
    register_builder,
    registered_builders,
    star,
    with_case_spec,
)
from repro.graphs.builders import _REGISTRY
from repro.graphs.graph import Graph
from repro.store import (
    GraphStub,
    ManifestMismatchError,
    RemoteBackend,
    ResultStore,
    StoreService,
    SweepJournal,
    graph_fingerprint,
    resolve_sweep_plans,
    sweep_payload,
)

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from run_bench import rss_multiplier  # noqa: E402


@with_case_spec("complete_graph", lambda size, seed: {"num_vertices": size})
def complete_builder(size, seed):
    return GraphCase(graph=complete_graph(size), source=0, size_parameter=size)


TOY_CONFIG = ExperimentConfig(
    experiment_id="toy-zero-compute",
    title="Toy zero-compute experiment",
    paper_reference="none",
    description="fast experiment used by the zero-compute tests",
    graph_builder=complete_builder,
    sizes=(8, 16),
    protocols=(ProtocolSpec("push"), ProtocolSpec("pull")),
    trials=3,
)


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


def count_batches(monkeypatch):
    """Patch the runner's kernel dispatch to count cell executions."""
    import repro.experiments.runner as runner_module

    calls = {"n": 0}
    real_run_batch = runner_module.run_batch

    def counting_run_batch(*args, **kwargs):
        calls["n"] += 1
        return real_run_batch(*args, **kwargs)

    monkeypatch.setattr(runner_module, "run_batch", counting_run_batch)
    return calls


def http_get(url, headers=None):
    """(status, bytes, headers) of a GET, treating HTTP errors as responses."""
    request = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read(), dict(exc.headers)


class TestBuilderRegistry:
    def test_every_registry_experiment_builder_is_versioned(self):
        for experiment_id in report_section_ids():
            if experiment_id in ("coupling", "fairness"):
                continue
            config = get_experiment(experiment_id)
            case_spec = getattr(config.graph_builder, "case_spec", None)
            assert case_spec is not None, f"{experiment_id} builder has no case_spec"
            spec = case_spec(config.sizes[0], 0)
            assert spec["family"] in registered_builders()
            assert spec["version"] == builder_version(spec["family"])

    def test_register_is_idempotent_but_conflicts_raise(self):
        register_builder("complete_graph", builder_version("complete_graph"))
        with pytest.raises(ValueError, match="already registered"):
            register_builder("complete_graph", builder_version("complete_graph") + 7)

    def test_unregistered_family_raises(self):
        with pytest.raises(KeyError):
            builder_version("no-such-family")

    def test_builder_spec_params_are_order_insensitive(self):
        a = builder_spec("complete_graph", {"a": 1, "b": 2})
        b = builder_spec("complete_graph", {"b": 2, "a": 1})
        assert a == b
        assert list(a["params"]) == ["a", "b"]


class TestManifestTrust:
    def test_warm_rerun_constructs_zero_graphs(self, store, monkeypatch):
        calls = count_batches(monkeypatch)
        cold = run_experiment(TOY_CONFIG, base_seed=1, store=store)
        assert calls["n"] == 4
        before = Graph.construction_count
        warm = run_experiment(TOY_CONFIG, base_seed=1, store=store)
        assert calls["n"] == 4, "warm rerun must execute zero simulation cells"
        assert Graph.construction_count == before, (
            "warm rerun must construct zero graphs: keys resolve from the "
            "journaled builder manifest"
        )
        assert [c.trials for c in warm.cells] == [c.trials for c in cold.cells]

    def test_warm_report_constructs_zero_graphs(self, store):
        run_experiment(TOY_CONFIG, base_seed=1, store=store)
        before = Graph.construction_count
        result = result_from_store(TOY_CONFIG, store, base_seed=1)
        assert len(result.cells) == 4
        assert Graph.construction_count == before

    def test_manifest_round_trips_through_stub_planned_cells(self, store):
        run_experiment(TOY_CONFIG, base_seed=1, store=store)
        journal = SweepJournal(
            store,
            sweep_payload(
                TOY_CONFIG,
                base_seed=1,
                sizes=TOY_CONFIG.sizes,
                trials=TOY_CONFIG.trials,
                backend="auto",
            ),
        )
        manifest = journal.last_manifest()["cells"]
        plans = resolve_sweep_plans(
            TOY_CONFIG,
            base_seed=1,
            sizes=TOY_CONFIG.sizes,
            trials=TOY_CONFIG.trials,
            manifest=manifest,
        )
        assert all(isinstance(sp.plan.graph, GraphStub) for sp in plans)
        assert [sp.manifest_entry() for sp in plans] == manifest

    def test_builder_version_bump_invalidates_the_manifest(self, store, monkeypatch):
        run_experiment(TOY_CONFIG, base_seed=1, store=store)
        monkeypatch.setitem(_REGISTRY, "complete_graph", builder_version("complete_graph") + 1)
        before = Graph.construction_count
        result = result_from_store(TOY_CONFIG, store, base_seed=1, strict=False)
        assert Graph.construction_count > before, (
            "a builder version bump must distrust the manifest and rebuild"
        )
        # The rebuilt graphs hash to the same fingerprints, so the cells
        # themselves are still found — versioning gates trust, not identity.
        assert len(result.cells) == 4

    def test_paranoia_mode_catches_a_tampered_manifest(self, store, monkeypatch):
        run_experiment(TOY_CONFIG, base_seed=1, store=store)
        journal = SweepJournal(
            store,
            sweep_payload(
                TOY_CONFIG,
                base_seed=1,
                sizes=TOY_CONFIG.sizes,
                trials=TOY_CONFIG.trials,
                backend="auto",
            ),
        )
        manifest = [dict(entry) for entry in journal.last_manifest()["cells"]]
        for entry in manifest:
            entry["graph"] = dict(entry["graph"], fingerprint="f" * 64)
        # Trusted blindly without paranoia mode (the tampered fingerprint
        # changes every derived key, so the cells just come back missing)...
        plans = resolve_sweep_plans(
            TOY_CONFIG,
            base_seed=1,
            sizes=TOY_CONFIG.sizes,
            trials=TOY_CONFIG.trials,
            manifest=manifest,
        )
        assert all(sp.plan.graph.trusted_fingerprint == "f" * 64 for sp in plans)
        # ...but the re-verify pass rebuilds and cross-checks.
        monkeypatch.setenv("REPRO_VERIFY_MANIFEST", "1")
        with pytest.raises(ManifestMismatchError, match="does not match a rebuild"):
            resolve_sweep_plans(
                TOY_CONFIG,
                base_seed=1,
                sizes=TOY_CONFIG.sizes,
                trials=TOY_CONFIG.trials,
                manifest=manifest,
            )

    def test_verify_mode_passes_an_honest_manifest(self, store, monkeypatch):
        run_experiment(TOY_CONFIG, base_seed=1, store=store)
        monkeypatch.setenv("REPRO_VERIFY_MANIFEST", "1")
        result = result_from_store(TOY_CONFIG, store, base_seed=1)
        assert len(result.cells) == 4


class TestStructuralFingerprint:
    def test_fingerprint_ignores_the_graph_name(self):
        a = star(12)
        b = Graph.from_edges(a.num_vertices, a.edges(), name="renamed-star")
        assert a.name != b.name
        assert graph_fingerprint(a) == graph_fingerprint(b)

    def test_fingerprint_still_separates_structures(self):
        assert graph_fingerprint(star(12)) != graph_fingerprint(star(13))

    def test_stub_short_circuits_with_its_trusted_fingerprint(self):
        stub = GraphStub(
            trusted_fingerprint="ab" * 32, name="stub", num_vertices=4, num_edges=3
        )
        assert graph_fingerprint(stub) == "ab" * 32


class TestRssUnits:
    def test_ru_maxrss_units_are_platform_gated(self):
        assert rss_multiplier("darwin") == 1  # macOS reports bytes
        assert rss_multiplier("linux") == 1024  # Linux reports KiB
        assert rss_multiplier("freebsd13") == 1024


class TestHttpReadsFeedTheLru:
    def test_object_served_over_http_survives_lru_gc(self, tmp_path):
        from repro.experiments.runner import run_trial_set

        store = ResultStore(tmp_path / "served")
        for seed in (0, 1, 2):
            case = GraphCase(graph=star(30), source=0, size_parameter=30)
            run_trial_set(ProtocolSpec("push"), case, trials=2, base_seed=seed, store=store)
        keys = list(store.keys())
        assert len(keys) == 3
        now = time.time()
        # Stamp distinct last-read times; keys[0] is the coldest on disk.
        for age, key in zip((300, 200, 100), keys):
            for path in store.object_paths(key):
                os.utime(path, (now - age, now - age))
        with StoreService(store, port=0) as service:
            status, _, _ = http_get(f"{service.url}/cells/{keys[0]}/object")
            assert status == 200
        sizes = {
            key: sum(p.stat().st_size for p in store.object_paths(key)) for key in keys
        }
        removed = store.gc(max_bytes=sizes[keys[0]] + sizes[keys[2]] + 1)
        # The HTTP read bumped keys[0] to most-recently-used, so the LRU
        # eviction takes keys[1]; without the service-side mark_read the
        # served-hot keys[0] would have been evicted instead.
        assert removed == [keys[1]]
        assert set(store.keys()) == {keys[0], keys[2]}


class TestReportEndpoints:
    SCALE = 0.05

    @pytest.fixture
    def warmed(self, tmp_path):
        """A store warmed with one registry experiment at a small scale."""
        config = get_experiment("fig1a-star")
        store = ResultStore(tmp_path / "report-store")
        run_experiment(
            config,
            base_seed=0,
            sizes=scaled_sizes(config.sizes, self.SCALE),
            trials=2,
            store=store,
        )
        return store

    def report_url(self, service, name, suffix=".json"):
        return f"{service.url}/report/{name}{suffix}?scale={self.SCALE}&trials=2"

    def test_warm_json_report_with_zero_compute(self, warmed, monkeypatch):
        calls = count_batches(monkeypatch)
        with StoreService(warmed, port=0) as service:
            before = Graph.construction_count
            status, body, headers = http_get(self.report_url(service, "fig1a-star"))
            assert status == 200
            assert headers["Content-Type"] == "application/json"
            payload = json.loads(body)
            assert payload["complete"] is True
            section = payload["sections"][0]
            assert section["id"] == "fig1a-star"
            assert section["status"] == "complete"
            assert section["rows"], "a complete section carries its table rows"
            assert calls["n"] == 0, "report rendering must not simulate"
            assert Graph.construction_count == before, (
                "report rendering must resolve keys from the manifest, "
                "not rebuild graphs"
            )

    def test_warm_rerender_is_fast(self, warmed):
        with StoreService(warmed, port=0) as service:
            url = self.report_url(service, "fig1a-star")
            http_get(url)  # first render populates the server-side cache
            best = min(
                self._timed_get(url) for _ in range(3)
            )
            assert best < 0.05, f"warm report took {best * 1000:.1f}ms (>= 50ms)"

    @staticmethod
    def _timed_get(url):
        start = time.perf_counter()
        status, _, _ = http_get(url)
        assert status == 200
        return time.perf_counter() - start

    def test_revalidation_is_a_304_with_an_empty_body(self, warmed):
        with StoreService(warmed, port=0) as service:
            url = self.report_url(service, "fig1a-star")
            status, _, headers = http_get(url)
            assert status == 200
            etag = headers["ETag"]
            status, body, headers = http_get(url, headers={"If-None-Match": etag})
            assert status == 304
            assert body == b""
            assert headers["ETag"] == etag

    def test_html_report_is_bit_identical_across_requests(self, warmed):
        with StoreService(warmed, port=0) as service:
            url = self.report_url(service, "fig1a-star", suffix="")
            status, first, headers = http_get(url)
            assert status == 200
            assert headers["Content-Type"].startswith("text/html")
            status, second, _ = http_get(url)
            assert status == 200
            assert first == second

    def test_etag_changes_when_the_cell_set_changes(self, warmed):
        config = get_experiment("fig1a-star")
        with StoreService(warmed, port=0) as service:
            url = self.report_url(service, "fig1a-star")
            _, _, headers = http_get(url)
            etag = headers["ETag"]
            # A new cell in the report's set must change the fingerprint.
            run_experiment(
                config,
                base_seed=0,
                sizes=scaled_sizes(config.sizes, self.SCALE),
                trials=3,
                store=warmed,
            )
            status, _, headers = http_get(
                f"{service.url}/report/fig1a-star.json?scale={self.SCALE}&trials=3",
                headers={"If-None-Match": etag},
            )
            assert status == 200
            assert headers["ETag"] != etag

    def test_missing_sections_are_reported_not_fatal(self, warmed):
        with StoreService(warmed, port=0) as service:
            status, body, _ = http_get(
                f"{service.url}/report/all?scale={self.SCALE}&trials=2"
                "&only=fig1a-star,fig1b-double-star"
            )
            assert status == 200
            payload_by_id = {
                s["id"]: s for s in json.loads(
                    http_get(
                        f"{service.url}/report/all.json?scale={self.SCALE}&trials=2"
                        "&only=fig1a-star,fig1b-double-star"
                    )[1]
                )["sections"]
            }
            assert payload_by_id["fig1a-star"]["status"] == "complete"
            assert payload_by_id["fig1b-double-star"]["status"] == "missing"
            assert "run the sweep" in payload_by_id["fig1b-double-star"]["detail"]

    def test_unknown_section_is_404_and_bad_filter_is_400(self, warmed):
        with StoreService(warmed, port=0) as service:
            status, _, _ = http_get(f"{service.url}/report/no-such-section.json")
            assert status == 404
            status, _, _ = http_get(f"{service.url}/report/all.json?only=bogus")
            assert status == 400
            status, _, _ = http_get(f"{service.url}/report/all.json?scale=wide")
            assert status == 400


class TestReportingFunctions:
    def test_fingerprint_tracks_presence_of_cells(self, tmp_path):
        config = get_experiment("fig1a-star")
        store = ResultStore(tmp_path / "store")
        sizes = scaled_sizes(config.sizes, 0.05)
        cold = report_fingerprint(store, sections=["fig1a-star"], scale=0.05, trials=2)
        run_experiment(config, base_seed=0, sizes=sizes, trials=2, store=store)
        warm = report_fingerprint(store, sections=["fig1a-star"], scale=0.05, trials=2)
        assert cold != warm
        assert warm == report_fingerprint(store, sections=["fig1a-star"], scale=0.05, trials=2)

    def test_html_renderer_is_deterministic_and_escaped(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        payload = store_report_payload(store, sections=["fig1a-star"], scale=0.05, trials=2)
        assert payload["complete"] is False
        html = render_report_html(payload)
        assert html == render_report_html(payload)
        assert "<script>" not in html
        assert "status-missing" in html


class TestRemoteConditionalGet:
    def test_remote_entries_revalidate_with_304(self, tmp_path):
        store = ResultStore(tmp_path / "served")
        run_experiment(TOY_CONFIG, base_seed=2, store=store)
        with StoreService(store, port=0) as service:
            backend = RemoteBackend(service.url, cache=tmp_path / "cache")
            first = backend.remote_entries()
            assert first
            # Plant a sentinel body behind the memoized validator: if the
            # server answers 304 the sentinel surfaces, proving no bytes
            # were re-downloaded.
            memo_key = next(iter(backend._conditional_memo))
            etag, _ = backend._conditional_memo[memo_key]
            sentinel = json.dumps({"entries": [{"key": "sentinel"}]}).encode("utf-8")
            backend._conditional_memo[memo_key] = (etag, sentinel)
            assert [e["key"] for e in backend.remote_entries()] == ["sentinel"]

    def test_changed_listing_replaces_the_memo(self, tmp_path):
        from repro.experiments.runner import run_trial_set

        store = ResultStore(tmp_path / "served")
        run_experiment(TOY_CONFIG, base_seed=2, store=store)
        with StoreService(store, port=0) as service:
            backend = RemoteBackend(service.url, cache=tmp_path / "cache")
            first = backend.remote_entries()
            case = GraphCase(graph=star(30), source=0, size_parameter=30)
            run_trial_set(ProtocolSpec("push"), case, trials=2, base_seed=9, store=store)
            second = backend.remote_entries()
            assert len(second) == len(first) + 1

    def test_sweep_journal_revalidates(self, tmp_path):
        store = ResultStore(tmp_path / "served")
        run_experiment(TOY_CONFIG, base_seed=2, store=store)
        sweep_id = store.backend.local.list_sweeps()[0]
        with StoreService(store, port=0) as service:
            backend = RemoteBackend(service.url, cache=tmp_path / "cache")
            text = backend.read_sweep_text(sweep_id)
            assert text is not None
            assert backend.read_sweep_text(sweep_id) == text
            assert backend._conditional_memo
