"""``repro worker``: a stateless lease-and-publish loop against a farm hub.

A worker owns no sweep state.  Everything it needs arrives from the hub:
the sweep's journal manifest names the cells (and the sweep payload names
the experiment), the lease endpoint hands out one missing cell at a time,
and the content-addressed store absorbs the results.  Killing a worker at
*any* instruction loses at most one lease, which expires and is re-granted;
restarting the hub loses at most the in-memory lease table, which the farm
rebuilds from the journal manifest plus the committed objects.  The loop:

1. ``POST /sweeps/<id>/lease`` — receive ``(index, size, protocol, key)``;
2. re-resolve the cell's :class:`~repro.store.orchestrator.CellPlan` from
   the sweep payload (same resolution the submitting client ran) and check
   the plan's key equals the leased key — a mismatch means the worker runs
   different code than the submitter and must not compute anything;
3. simulate through the ordinary :func:`~repro.experiments.runner.run_trial_set`
   path with a publishing :class:`~repro.store.backends.RemoteBackend`, so
   the computed object lands on the hub through the authenticated,
   server-verified ``PUT /cells/<key>`` write path (bit-identical to what a
   local run would store, because it *is* the local path);
4. ``POST /sweeps/<id>/complete`` — idempotent, so retrying after an
   ambiguous network failure is safe.

A heartbeat thread renews the lease at a third of its TTL while the
simulation runs; if the hub reports the lease lost (expired during a long
stall, or re-granted after a partition) the worker abandons the cell —
never publishes a *conflicting* object, since cells are pure functions, but
avoids wasted work.  Hub outages (restart, crash, network partition) are
retried with capped sleeps for up to ``hub_patience`` seconds, because the
farm is designed for hubs that come back.

The module lives in :mod:`repro.store` but executes experiments, so the
experiment-layer imports (registry, runner) happen lazily inside functions,
keeping the package import graph one-way (``experiments -> store``) at
module load.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..telemetry import default_registry, get_logger, kv, metrics_enabled, span
from .artifacts import ResultStore, StoreError, StoreUnavailableError
from .backends.remote import RemoteBackend
from .journal import sweep_id as compute_sweep_id
from .orchestrator import SweepCellPlan, resolve_sweep_plans

__all__ = ["run_worker", "submit_sweep", "sweep_status", "STALL_ENV_VAR"]

_LOG = get_logger("store.worker")

#: Test/fault-injection hook: a worker sleeps this many seconds between
#: taking a lease and starting the simulation, giving kill-mid-cell tests a
#: deterministic window where the lease is held but nothing is published.
STALL_ENV_VAR = "REPRO_WORKER_STALL_SECONDS"

#: ``experiment_id -> ExperimentConfig`` resolver; defaults to the registry.
ConfigResolver = Callable[[str], Any]


def _registry_resolver(experiment_id: str):
    from ..experiments.registry import get_experiment

    return get_experiment(experiment_id)


def _resolve_plans(
    payload: Dict[str, Any], config_resolver: Optional[ConfigResolver]
) -> List[SweepCellPlan]:
    """Re-run the submitter's sweep resolution from a sweep payload."""
    resolver = config_resolver or _registry_resolver
    config = resolver(payload["experiment_id"])
    labels = [spec.display_label for spec in config.protocols]
    if labels != list(payload.get("protocols", labels)):
        raise StoreError(
            f"experiment {payload['experiment_id']!r} resolves to protocols {labels}, "
            f"but the sweep was submitted with {payload.get('protocols')} "
            "(mixed code versions between submitter and worker)"
        )
    return resolve_sweep_plans(
        config,
        base_seed=int(payload["base_seed"]),
        sizes=tuple(int(s) for s in payload["sizes"]),
        trials=int(payload["trials"]),
        backend=payload.get("backend", "auto"),
        dynamics=payload.get("dynamics"),
    )


def _last_manifest(backend: RemoteBackend, sid: str) -> Dict[str, Any]:
    """The sweep's latest journal ``manifest`` event, fetched from the hub."""
    text = backend.read_sweep_text(sid)
    if text is None:
        raise StoreError(f"hub has no journal for sweep {sid} (was it submitted?)")
    manifest = None
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue
        if event.get("event") == "manifest":
            manifest = event
    if manifest is None:
        raise StoreError(f"sweep {sid} has a journal but no manifest (not submitted to the farm)")
    return manifest


def submit_sweep(
    url: str,
    config: Any,
    *,
    token: str,
    base_seed: int = 0,
    sizes: Optional[Tuple[int, ...]] = None,
    trials: Optional[int] = None,
    backend: str = "auto",
    dynamics: Any = None,
    cache: Any = None,
) -> Tuple[str, Dict[str, Any]]:
    """Resolve a sweep's cell manifest and register it with the hub's farm.

    Returns ``(sweep_id, farm status)``.  Submission is idempotent — the
    sweep id hashes the payload, and the hub conflicts loudly if the same
    payload ever maps to different cell keys.
    """
    from .orchestrator import sweep_payload

    sweep = tuple(sizes) if sizes is not None else config.sizes
    num_trials = int(trials) if trials is not None else config.trials
    payload = sweep_payload(
        config,
        base_seed=base_seed,
        sizes=sweep,
        trials=num_trials,
        backend=backend,
        dynamics=dynamics,
    )
    plans = resolve_sweep_plans(
        config,
        base_seed=base_seed,
        sizes=sweep,
        trials=num_trials,
        backend=backend,
        dynamics=dynamics,
    )
    remote = RemoteBackend(url, token=token, publish=True, cache=cache)
    status = remote.post_json(
        "/sweeps/submit",
        {"sweep": payload, "cells": [p.manifest_entry() for p in plans]},
        idempotent=True,  # same payload, same manifest: replaying is a no-op
    )
    if status is None:  # pragma: no cover - submit route always exists
        raise StoreError(f"hub at {url} has no farm endpoints")
    return compute_sweep_id(payload), status


def sweep_status(url: str, sid: str, *, token: str, cache: Any = None) -> Dict[str, Any]:
    """The hub's farm status document for one sweep."""
    remote = RemoteBackend(url, token=token, cache=cache)
    payload = remote._get(f"/sweeps/{sid}/status")
    if payload is None:
        raise StoreError(f"hub at {url} knows no sweep {sid}")
    return json.loads(payload)


class _Heartbeat:
    """Background lease renewal; flags the lease lost instead of raising.

    Successful renewals are timed: ``beats`` / ``rtt_total`` / ``rtt_last``
    feed the worker's fleet-health snapshot (heartbeat RTT is the cheapest
    live proxy for worker-to-hub latency).
    """

    def __init__(self, backend: RemoteBackend, sid: str, token: str, interval: float) -> None:
        self._backend = backend
        self._sid = sid
        self._token = token
        self._interval = max(interval, 0.05)
        self._stop = threading.Event()
        self.lost = False
        self.beats = 0
        self.rtt_total = 0.0
        self.rtt_last = 0.0
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        from .artifacts import StoreConflictError

        while not self._stop.wait(self._interval):
            started = time.monotonic()
            try:
                self._backend.post_json(
                    f"/sweeps/{self._sid}/heartbeat",
                    {"lease": self._token},
                    idempotent=True,
                )
            except StoreConflictError:
                # 409: the lease expired (and may be re-granted).  The cell
                # is a pure function, so a racing double-compute publishes
                # identical bytes; abandoning just avoids the wasted work.
                _LOG.warning(
                    "heartbeat rejected, lease lost %s",
                    kv(sweep=self._sid, lease=self._token),
                )
                self.lost = True
                return
            except (StoreError, StoreUnavailableError):
                # Hub unreachable or restarting: keep trying until the main
                # loop finishes or the lease genuinely expires.
                continue
            self.rtt_last = time.monotonic() - started
            self.rtt_total += self.rtt_last
            self.beats += 1

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)


def run_worker(
    url: str,
    sid: str,
    *,
    token: str,
    name: Optional[str] = None,
    cache: Any = None,
    poll_interval: float = 0.2,
    hub_patience: float = 60.0,
    config_resolver: Optional[ConfigResolver] = None,
    max_cells: Optional[int] = None,
) -> Dict[str, Any]:
    """Lease, simulate and publish cells of sweep ``sid`` until it is done.

    Returns a summary ``{"worker", "computed", "abandoned", "status"}``.
    The loop survives hub restarts: any :class:`StoreUnavailableError` from
    the farm endpoints is retried with capped sleeps until the hub has been
    unreachable for ``hub_patience`` seconds straight, and every step that
    could have half-applied (publish, complete) is idempotent by
    construction.  ``max_cells`` bounds how many cells this worker computes
    (None = until the sweep is done) — test and example hooks, mostly.
    """
    from ..experiments.runner import run_trial_set

    worker_name = name or f"worker-{os.getpid()}"
    backend = RemoteBackend(url, token=token, publish=True, cache=cache)
    store = ResultStore(backend=backend)

    manifest = _last_manifest(backend, sid)
    plans = _resolve_plans(manifest.get("sweep", {}), config_resolver)
    by_key: Dict[str, SweepCellPlan] = {p.plan.key: p for p in plans}
    for row in manifest.get("cells", []):
        if row.get("key") not in by_key:
            raise StoreError(
                f"sweep {sid} cell {row.get('key')} does not re-resolve on this worker "
                "(mixed code versions between submitter and worker)"
            )

    stall = float(os.environ.get(STALL_ENV_VAR, "0") or 0)
    computed = 0
    abandoned = 0
    heartbeats = 0
    heartbeat_rtt_total = 0.0
    heartbeat_rtt_last = 0.0
    status: Dict[str, Any] = {}
    hub_down_since: Optional[float] = None

    # Client-side telemetry (retry/degradation counters) accumulates in the
    # process-global registry; deltas from these baselines are what this
    # worker itself caused during this run.
    registry = default_registry()
    base_retries = registry.counter_value("repro_remote_attempt_failures_total")
    base_degraded = registry.counter_value("repro_remote_degraded_reads_total")
    base_unavailable = registry.counter_value("repro_remote_unavailable_total")

    def _fleet_snapshot() -> Dict[str, float]:
        snapshot: Dict[str, float] = {
            "cells_completed": computed,
            "cells_abandoned": abandoned,
            "remote_retries": registry.counter_value("repro_remote_attempt_failures_total")
            - base_retries,
            "degraded_reads": registry.counter_value("repro_remote_degraded_reads_total")
            - base_degraded,
            "hub_unavailable": registry.counter_value("repro_remote_unavailable_total")
            - base_unavailable,
            "heartbeats": heartbeats,
        }
        if heartbeats:
            snapshot["heartbeat_rtt_seconds"] = heartbeat_rtt_total / heartbeats
            snapshot["heartbeat_rtt_last_seconds"] = heartbeat_rtt_last
        return snapshot

    def _push_metrics() -> None:
        """Push this worker's fleet-health snapshot to the hub (best-effort).

        Fleet health is observability only: an unreachable hub — or an older
        one without the ``/sweeps/<id>/metrics`` route (its 404 surfaces as
        a ``None`` response, not an exception) — must never fail the loop.
        """
        if not metrics_enabled():
            return
        try:
            backend.post_json(
                f"/sweeps/{sid}/metrics",
                {"worker": worker_name, "metrics": _fleet_snapshot()},
                idempotent=True,
            )
        except StoreError as exc:
            _LOG.debug("fleet metrics push failed %s", kv(sweep=sid, error=str(exc)))

    _LOG.info(
        "worker starting %s",
        kv(worker=worker_name, sweep=sid, hub=url, cells=len(by_key)),
    )

    while True:
        if max_cells is not None and computed >= max_cells:
            break
        try:
            with span("farm.lease", sweep=sid, worker=worker_name):
                grant = backend.post_json(f"/sweeps/{sid}/lease", {"worker": worker_name})
        except StoreUnavailableError:
            now = time.monotonic()
            if hub_down_since is None:
                _LOG.warning(
                    "hub unreachable, retrying %s",
                    kv(worker=worker_name, sweep=sid, hub=url, patience=hub_patience),
                )
            hub_down_since = hub_down_since or now
            if now - hub_down_since > hub_patience:
                _LOG.error(
                    "hub unreachable beyond patience, giving up %s",
                    kv(worker=worker_name, sweep=sid, hub=url),
                )
                raise
            time.sleep(min(poll_interval * 4, 2.0))
            continue
        hub_down_since = None
        if grant is None:
            raise StoreError(f"hub at {url} knows no sweep {sid}")
        if not grant.get("granted"):
            status = grant
            if grant.get("pending", 0) == 0 and grant.get("leased", 0) == 0:
                break  # every cell is done
            time.sleep(poll_interval)  # peers hold the remaining leases
            continue

        key = grant["key"]
        lease_token = grant["lease"]
        ttl = float(grant.get("ttl", 60.0))
        cell = by_key[key]
        _LOG.debug(
            "lease received %s",
            kv(worker=worker_name, sweep=sid, key=key, lease=lease_token, ttl=ttl),
        )
        if stall > 0:
            time.sleep(stall)  # fault-injection window (kill -9 tests)
        with span(
            "worker.cell", sweep=sid, key=key, worker=worker_name
        ), _Heartbeat(backend, sid, lease_token, interval=ttl / 3.0) as heartbeat:
            case = _case_for(cell)
            trial_set = run_trial_set(
                cell.spec,
                case,
                trials=len(cell.plan.seeds),
                base_seed=int(manifest["sweep"]["base_seed"]),
                experiment_id=str(manifest["sweep"]["experiment_id"]),
                max_rounds=cell.budget,
                backend=cell.plan.backend,
                dynamics=cell.plan.dynamics,
                store=store,
            )
            run_status, run_key = getattr(trial_set, "_store_status", ("computed", key))
            if run_key != key:  # pragma: no cover - guarded by manifest check
                raise StoreError(f"cell re-resolved to {run_key}, leased {key}")
            if run_status == "cached":
                # The hub lost (or never had) the object but our read-through
                # cache holds it: push the cached bytes through the verified
                # write path.  publish_object is idempotent, so this is safe
                # even when racing another worker.
                npz = backend.local.read_npz_bytes(key)
                sidecar = backend.local.read_sidecar_bytes(key)
                if npz is None or sidecar is None:  # pragma: no cover - raced gc
                    raise StoreError(f"cell {key} vanished from the local cache mid-publish")
                backend.publish_object(key, npz, sidecar)
        heartbeats += heartbeat.beats
        heartbeat_rtt_total += heartbeat.rtt_total
        if heartbeat.beats:
            heartbeat_rtt_last = heartbeat.rtt_last
        if heartbeat.lost:
            abandoned += 1
            _LOG.warning(
                "abandoning cell, lease lost mid-run %s",
                kv(worker=worker_name, sweep=sid, key=key),
            )
            _push_metrics()
            continue
        try:
            status = backend.post_json(
                f"/sweeps/{sid}/complete",
                {"lease": lease_token, "key": key, "worker": worker_name},
                idempotent=True,  # completes are idempotent server-side
            ) or {}
        except StoreUnavailableError:
            # The publish landed (or was cached); the lease will expire and
            # the farm will recover the committed object.  Count the work,
            # keep looping — the next lease call retries the hub anyway.
            status = {}
        computed += 1
        _LOG.debug(
            "cell completed %s",
            kv(worker=worker_name, sweep=sid, key=key, computed=computed),
        )
        _push_metrics()

    _push_metrics()
    _LOG.info(
        "worker finished %s",
        kv(worker=worker_name, sweep=sid, computed=computed, abandoned=abandoned),
    )
    return {
        "worker": worker_name,
        "computed": computed,
        "abandoned": abandoned,
        "status": status,
    }


def _case_for(cell: SweepCellPlan):
    """Rebuild the GraphCase a cell plan was resolved from."""
    from ..experiments.config import GraphCase

    return GraphCase(
        graph=cell.plan.graph,
        source=cell.plan.source,
        size_parameter=cell.size_parameter,
    )
