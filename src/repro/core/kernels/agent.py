"""Shared agent placement and random-walk stepping for the agent kernels.

The agent-based protocols (visit-exchange, meet-exchange and the hybrid)
maintain a population of independent random walks per trial; positions live
in one ``(trials, agents)`` array and a round advances every walk of every
trial in a single vectorized sampler pass.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..agents import default_agent_count
from .base import BatchKernel, NeighborSampler

__all__ = ["AgentWalkKernel"]


class AgentWalkKernel(BatchKernel):
    """Base kernel for the protocols built on independent random walks."""

    def __init__(
        self,
        *,
        agent_density: float = 1.0,
        num_agents: Optional[int] = None,
        lazy: bool = False,
        one_agent_per_vertex: bool = False,
    ) -> None:
        self.agent_density = float(agent_density)
        self.explicit_num_agents = num_agents
        self.lazy = lazy
        self.one_agent_per_vertex = bool(one_agent_per_vertex)
        self._num_agents = 0

    def _place_agents(self, graph, gens) -> np.ndarray:
        """(T, A) initial positions, drawn per trial from its own stream.

        Sampling the stationary distribution ``deg(v) / 2|E|`` is equivalent to
        picking a uniformly random directed-edge slot and taking its source
        vertex, so placement is one gather over the slot-source array instead
        of a per-trial inverse-CDF search.
        """
        num_trials = len(gens)
        if self.one_agent_per_vertex:
            self._num_agents = graph.num_vertices
            return np.tile(
                np.arange(graph.num_vertices, dtype=np.int64), (num_trials, 1)
            )
        self._num_agents = (
            int(self.explicit_num_agents)
            if self.explicit_num_agents is not None
            else default_agent_count(graph, self.agent_density)
        )
        if self._num_agents < 1:
            raise ValueError("need at least one agent")
        slot_sources = graph.slot_sources()
        uniforms = np.empty((num_trials, self._num_agents))
        for t, gen in enumerate(gens):
            gen.random(out=uniforms[t])
        slots = (uniforms * slot_sources.size).astype(np.int64)
        np.minimum(slots, slot_sources.size - 1, out=slots)
        return slot_sources[slots]

    def _setup_walk(self, uses_lazy: bool) -> None:
        shape = (self.num_trials, self._num_agents)
        # ``_masked`` aliases the walk sampler's offset buffer, dead by the
        # time the scatter mask is built (smaller resident set).
        self._walk_sampler = NeighborSampler(self, self._num_agents, lazy=uses_lazy)
        self._position_flat = np.empty(shape, dtype=np.int64)
        self._masked = self._walk_sampler.offsets
        self._gathered = np.empty(shape, dtype=bool)
        self._row_base1 = self._materialized_row_base(self._num_agents)
        # Lazily allocated on the first round with a materialized vertex mask.
        self._vertex_ok = None

    def _walk_rows(self, k: int) -> np.ndarray:
        """One walk step for the first ``k`` rows; returns the new positions.

        ``self.positions`` is left untouched so callers can still read the
        pre-step positions (edge reporting, meeting rules); they commit the
        move by assigning the returned buffer back into ``positions``.  Under
        a topology schedule, blocked traversals already resolve to "stay put".
        """
        return self._walk_sampler.sample_walk(k, self.positions[:k])

    def _vertex_ok_rows(self, k: int, positions: np.ndarray) -> Optional[np.ndarray]:
        """(k, agents) activity of the vertices the agents stand on, or None.

        ``None`` whenever the round has no vertex mask — agent/vertex
        interactions are then unrestricted, which is the common fast path.
        """
        if self._vertex_active is None:
            return None
        if self._vertex_ok is None:
            self._vertex_ok = np.empty(
                (self.num_trials, self._num_agents), dtype=bool
            )
        out = self._vertex_ok[:k]
        np.take(self._vertex_active, positions, out=out, mode="clip")
        return out

    def num_agents(self) -> int:
        return self._num_agents
