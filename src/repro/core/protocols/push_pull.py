"""The PUSH-PULL rumor-spreading protocol (Section 3 of the paper).

In round zero the source becomes informed.  In each round ``t >= 1`` *every*
vertex (informed or not) samples a uniformly random neighbor and the two
exchange information: if exactly one of the pair was informed before the
round, the other becomes informed in this round.

``T_ppull`` is the first round by which all vertices are informed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...graphs.graph import Graph
from ..engine import RoundProtocol
from ..rng import make_rng

__all__ = ["PushPullProtocol"]


class PushPullProtocol(RoundProtocol):
    """Vectorized implementation of PUSH-PULL.

    Every vertex samples each round, so the per-round work is a single
    vectorized sample of size ``n`` plus two boolean scatter updates (push
    direction and pull direction).
    """

    name = "push-pull"

    def __init__(self, *, track_all_exchanges: bool = False) -> None:
        #: When True, every sampled (caller, callee) pair is reported through
        #: ``observers.on_edge_used`` — the "bandwidth" view used by the
        #: fairness analysis — instead of only the informing transmissions.
        self.track_all_exchanges = bool(track_all_exchanges)
        self._graph: Optional[Graph] = None
        self._informed: Optional[np.ndarray] = None
        self._informed_count = 0
        self._messages = 0
        self._all_vertices: Optional[np.ndarray] = None

    def initialize(self, graph: Graph, source: int, rng) -> None:
        self._graph = graph
        self._informed = np.zeros(graph.num_vertices, dtype=bool)
        self._informed[source] = True
        self._informed_count = 1
        self._messages = 0
        self._all_vertices = np.arange(graph.num_vertices, dtype=np.int64)

    def execute_round(self, round_index: int, rng) -> None:
        graph = self._graph
        informed_before = self._informed
        assert graph is not None and informed_before is not None
        rng = make_rng(rng)

        callers = self._all_vertices
        assert callers is not None
        callees = graph.sample_neighbors(callers, rng)
        self._messages += int(callers.size)

        if self.track_all_exchanges and self.observers:
            self.observers.on_edges_used(callers, callees)

        caller_informed = informed_before[callers]
        callee_informed = informed_before[callees]

        # Push direction: an informed caller informs an uninformed callee.
        push_mask = caller_informed & ~callee_informed
        # Pull direction: an uninformed caller learns from an informed callee.
        pull_mask = ~caller_informed & callee_informed

        newly_informed = np.zeros(graph.num_vertices, dtype=bool)
        newly_informed[callees[push_mask]] = True
        newly_informed[callers[pull_mask]] = True
        newly_informed &= ~informed_before

        if np.any(newly_informed):
            if not self.track_all_exchanges and self.observers:
                self.observers.on_edges_used(callers[push_mask], callees[push_mask])
                self.observers.on_edges_used(callers[pull_mask], callees[pull_mask])
            informed_before |= newly_informed
            self._informed_count = int(np.count_nonzero(informed_before))

    def is_complete(self) -> bool:
        assert self._graph is not None
        return self._informed_count >= self._graph.num_vertices

    def informed_vertex_count(self) -> int:
        return self._informed_count

    def messages_sent(self) -> int:
        return self._messages

    def informed_mask(self) -> np.ndarray:
        """Return a copy of the per-vertex informed mask (for tests/analysis)."""
        assert self._informed is not None
        return self._informed.copy()
