"""Protocol-versus-protocol comparison utilities.

The central question of the paper is *which protocol wins where and by how
much*.  These helpers compare trial sets of different protocols on the same
graph, compute speedup factors, and detect whether a separation grows with
``n`` (polynomial separation) or stays bounded (constant-factor equivalence,
as Theorem 1 predicts for push vs visit-exchange on regular graphs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..core.results import TrialSet
from .scaling import power_law_exponent
from .statistics import summarize

__all__ = ["ProtocolComparison", "compare_trials", "separation_exponent", "winner_table"]


@dataclass(frozen=True)
class ProtocolComparison:
    """Pairwise comparison of two protocols on the same graph configuration."""

    graph_name: str
    num_vertices: int
    protocol_a: str
    protocol_b: str
    mean_time_a: float
    mean_time_b: float
    speedup_of_a: float
    faster: str

    def describe(self) -> str:
        """One-line human readable rendering."""
        return (
            f"{self.graph_name} (n={self.num_vertices}): {self.protocol_a} "
            f"mean={self.mean_time_a:.1f} vs {self.protocol_b} mean={self.mean_time_b:.1f}"
            f" -> {self.faster} is {max(self.speedup_of_a, 1/self.speedup_of_a):.2f}x faster"
        )


def compare_trials(trials_a: TrialSet, trials_b: TrialSet) -> ProtocolComparison:
    """Compare the mean broadcast times of two trial sets on the same graph."""
    if trials_a.num_vertices != trials_b.num_vertices:
        raise ValueError("trial sets must be on graphs of the same size")
    mean_a = trials_a.mean_broadcast_time()
    mean_b = trials_b.mean_broadcast_time()
    if mean_a is None or mean_b is None:
        raise ValueError("both trial sets need at least one completed run")
    speedup = mean_b / mean_a if mean_a > 0 else math.inf
    faster = trials_a.protocol if mean_a <= mean_b else trials_b.protocol
    return ProtocolComparison(
        graph_name=trials_a.graph_name,
        num_vertices=trials_a.num_vertices,
        protocol_a=trials_a.protocol,
        protocol_b=trials_b.protocol,
        mean_time_a=float(mean_a),
        mean_time_b=float(mean_b),
        speedup_of_a=float(speedup),
        faster=faster,
    )


def separation_exponent(
    sizes: Sequence[float],
    times_a: Sequence[float],
    times_b: Sequence[float],
) -> float:
    """Exponent of the growth of ``T_a / T_b`` with ``n``.

    A value near 0 means the two protocols are within constant factors of each
    other (Theorem 1's regime); a clearly positive value means protocol ``a``
    falls behind polynomially (e.g. push-pull vs visit-exchange on the double
    star, where the exponent approaches 1).
    """
    sizes = np.asarray(list(sizes), dtype=float)
    times_a = np.asarray(list(times_a), dtype=float)
    times_b = np.asarray(list(times_b), dtype=float)
    if not (sizes.size == times_a.size == times_b.size) or sizes.size < 2:
        raise ValueError("need three equal-length series with at least two points")
    ratios = times_a / np.maximum(times_b, 1e-12)
    return power_law_exponent(sizes, np.maximum(ratios, 1e-12))


def winner_table(trial_sets: Sequence[TrialSet]) -> Dict[str, Dict[str, float]]:
    """Build a per-protocol summary table from trial sets on the same graph.

    Returns ``{protocol: {"mean": ..., "median": ..., "max": ..., "completion_rate": ...}}``
    sorted by mean broadcast time; incomplete protocols report ``inf`` means so
    they naturally sort last.
    """
    table: Dict[str, Dict[str, float]] = {}
    for trials in trial_sets:
        times = trials.broadcast_times()
        if times:
            summary = summarize(times)
            table[trials.protocol] = {
                "mean": summary.mean,
                "median": summary.median,
                "max": summary.maximum,
                "completion_rate": trials.completion_rate,
            }
        else:
            table[trials.protocol] = {
                "mean": math.inf,
                "median": math.inf,
                "max": math.inf,
                "completion_rate": trials.completion_rate,
            }
    return dict(sorted(table.items(), key=lambda item: item[1]["mean"]))
