"""Content-addressed result store and resumable sweep orchestration.

Every (graph, protocol, seeds, backend) cell in this package is a pure
function of its spec, so finished cells are cached *exactly*: the store maps
a canonical cell key (:mod:`repro.store.keys`) to a compressed artifact
holding the full :class:`~repro.core.results.TrialSet`
(:mod:`repro.store.artifacts`), sweeps journal their progress for resume and
garbage-collection anchoring (:mod:`repro.store.journal`), and
:mod:`repro.store.orchestrator` resolves (spec, case) pairs into the cell
plans the experiment runner executes and the reporting layer looks up.

Enable it with ``store=`` on :func:`repro.experiments.runner.run_trial_set`
/ :func:`~repro.experiments.runner.run_experiment`, the ``--store`` CLI flag
or the ``REPRO_STORE`` environment variable; manage it with
``repro store ls|info|gc|export``.
"""

from .artifacts import (
    STORE_ENV_VAR,
    ResultStore,
    StoreCorruptionError,
    StoreError,
    resolve_store,
)
from .journal import SweepJournal, sweep_id
from .keys import (
    SEMANTICS_VERSION,
    STORE_FORMAT_VERSION,
    canonical_json,
    cell_key,
    dynamics_spec,
    graph_fingerprint,
    trial_cell_payload,
)
from .orchestrator import CellPlan, resolve_cell, sweep_payload

__all__ = [
    "CellPlan",
    "ResultStore",
    "SEMANTICS_VERSION",
    "STORE_ENV_VAR",
    "STORE_FORMAT_VERSION",
    "StoreCorruptionError",
    "StoreError",
    "SweepJournal",
    "canonical_json",
    "cell_key",
    "dynamics_spec",
    "graph_fingerprint",
    "resolve_cell",
    "resolve_store",
    "sweep_id",
    "sweep_payload",
    "trial_cell_payload",
]
