"""The edge-usage fairness experiment (Section 1's "locally fair" claim).

The experiment measures, on the star, the double star and a random regular
graph:

* the per-edge traversal distribution of a stationary agent population (the
  agent protocols' "bandwidth" usage), which the paper argues is uniform over
  edges, and
* the per-edge distribution of *sampled exchanges* under push-pull (every call
  a vertex makes, informing or not), which on the double star starves the
  single bridge edge: it is selected with probability only O(1/n) per round.

The headline numbers are the Gini coefficient of the per-edge usage counts and
the maximum single-edge share of the total traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..analysis.fairness import FairnessReport, edge_usage_from_walks, fairness_from_counts
from ..core.engine import Engine
from ..core.observers import EdgeUsageObserver, ObserverGroup
from ..core.protocols import make_protocol
from ..core.rng import derive_seed
from ..graphs.double_star import double_star
from ..graphs.graph import Graph
from ..graphs.regular import random_regular_graph
from ..graphs.star import star
from .regular_graphs import regular_degree_for

__all__ = ["FairnessExperimentResult", "run_fairness_experiment", "default_fairness_graphs"]


def default_fairness_graphs(size: int, seed: int) -> Dict[str, Graph]:
    """The three graphs the fairness experiment compares."""
    degree = regular_degree_for(size)
    rng = np.random.default_rng(seed)
    return {
        "star": star(size),
        "double-star": double_star(size),
        "random-regular": random_regular_graph(size, degree, rng),
    }


@dataclass
class FairnessExperimentResult:
    """Fairness reports keyed by (graph label, mechanism label)."""

    size: int
    reports: Dict[str, Dict[str, FairnessReport]] = field(default_factory=dict)

    def gini(self, graph_label: str, mechanism: str) -> float:
        """Convenience accessor for the Gini coefficient of one cell."""
        return self.reports[graph_label][mechanism].gini

    def table_rows(self) -> List[Dict[str, object]]:
        """Rows for the report: one per (graph, mechanism)."""
        rows = []
        for graph_label in sorted(self.reports):
            for mechanism, report in sorted(self.reports[graph_label].items()):
                rows.append(
                    {
                        "graph": graph_label,
                        "mechanism": mechanism,
                        "edges": report.num_edges,
                        "total uses": report.total_uses,
                        "gini": report.gini,
                        "max edge share": report.max_share,
                        "min edge share": report.min_share,
                        "unused edges": report.unused_edges,
                    }
                )
        return rows


def _push_pull_edge_usage(graph: Graph, source: int, seed: int, trials: int) -> FairnessReport:
    """Aggregate sampled-exchange edge usage of push-pull over several runs."""
    combined: Dict[tuple, int] = {}
    for trial in range(trials):
        observer = EdgeUsageObserver()
        engine = Engine(record_history=False)
        protocol = make_protocol("push-pull", track_all_exchanges=True)
        engine.run(
            protocol,
            graph,
            source,
            seed=derive_seed(seed, "fairness-ppull", trial),
            observers=ObserverGroup([observer]),
        )
        for edge, count in observer.counts.items():
            combined[edge] = combined.get(edge, 0) + count
    return fairness_from_counts(graph, combined)


def run_fairness_experiment(
    *,
    size: int = 256,
    walk_rounds: int = 200,
    push_pull_trials: int = 5,
    base_seed: int = 0,
) -> FairnessExperimentResult:
    """Measure edge-usage fairness of agents vs push-pull on three graphs."""
    graphs = default_fairness_graphs(size, derive_seed(base_seed, "fairness-graphs", size))
    result = FairnessExperimentResult(size=size)
    for label, graph in graphs.items():
        agent_report = edge_usage_from_walks(
            graph,
            rounds=walk_rounds,
            seed=derive_seed(base_seed, "fairness-walks", label),
            lazy=graph.is_bipartite(),
        )
        ppull_report = _push_pull_edge_usage(
            graph,
            source=2 if graph.num_vertices > 2 else 0,
            seed=derive_seed(base_seed, "fairness-ppull", label),
            trials=push_pull_trials,
        )
        result.reports[label] = {
            "agents (all traversals)": agent_report,
            "push-pull (sampled edges)": ppull_report,
        }
    return result
