"""The double star ``S^2_n`` of Figure 1(b).

Two stars of ``n/2`` vertices each, with their centers joined by an edge.
Lemma 3 of the paper shows that on this graph

* ``E[T_ppull] = Omega(n)`` — push-pull must sample the single bridge edge,
  which happens with probability ``O(1/n)`` per round, whereas
* ``T_visitx = O(log n)`` and ``T_meetx = O(log n)`` w.h.p. — some agent
  crosses the bridge with constant probability per round because a constant
  fraction of all agents sits on the two centers at any time.

This is the paper's flagship example of the *local fairness* advantage of the
agent-based protocols.
"""

from __future__ import annotations

import numpy as np

from .builders import register_builder
from .graph import Graph, GraphError

__all__ = ["double_star", "CENTER_A", "CENTER_B", "leaves_of", "BUILDER_VERSION"]

#: Vertex id of the first star's center.
CENTER_A = 0
#: Vertex id of the second star's center.
CENTER_B = 1

#: Bump when :func:`double_star` changes the instance it emits for the same
#: parameters (invalidates manifest-trusted warm starts, never results).
BUILDER_VERSION = 1
register_builder("double_star", BUILDER_VERSION)


def double_star(num_vertices: int) -> Graph:
    """Build a double star on (approximately) ``num_vertices`` vertices.

    Vertices ``0`` and ``1`` are the two centers, connected by an edge.  The
    remaining vertices are split as evenly as possible into leaves of the two
    centers.  ``num_vertices`` must be at least 4 so each center has at least
    one leaf.
    """
    if num_vertices < 4:
        raise GraphError("a double star needs at least 4 vertices")
    n = int(num_vertices)
    num_leaves = n - 2
    half = num_leaves // 2

    edges = np.empty((num_leaves + 1, 2), dtype=np.int64)
    edges[0] = (CENTER_A, CENTER_B)
    edges[1:, 1] = np.arange(2, n)
    edges[1 : 1 + half, 0] = CENTER_A
    edges[1 + half :, 0] = CENTER_B
    return Graph(n, edges, name=f"double_star(n={n})")


def leaves_of(graph: Graph, center: int) -> list:
    """Return the leaves attached to ``center`` (one of the two center ids)."""
    if center not in (CENTER_A, CENTER_B):
        raise GraphError("center must be CENTER_A (0) or CENTER_B (1)")
    return [int(v) for v in graph.neighbors(center) if int(v) not in (CENTER_A, CENTER_B)]
