"""Benchmark harness configuration.

Every benchmark file regenerates one table/figure-equivalent of the paper: it
runs a (reduced-scale) sweep through the registered experiment for that claim,
asserts the qualitative shape the paper proves, and uses pytest-benchmark to
time representative runs so protocol-level performance regressions are visible
too.

Run the full harness with::

    pytest benchmarks/ --benchmark-only

and regenerate the paper-scale numbers with ``python -m repro report``.
"""

from __future__ import annotations

import os
import sys

# Make the sibling ``_helpers`` module importable regardless of how pytest was
# invoked (benchmarks/ has no __init__.py on purpose).
sys.path.insert(0, os.path.dirname(__file__))
