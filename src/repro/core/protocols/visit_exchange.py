"""The VISIT-EXCHANGE protocol (Section 3 of the paper).

A set ``A`` of agents performs independent random walks started from the
stationary distribution.  Both vertices and agents store the rumor:

* Round 0: the source vertex becomes informed, and so does every agent that
  starts on the source.
* Each round ``t >= 1``: all agents take one random-walk step in parallel.
  If an agent informed *in a previous round* visits an uninformed vertex, the
  vertex becomes informed in this round.  If an uninformed agent visits a
  vertex that is informed (from a previous round, or in the current round by
  another informed agent), the agent becomes informed.

``T_visitx`` is the first round by which all vertices (and hence all agents)
are informed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...graphs.graph import Graph
from ..agents import AgentSystem, default_agent_count
from ..engine import RoundProtocol
from ..rng import make_rng

__all__ = ["VisitExchangeProtocol"]


class VisitExchangeProtocol(RoundProtocol):
    """Vectorized implementation of VISIT-EXCHANGE.

    Parameters
    ----------
    agent_density:
        ``alpha`` such that ``|A| = round(alpha * n)``; the paper assumes a
        linear number of agents, and all experiments default to ``alpha = 1``.
    num_agents:
        Explicit agent count overriding ``agent_density`` when given.
    lazy:
        Use lazy walks (stay put with probability 1/2).  Not required by the
        protocol's definition but exposed for ablations.
    one_agent_per_vertex:
        Start one agent on every vertex instead of the stationary placement
        (the alternative initialisation mentioned after Lemma 11).
    track_edge_traversals:
        If True, report every agent traversal through ``observers.on_edge_used``
        so the fairness analysis can measure per-edge utilisation.  This adds a
        Python-level loop per round and is off by default.
    """

    name = "visit-exchange"

    def __init__(
        self,
        *,
        agent_density: float = 1.0,
        num_agents: Optional[int] = None,
        lazy: bool = False,
        one_agent_per_vertex: bool = False,
        track_edge_traversals: bool = False,
    ) -> None:
        self.agent_density = float(agent_density)
        self.explicit_num_agents = num_agents
        self.lazy = bool(lazy)
        self.one_agent_per_vertex = bool(one_agent_per_vertex)
        self.track_edge_traversals = bool(track_edge_traversals)

        self._graph: Optional[Graph] = None
        self._agents: Optional[AgentSystem] = None
        self._vertex_informed: Optional[np.ndarray] = None
        self._informed_vertex_count = 0

    # ------------------------------------------------------------------
    # RoundProtocol interface
    # ------------------------------------------------------------------
    def initialize(self, graph: Graph, source: int, rng) -> None:
        rng = make_rng(rng)
        self._graph = graph
        if self.one_agent_per_vertex:
            agents = AgentSystem.one_per_vertex(graph, lazy=self.lazy)
        else:
            count = (
                int(self.explicit_num_agents)
                if self.explicit_num_agents is not None
                else default_agent_count(graph, self.agent_density)
            )
            agents = AgentSystem.from_stationary(graph, count, rng, lazy=self.lazy)
        self._agents = agents

        self._vertex_informed = np.zeros(graph.num_vertices, dtype=bool)
        self._vertex_informed[source] = True
        self._informed_vertex_count = 1
        # Round 0: agents sitting on the source learn the rumor immediately.
        agents.inform_agents(agents.agents_at(source))

    def execute_round(self, round_index: int, rng) -> None:
        graph = self._graph
        agents = self._agents
        vertex_informed = self._vertex_informed
        assert graph is not None and agents is not None and vertex_informed is not None
        rng = make_rng(rng)

        informed_before_step = agents.informed.copy()
        previous_positions = agents.step(rng)

        if self.track_edge_traversals and self.observers:
            moved = previous_positions != agents.positions
            self.observers.on_edges_used(
                previous_positions[moved], agents.positions[moved]
            )

        # Agents informed in a previous round inform the vertices they visit now.
        informing_positions = agents.positions[informed_before_step]
        if informing_positions.size:
            newly_vertices = np.unique(
                informing_positions[~vertex_informed[informing_positions]]
            )
            if newly_vertices.size:
                vertex_informed[newly_vertices] = True
                self._informed_vertex_count += int(newly_vertices.size)
                if not self.track_edge_traversals and self.observers:
                    # Report the edges that delivered the rumor to new vertices.
                    carriers = (
                        informed_before_step
                        & np.isin(agents.positions, newly_vertices)
                        & (previous_positions != agents.positions)
                    )
                    self.observers.on_edges_used(
                        previous_positions[carriers], agents.positions[carriers]
                    )

        # Uninformed agents standing on (now) informed vertices become informed.
        uninformed_on_informed = ~agents.informed & vertex_informed[agents.positions]
        if np.any(uninformed_on_informed):
            agents.informed |= uninformed_on_informed

    def is_complete(self) -> bool:
        assert self._graph is not None
        return self._informed_vertex_count >= self._graph.num_vertices

    def informed_vertex_count(self) -> int:
        return self._informed_vertex_count

    def informed_agent_count(self) -> int:
        assert self._agents is not None
        return self._agents.num_informed

    def num_agents(self) -> int:
        assert self._agents is not None
        return self._agents.num_agents

    def messages_sent(self) -> int:
        # Each agent traversal carries one message-equivalent (a token counter
        # plus the rumor); this matches the paper's communication accounting.
        return 0

    def extra_metadata(self) -> dict:
        return {
            "agent_density": self.agent_density,
            "lazy": self.lazy,
            "one_agent_per_vertex": self.one_agent_per_vertex,
        }

    # ------------------------------------------------------------------
    # inspection helpers used by tests and the coupling module
    # ------------------------------------------------------------------
    def vertex_informed_mask(self) -> np.ndarray:
        """Copy of the per-vertex informed mask."""
        assert self._vertex_informed is not None
        return self._vertex_informed.copy()

    def agent_system(self) -> AgentSystem:
        """The live agent system (not a copy); treat as read-only."""
        assert self._agents is not None
        return self._agents
