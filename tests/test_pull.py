"""Tests for the PULL protocol (ablation baseline)."""

from __future__ import annotations

import numpy as np

from repro import simulate
from repro.core.engine import Engine
from repro.core.protocols import PullProtocol
from repro.graphs import Graph, complete_graph, star


class TestBasicBehaviour:
    def test_completes_on_complete_graph(self):
        result = simulate("pull", complete_graph(32), source=0, seed=1)
        assert result.completed

    def test_star_from_center_takes_one_round(self):
        # Every leaf pulls from its only neighbor, the informed center.
        result = simulate("pull", star(40), source=0, seed=0)
        assert result.broadcast_time == 1

    def test_star_from_leaf_is_slow_like_push_is(self):
        # From a leaf, the center pulls from a random leaf each round, so it
        # takes ~n rounds before the center even becomes informed... actually
        # the center has degree n and pulls from the single informed leaf with
        # probability 1/n per round; after that one more round suffices.
        graph = star(30)
        times = [
            simulate("pull", graph, source=5, seed=seed).broadcast_time for seed in range(10)
        ]
        assert np.mean(times) > 10

    def test_informed_count_monotone(self):
        result = simulate("pull", complete_graph(32), source=0, seed=4)
        history = result.informed_vertex_history
        assert all(b >= a for a, b in zip(history, history[1:]))

    def test_messages_counted_for_uninformed_only(self):
        graph = complete_graph(8)
        result = simulate("pull", graph, source=0, seed=2)
        # In the first round 7 uninformed vertices pull.
        assert result.messages_sent >= 7

    def test_informed_mask_complete(self):
        protocol = PullProtocol()
        Engine().run(protocol, complete_graph(16), 3, seed=0)
        assert protocol.informed_mask().all()

    def test_two_vertex_graph(self):
        result = simulate("pull", Graph(2, [(0, 1)]), source=0, seed=0)
        assert result.broadcast_time == 1

    def test_same_seed_reproducible(self):
        graph = complete_graph(20)
        assert (
            simulate("pull", graph, source=0, seed=7).broadcast_time
            == simulate("pull", graph, source=0, seed=7).broadcast_time
        )
