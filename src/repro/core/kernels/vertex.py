"""Shared state for the vertex protocols (push, pull and push-pull).

The three call-your-neighbor protocols keep one boolean informed flag per
vertex per trial and sample one uniformly random neighbor per vertex per
round.  The flat informed buffer has a slot-0 write sink: scatters index it
with ``flat_index * mask`` instead of extracting the masked indices, which is
the single most expensive operation it replaces.

Sparse-frontier tier
--------------------
Above :func:`~repro.core.kernels.base.sparse_threshold` vertices (or when
``frontier="sparse"`` is forced) the kernels switch representations: informed
membership lives in a :class:`~repro.core.kernels.packed.PackedBits` bitset,
and each round's work is driven by explicit per-trial index arrays — the
*frontier* (informed vertices that still have an uninformed neighbor, for the
push direction) and the *uninformed list* (for the pull direction) — instead
of whole ``(trials, n)`` boolean algebra.

Bit-identity with the dense path is a hard invariant, achieved by splitting
randomness from arithmetic: the raw draw streams are refilled on exactly the
dense schedule (one fixed-width block per trial per ``_DRAW_BLOCK`` rounds,
see :meth:`~repro.core.kernels.base.BatchKernel._raw_round_start`), and the
sparse step merely *reads* the stream at the frontier positions it needs.
Vertices outside the frontier would have drawn values that cannot change
state (an informed vertex with no uninformed neighbor pushes into informed
territory; the dense path ignores uninformed vertices' push draws
symmetrically), so skipping the read skips no information.  The per-position
fixed-point arithmetic is then replicated exactly (same dtypes, same
multiply/shift), making every sampled callee — and therefore every result —
identical bit for bit.

Dynamics schedules and observers force the dense fallback: activity masks
are materialized per CSR slot and edge reporting scans dense rows, so both
are defined on the dense representation (see
:meth:`~repro.core.kernels.base.BatchKernel._resolve_frontier`).

:class:`SparseVertexMixin` carries the tier's shared machinery so the hybrid
kernel (an agent kernel with a push-pull half) can reuse it against its
boolean vertex state.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import BatchKernel, NeighborSampler
from .packed import PackedBits

__all__ = ["SparseVertexMixin", "VertexKernel"]


class SparseVertexMixin:
    """Frontier bookkeeping shared by the sparse vertex and hybrid kernels.

    Provides the dense-stream-compatible callee sampler and the two index
    structures: per-trial frontiers (with uninformed-neighbor counts) and
    per-trial uninformed lists.  Which ones a protocol needs is declared via
    the two class flags.
    """

    #: Which sparse index structures the protocol needs: the push direction
    #: walks an informed frontier, the pull direction walks the uninformed
    #: list.  Subclasses override.
    _sparse_needs_frontier = False
    _sparse_needs_uninformed = False

    def _setup_sparse_vertex(self, graph, source: int) -> None:
        """Allocate the sparse tier's draw stream and index structures.

        The draw stream mirrors the dense ``NeighborSampler``'s exactly —
        same width (one value per vertex), same precision choice, same refill
        block — so a trial's generator consumption is identical in both
        tiers; only the *reads* differ.
        """
        trials = self.num_trials
        n = graph.num_vertices
        max_degree = int(graph.degrees.max())
        self._offset_bits = 16 if max_degree <= 64 else 32
        wide = np.int32 if self._offset_bits == 16 else np.int64
        self._sparse_stream = self._raw_stream(n, self._offset_bits)
        self._regular_degree = graph.regularity_degree() if graph.is_regular() else None
        if self._regular_degree is not None:
            self._degree_wide = wide(self._regular_degree)
        else:
            self._degrees_wide = graph.degrees.astype(wide)
        # Vertex ids in the frontier structures; int32 halves the footprint
        # and covers every realistic n.
        id_dtype = np.int64 if n > (1 << 31) - 1 else np.int32
        if self._sparse_needs_frontier:
            # Uninformed-neighbor counts drive frontier membership: an
            # informed vertex leaves the frontier for good once its count
            # hits zero.  Initialized to the degrees, then the source's
            # neighbors each lose one uninformed neighbor (the source).
            self._uninf_nbr = np.repeat(
                graph.degrees[None, :].astype(np.int32), trials, axis=0
            )
            source_nbrs = graph.indices[graph.indptr[source] : graph.indptr[source + 1]]
            self._uninf_nbr[:, source_nbrs] -= 1
            self._register_rows(self._uninf_nbr)
            front0 = np.array([source], dtype=id_dtype)
            front0 = front0[self._uninf_nbr[0, front0] > 0]
            self._frontier_rows = [front0.copy() for _ in range(trials)]
            self._register_row_list(self._frontier_rows)
        if self._sparse_needs_uninformed:
            uninf0 = np.delete(np.arange(n, dtype=id_dtype), source)
            self._uninformed_rows = [uninf0.copy() for _ in range(trials)]
            self._register_row_list(self._uninformed_rows)

    def _sparse_callees(self, row: int, start: int, positions: np.ndarray) -> np.ndarray:
        """Sampled callee of each position, bit-identical to the dense sampler.

        ``start`` is the round's offset from ``_raw_round_start``;
        ``positions`` are vertex ids.  The fixed-point chain reproduces
        :meth:`NeighborSampler.sample_per_vertex` value for value: raw bits
        times the (wide-typed) degree, truncated by the precision shift, into
        the CSR row.
        """
        graph = self.graph
        raw = self._sparse_stream["values"][row, start + positions]
        if self._regular_degree is not None:
            offsets = (raw * self._degree_wide) >> self._offset_bits
            flat = positions.astype(np.int64) * self._regular_degree + offsets
        else:
            offsets = (raw * self._degrees_wide[positions]) >> self._offset_bits
            flat = graph.indptr[positions] + offsets
        return graph.indices[flat]

    def _sparse_note_informed(self, row: int, newly: np.ndarray) -> None:
        """Maintain uninformed-neighbor counts and the frontier after ``newly``
        (deduplicated vertex ids) became informed in ``row``.

        Each neighbor of a newly informed vertex has one fewer uninformed
        neighbor.  The decrements are aggregated adaptively: a sort-based
        unique when the neighbor batch is small (skewed families whose
        frontier stays tiny — work stays proportional to the frontier), a
        length-n bincount once the batch is a sizable fraction of n
        (expander hot phase, where the counting sort beats the comparison
        sort and the O(n) pass is amortized by the batch itself).
        """
        graph = self.graph
        ids64 = newly.astype(np.int64)
        if self._regular_degree is not None:
            d = self._regular_degree
            neighbors = graph.indices[
                (ids64 * d)[:, None] + np.arange(d, dtype=np.int64)
            ].ravel()
        else:
            neighbors = graph._frontier_neighbors(ids64)
        if neighbors.size:
            counts_row = self._uninf_nbr[row]
            if neighbors.size >= counts_row.size >> 3:
                counts_row -= np.bincount(
                    neighbors, minlength=counts_row.size
                ).astype(np.int32)
            else:
                ids, dec = np.unique(neighbors, return_counts=True)
                counts_row[ids] -= dec.astype(np.int32)
        front = self._frontier_rows[row]
        candidates = np.concatenate([front, newly.astype(front.dtype)])
        self._frontier_rows[row] = candidates[self._uninf_nbr[row, candidates] > 0]


class VertexKernel(SparseVertexMixin, BatchKernel):
    """Base kernel for the protocols whose state is one flag per vertex."""

    def __init__(self) -> None:
        pass

    def initialize(self, graph, source, gens):
        self._setup_common(graph, gens)
        if self._resolve_frontier() == "sparse":
            self._initialize_sparse(graph, int(source))
            return
        shape = (self.num_trials, graph.num_vertices)
        self._informed_flat = np.zeros(self.num_trials * graph.num_vertices + 1, dtype=bool)
        self.informed = self._informed_flat[1:].reshape(shape)
        self.informed[:, source] = True
        self.counts = np.ones(self.num_trials, dtype=np.int64)
        self._messages = np.zeros(self.num_trials, dtype=np.int64)
        self._register_rows(self.informed, self.counts, self._messages)
        # Scratch reused every round to avoid allocator churn on the hot path;
        # ``_masked`` aliases the sampler's offset buffer, which is dead by the
        # time the scatter mask is built (smaller resident set, fewer cache
        # evictions).
        self._sampler = NeighborSampler(self, graph.num_vertices)
        self._callee_flat = np.empty(shape, dtype=np.int64)
        self._masked = self._sampler.offsets
        self._gathered = np.empty(shape, dtype=bool)
        self._pull_scratch = np.empty(shape, dtype=bool)
        self._row_base1 = self._materialized_row_base(graph.num_vertices)

    def _initialize_sparse(self, graph, source: int) -> None:
        #: Dense-only view; absent in sparse mode (state is in ``_packed``).
        self.informed = None
        self._packed = PackedBits(self.num_trials, graph.num_vertices)
        self._packed.words[:, source >> 6] |= np.uint64(1) << np.uint64(source & 63)
        self.counts = np.ones(self.num_trials, dtype=np.int64)
        self._messages = np.zeros(self.num_trials, dtype=np.int64)
        self._register_rows(self._packed.words, self.counts, self._messages)
        self._setup_sparse_vertex(graph, source)

    def informed_row(self, row: int) -> np.ndarray:
        """Length-n boolean informed state of one row (a copy), either tier."""
        if self.frontier_resolved == "sparse":
            return self._packed.to_bool_row(row)
        return self.informed[row].copy()

    def _sample_callees(self, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Per-vertex callee samples as ``(vertex ids, flat informed indices)``.

        The vertex ids stay available for the edge-reporting slow path; the
        flat form indexes the (trial, vertex) informed buffer directly.
        """
        callees = self._sampler.sample_per_vertex(k)
        callee_flat = self._callee_flat[:k]
        np.add(callees, self._row_base1[:k], out=callee_flat)
        return callees, callee_flat

    def complete_rows(self, k):
        return self.counts[:k] >= self.graph.num_vertices

    def informed_vertex_counts(self, k):
        return self.counts[:k]

    def messages_by_trial(self):
        out = np.empty(self.num_trials, dtype=np.int64)
        out[self.trial_ids] = self._messages
        return out
