"""Content-addressed artifact store for cached :class:`TrialSet` records.

:class:`ResultStore` is the facade: it owns serialization (compressed NPZ
per-trial arrays + JSON sidecar), the SHA-256 integrity contract and policy
(listing, gc, export), while the actual byte transport is a pluggable
:class:`~repro.store.backends.StoreBackend`:

* :class:`~repro.store.backends.LocalBackend` — the sharded on-disk layout
  (``objects/<k0k1>/<key>.npz`` + ``.json`` sidecar, ``sweeps/*.jsonl``
  journals) described in :mod:`repro.store.backends.local`;
* :class:`~repro.store.backends.RemoteBackend` — an HTTP client for the
  read-only ``repro store serve`` service, with a local read-through cache
  so every object is fetched at most once.

``ResultStore(root)`` accepts either a filesystem path or an
``http(s)://host:port`` service URL — the same two forms the
``REPRO_STORE`` environment variable accepts.

The NPZ member holds the numeric per-trial data (broadcast times,
completion flags, message counts, ragged per-round histories in
flat-plus-lengths form); the JSON sidecar holds everything else (protocol,
graph name, backend, per-trial metadata and edge-traversal dicts) plus the
SHA-256 and byte size of the NPZ payload.

Writes are atomic and ordered NPZ-before-sidecar, so the sidecar's
existence is the commit marker: a reader never observes a half-written
object.  Reads verify the sidecar's checksum against the NPZ bytes and
raise :class:`StoreCorruptionError` on any mismatch — a corrupt cache must
fail loudly, never silently feed wrong numbers into a figure.  Both
contracts hold across every backend: the service streams the checksummed
bytes verbatim, and the remote backend re-verifies before committing
anything to its cache.
"""

from __future__ import annotations

import io
import json
import os
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.results import TrialSet
from .keys import STORE_FORMAT_VERSION

if TYPE_CHECKING:  # the backends package imports this module's exceptions,
    # so the runtime import lives inside ResultStore.__init__.
    from .backends import StoreBackend

__all__ = [
    "STORE_ENV_VAR",
    "ResultStore",
    "StoreConflictError",
    "StoreCorruptionError",
    "StoreError",
    "StoreUnavailableError",
    "resolve_store",
]

#: Environment variable that enables the store by default when set to a
#: path or an ``http(s)://`` store-service URL.
STORE_ENV_VAR = "REPRO_STORE"

#: NPZ members holding one value per trial; their leading dimensions must
#: agree with the sidecar's per-trial records.
_PER_TRIAL_MEMBERS = (
    "broadcast_time",
    "completed",
    "rounds_executed",
    "messages_sent",
    "num_agents",
    "source",
    "num_edges",
)


class StoreError(RuntimeError):
    """Base class for result-store failures."""


class StoreCorruptionError(StoreError):
    """An on-disk artifact failed its integrity check."""


class StoreConflictError(StoreError):
    """A publish clashed with an existing object holding *different* bytes.

    Cells are content-addressed and pure functions of their spec, so two
    honest computations of one key are bit-identical and publishes are
    idempotent.  A conflicting payload therefore means something is wrong —
    nondeterminism, a corrupted worker, mismatched code versions — and must
    fail loudly rather than silently keep either side.
    """


class StoreUnavailableError(StoreError):
    """The store service could not be reached (after the configured retries).

    Carries the attempted URL and a retry summary so the operator sees
    *where* the client was pointed and *how hard* it tried, instead of a raw
    ``URLError`` traceback from deep inside ``urllib``.
    """

    def __init__(
        self,
        url: str,
        reason: str,
        *,
        attempts: int = 1,
        elapsed: float = 0.0,
    ) -> None:
        self.url = url
        self.reason = reason
        self.attempts = attempts
        self.elapsed = elapsed
        plural = "attempt" if attempts == 1 else "attempts"
        super().__init__(
            f"store service at {url} is unreachable after {attempts} {plural} "
            f"over {elapsed:.1f}s: {reason}"
        )


def _sha256(data: bytes) -> str:
    import hashlib

    return hashlib.sha256(data).hexdigest()


def _flatten_histories(histories: Sequence[Sequence[int]]) -> Tuple[np.ndarray, np.ndarray]:
    """Encode a ragged list of int lists as (flat values, per-trial lengths)."""
    lengths = np.asarray([len(h) for h in histories], dtype=np.int64)
    if int(lengths.sum()) == 0:
        return np.empty(0, dtype=np.int64), lengths
    flat = np.concatenate([np.asarray(h, dtype=np.int64) for h in histories if len(h)])
    return flat, lengths


def _unflatten_histories(flat: np.ndarray, lengths: np.ndarray) -> List[List[int]]:
    """Invert :func:`_flatten_histories`."""
    offsets = np.zeros(lengths.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    return [[int(v) for v in flat[offsets[i] : offsets[i + 1]]] for i in range(lengths.size)]


class ResultStore:
    """A content-addressed store of trial-set artifacts behind a backend.

    ``root`` may be a directory path (local store), an ``http(s)://`` URL of
    a ``repro store serve`` service (remote store with a local read-through
    cache at ``cache`` / ``$REPRO_STORE_CACHE`` / a per-URL default), or an
    already-constructed :class:`~repro.store.backends.StoreBackend`.

    The store is safe for concurrent writers (the process-parallel cell
    scheduler persists from worker processes): writes are atomic renames and
    two writers racing on the same key write identical bytes by
    construction.  Instances are cheap and picklable — only the backend
    configuration (paths, URL) crosses process boundaries.
    """

    def __init__(
        self,
        root: Union[str, Path, "StoreBackend", None] = None,
        *,
        backend: Optional["StoreBackend"] = None,
        cache: Union[str, Path, None] = None,
    ) -> None:
        from .backends import resolve_backend

        if backend is None:
            if root is None:
                raise StoreError("ResultStore needs a root path, URL or backend")
            backend = resolve_backend(root, cache=cache)
        self.backend = backend
        #: The store's designator: a ``Path`` for local stores, the service
        #: URL string for remote ones.
        self.root = backend.location

    def __repr__(self) -> str:
        return f"ResultStore({str(self.root)!r})"

    # ------------------------------------------------------------------
    # paths (the backend's local surface: the store root, or the
    # read-through cache of a remote store)
    # ------------------------------------------------------------------
    @property
    def objects_dir(self) -> Path:
        """Directory holding the content-addressed objects."""
        return self.backend.local.objects_dir

    @property
    def sweeps_dir(self) -> Path:
        """Directory holding the per-sweep journals."""
        return self.backend.local.sweeps_dir

    def object_paths(self, key: str) -> Tuple[Path, Path]:
        """``(npz_path, sidecar_path)`` of a key (whether or not it exists)."""
        return self.backend.object_paths(key)

    def __contains__(self, key: str) -> bool:
        return self.backend.read_sidecar_bytes(key) is not None

    # ------------------------------------------------------------------
    # put / get
    # ------------------------------------------------------------------
    def put_trial_set(
        self,
        key: str,
        trial_set: TrialSet,
        *,
        cell: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Persist a trial set under ``key``; returns the sidecar path.

        ``cell`` is the key payload (see
        :func:`repro.store.keys.trial_cell_payload`); storing it alongside
        the data makes every object self-describing (``repro store info``).
        Re-putting an existing key simply overwrites it with identical
        content — puts are idempotent.  On a remote store the write lands in
        the local read-through cache (the service is read-only).
        """
        payload = trial_set.to_dict()
        results = payload.pop("results")

        vertex_flat, vertex_lengths = _flatten_histories(
            [r["informed_vertex_history"] for r in results]
        )
        agent_flat, agent_lengths = _flatten_histories(
            [r["informed_agent_history"] for r in results]
        )
        arrays = {
            "broadcast_time": np.asarray(
                [-1 if r["broadcast_time"] is None else r["broadcast_time"] for r in results],
                dtype=np.int64,
            ),
            "completed": np.asarray([r["completed"] for r in results], dtype=bool),
            "rounds_executed": np.asarray([r["rounds_executed"] for r in results], dtype=np.int64),
            "messages_sent": np.asarray([r["messages_sent"] for r in results], dtype=np.int64),
            "num_agents": np.asarray([r["num_agents"] for r in results], dtype=np.int64),
            "source": np.asarray([r["source"] for r in results], dtype=np.int64),
            "num_edges": np.asarray([r["num_edges"] for r in results], dtype=np.int64),
            "vertex_history_flat": vertex_flat,
            "vertex_history_lengths": vertex_lengths,
            "agent_history_flat": agent_flat,
            "agent_history_lengths": agent_lengths,
        }
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **arrays)
        npz_bytes = buffer.getvalue()

        rest = [
            {
                "protocol": r["protocol"],
                "graph_name": r["graph_name"],
                "num_vertices": r["num_vertices"],
                "edge_traversals": r["edge_traversals"],
                "metadata": r["metadata"],
            }
            for r in results
        ]
        sidecar = {
            "format": STORE_FORMAT_VERSION,
            "key": key,
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
            "npz_sha256": _sha256(npz_bytes),
            "npz_bytes": len(npz_bytes),
            "cell": cell,
            "trial_set": payload,  # protocol / graph_name / num_vertices / backend
            "results": rest,
        }
        return self.backend.write_object(
            key, npz_bytes, json.dumps(sidecar, sort_keys=True).encode("utf-8")
        )

    def read_sidecar(self, key: str) -> Optional[Dict[str, Any]]:
        """Parsed sidecar of a key, or None if the object is absent."""
        raw = self.backend.read_sidecar_bytes(key)
        if raw is None:
            return None
        try:
            sidecar = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise StoreCorruptionError(
                f"store object {key} has an unparsable sidecar: {exc}"
            ) from exc
        return sidecar

    def get_trial_set(self, key: str) -> Optional[TrialSet]:
        """Load the trial set stored under ``key`` (None if absent).

        The NPZ bytes are checked against the sidecar's SHA-256 before being
        parsed; any mismatch, missing member or trial-count inconsistency
        raises :class:`StoreCorruptionError`.
        """
        sidecar = self.read_sidecar(key)
        if sidecar is None:
            return None
        if sidecar.get("format") != STORE_FORMAT_VERSION:
            raise StoreCorruptionError(
                f"store object {key} has format {sidecar.get('format')!r}; "
                f"this build reads format {STORE_FORMAT_VERSION} "
                "(run 'repro store gc --all' to drop stale objects)"
            )
        if sidecar.get("kind", "trial-set") != "trial-set":
            raise StoreError(
                f"store object {key} holds a {sidecar.get('kind')!r} document, "
                "not a trial set (read it with get_document)"
            )
        npz_bytes = self.backend.read_npz_bytes(key)
        if npz_bytes is None:
            if self.backend.read_sidecar_bytes(key) is None:
                # A concurrent gc deleted the whole object between our
                # sidecar read and the NPZ read: that is a plain cache miss,
                # not corruption.
                return None
            raise StoreCorruptionError(f"store object {key} lost its NPZ payload")
        if _sha256(npz_bytes) != sidecar.get("npz_sha256"):
            raise StoreCorruptionError(
                f"store object {key} failed its integrity check: NPZ bytes do "
                "not match the sidecar checksum"
            )
        try:
            with np.load(io.BytesIO(npz_bytes), allow_pickle=False) as npz:
                arrays = {name: npz[name] for name in npz.files}
            vertex_histories = _unflatten_histories(
                arrays["vertex_history_flat"], arrays["vertex_history_lengths"]
            )
            agent_histories = _unflatten_histories(
                arrays["agent_history_flat"], arrays["agent_history_lengths"]
            )
            rest = sidecar["results"]
            trials = len(rest)
            if any(arrays[name].shape[0] != trials for name in _PER_TRIAL_MEMBERS):
                raise KeyError("per-trial array lengths disagree with sidecar")
            results = []
            for t in range(trials):
                done = bool(arrays["completed"][t])
                results.append(
                    {
                        "protocol": rest[t]["protocol"],
                        "graph_name": rest[t]["graph_name"],
                        "num_vertices": rest[t]["num_vertices"],
                        "num_edges": int(arrays["num_edges"][t]),
                        "source": int(arrays["source"][t]),
                        "broadcast_time": int(arrays["broadcast_time"][t]) if done else None,
                        "rounds_executed": int(arrays["rounds_executed"][t]),
                        "completed": done,
                        "num_agents": int(arrays["num_agents"][t]),
                        "informed_vertex_history": vertex_histories[t],
                        "informed_agent_history": agent_histories[t],
                        "messages_sent": int(arrays["messages_sent"][t]),
                        "edge_traversals": rest[t]["edge_traversals"],
                        "metadata": rest[t]["metadata"],
                    }
                )
            payload = dict(sidecar["trial_set"])
            payload["results"] = results
            loaded = TrialSet.from_dict(payload)
        except StoreCorruptionError:
            raise
        except (KeyError, ValueError, TypeError, OSError) as exc:
            raise StoreCorruptionError(f"store object {key} could not be decoded: {exc}") from exc
        self.backend.mark_read(key)  # feeds the gc --max-bytes LRU ordering
        return loaded

    # ------------------------------------------------------------------
    # document cells (non-trial-set results cached under cell keys)
    # ------------------------------------------------------------------
    def put_document(
        self,
        key: str,
        document: Dict[str, Any],
        *,
        kind: str,
        cell: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Persist an arbitrary JSON document under ``key``.

        Documents reuse the object slot normally holding NPZ bytes (the
        payload is canonical JSON instead), so they inherit the whole
        transport stack unchanged: atomic payload-before-sidecar commits,
        SHA-256 end-to-end verification, remote read-through caching and gc.
        ``kind`` tags what the document is (e.g. ``"coupling"``), letting
        :meth:`get_document` and :meth:`get_trial_set` reject cross-kind
        reads loudly instead of mis-decoding bytes.
        """
        from .keys import canonical_json

        payload_bytes = canonical_json(document).encode("utf-8")
        sidecar = {
            "format": STORE_FORMAT_VERSION,
            "key": key,
            "kind": kind,
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
            "npz_sha256": _sha256(payload_bytes),
            "npz_bytes": len(payload_bytes),
            "cell": cell,
        }
        return self.backend.write_object(
            key, payload_bytes, json.dumps(sidecar, sort_keys=True).encode("utf-8")
        )

    def get_document(self, key: str, *, kind: str) -> Optional[Dict[str, Any]]:
        """Load the ``kind``-tagged document under ``key`` (None if absent).

        Verifies the payload bytes against the sidecar checksum exactly like
        :meth:`get_trial_set`; a kind mismatch or undecodable payload raises
        :class:`StoreError` / :class:`StoreCorruptionError`.
        """
        sidecar = self.read_sidecar(key)
        if sidecar is None:
            return None
        if sidecar.get("format") != STORE_FORMAT_VERSION:
            raise StoreCorruptionError(
                f"store object {key} has format {sidecar.get('format')!r}; "
                f"this build reads format {STORE_FORMAT_VERSION} "
                "(run 'repro store gc --all' to drop stale objects)"
            )
        if sidecar.get("kind", "trial-set") != kind:
            raise StoreError(
                f"store object {key} holds a {sidecar.get('kind', 'trial-set')!r} "
                f"object, not a {kind!r} document"
            )
        payload_bytes = self.backend.read_npz_bytes(key)
        if payload_bytes is None:
            if self.backend.read_sidecar_bytes(key) is None:
                return None  # raced gc: a plain miss, not corruption
            raise StoreCorruptionError(f"store object {key} lost its payload")
        if _sha256(payload_bytes) != sidecar.get("npz_sha256"):
            raise StoreCorruptionError(
                f"store object {key} failed its integrity check: document bytes "
                "do not match the sidecar checksum"
            )
        try:
            document = json.loads(payload_bytes.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise StoreCorruptionError(f"store object {key} could not be decoded: {exc}") from exc
        self.backend.mark_read(key)
        return document

    # ------------------------------------------------------------------
    # query / management
    # ------------------------------------------------------------------
    def keys(self) -> Iterator[str]:
        """All committed object keys (sidecar present), in sorted order."""
        return iter(self.backend.list_keys())

    def _entry_row(self, key: str, sidecar: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        """One ``ls`` row from a parsed sidecar (None → corrupt placeholder)."""
        size = self.backend.object_size(key)
        if sidecar is None:
            return {
                "key": key,
                "protocol": "<corrupt sidecar>",
                "graph": None,
                "n": None,
                "trials": 0,
                "backend": None,
                "max_rounds": None,
                "bytes": size or 0,
                "created_at": None,
            }
        trial_set = sidecar.get("trial_set", {})
        cell = sidecar.get("cell") or {}
        if size is None:
            size = sidecar.get("npz_bytes")
        if sidecar.get("kind", "trial-set") != "trial-set":
            params = cell.get("params") or {}
            return {
                "key": key,
                "protocol": f"<{sidecar['kind']} document>",
                "graph": None,
                "n": params.get("size") or (params.get("sizes") or [None])[-1],
                "trials": 0,
                "backend": None,
                "max_rounds": None,
                "bytes": size or 0,
                "created_at": sidecar.get("created_at"),
            }
        return {
            "key": key,
            "protocol": trial_set.get("protocol"),
            "graph": trial_set.get("graph_name"),
            "n": trial_set.get("num_vertices"),
            "trials": len(sidecar.get("results", [])),
            "backend": trial_set.get("backend"),
            "max_rounds": cell.get("max_rounds"),
            "bytes": size or 0,
            "created_at": sidecar.get("created_at"),
        }

    def entries(self) -> List[Dict[str, Any]]:
        """One summary row per object — the ``repro store ls`` view.

        An object with an unreadable sidecar is reported as a ``"corrupt"``
        row rather than raised: the inspection surface must stay usable
        precisely when the store has a damaged object to show.  Against a
        remote store the server-side rows come from one ``/ls`` call and are
        merged with locally cached/computed objects the server lacks.
        """
        remote_rows: Dict[str, Dict[str, Any]] = {}
        if hasattr(self.backend, "remote_entries"):
            rows_from_server = self.backend.remote_entries()
            remote_rows = {row["key"]: row for row in rows_from_server if "key" in row}
            # One /ls call covers the server side; merge the cache's keys
            # locally rather than paying backend.list_keys()'s second /ls.
            keys = sorted(set(remote_rows).union(self.backend.local.list_keys()))
        else:
            keys = self.backend.list_keys()
        rows = []
        for key in keys:
            raw = self.backend.local.read_sidecar_bytes(key)
            if raw is None:
                if key in remote_rows:
                    rows.append(remote_rows[key])
                    continue
                try:  # remote-only key the /ls races missed
                    sidecar = self.read_sidecar(key)
                except StoreCorruptionError:
                    sidecar = None
                if sidecar is None:
                    continue  # pragma: no cover - raced deletion
            else:
                try:
                    sidecar = json.loads(raw.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    sidecar = None  # corrupt: reported, not raised
            rows.append(self._entry_row(key, sidecar))
        return rows

    def referenced_keys(self) -> set:
        """Keys referenced by any sweep journal under ``sweeps/``."""
        referenced = set()
        for sweep in self.backend.local.list_sweeps():
            text = self.backend.local.read_sweep_text(sweep)
            if text is None:  # pragma: no cover - raced deletion
                continue
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue  # a torn tail line from an interrupted run
                key = event.get("key")
                if isinstance(key, str):
                    referenced.add(key)
        return referenced

    def gc(
        self,
        *,
        keep_referenced: bool = True,
        older_than_days: float = 0.0,
        dry_run: bool = False,
        max_bytes: Optional[int] = None,
    ) -> List[str]:
        """Delete objects from the local surface; returns the keys removed.

        Two modes share the referenced-keys pin (an object referenced by any
        sweep journal survives unless ``keep_referenced=False``):

        * **unreferenced sweep** (``max_bytes=None``, the default): every
          unreferenced object older than ``older_than_days`` goes — with
          ``keep_referenced=False`` and the default cutoff that empties the
          store.
        * **LRU budget** (``max_bytes`` set): objects are evicted least
          recently *read* first (reads bump the NPZ payload's mtime; the
          sidecar keeps its commit time, so the default mode's age cutoff
          is unaffected) until the objects' total on-disk size fits the
          budget.  ``older_than_days`` is honoured as an age floor: objects
          committed more recently than that are never evicted for the
          budget.  Journal-referenced roots stay pinned, so the store can
          exceed the budget when the pinned (or too-young) set alone does.

        On a remote store this manages the read-through cache; the served
        root is its operator's to gc.  Temp files abandoned by crashed
        writers (and NPZ payloads whose sidecar never landed) are swept in
        both modes, but only once they are over an hour old: a young temp
        file may belong to a live writer about to ``os.replace`` it, and
        unlinking it mid-flight would crash that writer's sweep.
        """
        local = self.backend.local
        referenced = self.referenced_keys() if keep_referenced else set()
        removed: List[str] = []
        if max_bytes is None:
            cutoff = time.time() - older_than_days * 86400.0
            for key in local.list_keys():
                if key in referenced:
                    continue
                _npz_path, sidecar_path = local.object_paths(key)
                try:
                    mtime = sidecar_path.stat().st_mtime
                except FileNotFoundError:  # pragma: no cover - raced deletion
                    continue
                if mtime > cutoff:
                    continue
                removed.append(key)
                if not dry_run:
                    local.delete_object(key)
        else:
            cutoff = time.time() - older_than_days * 86400.0
            candidates = []
            total = 0
            for key in local.list_keys():
                npz_path, sidecar_path = local.object_paths(key)
                try:
                    size = sidecar_path.stat().st_size
                    commit_mtime = sidecar_path.stat().st_mtime
                    read_mtime = commit_mtime
                    if npz_path.exists():
                        size += npz_path.stat().st_size
                        # Reads touch the payload, so its mtime is the
                        # last-read time; the sidecar's is the commit time.
                        read_mtime = max(read_mtime, npz_path.stat().st_mtime)
                except FileNotFoundError:  # pragma: no cover - raced deletion
                    continue
                candidates.append((read_mtime, key, size, commit_mtime))
                total += size
            for _read_mtime, key, size, commit_mtime in sorted(candidates):
                if total <= int(max_bytes):
                    break
                if key in referenced or commit_mtime > cutoff:
                    continue
                removed.append(key)
                total -= size
                if not dry_run:
                    local.delete_object(key)
        if not dry_run and local.objects_dir.is_dir():
            stale_before = time.time() - 3600.0
            # Crashed-writer debris: abandoned temp files, and NPZ payloads
            # whose sidecar (the commit marker) never landed.  Both are
            # swept only once they are over an hour old — a younger file may
            # belong to a live writer between its two writes, and unlinking
            # it mid-flight would crash that writer's sweep.
            stale_candidates = list(local.objects_dir.glob("??/.*.tmp")) + [
                npz
                for npz in local.objects_dir.glob("??/*.npz")
                if not npz.with_suffix(".json").exists()
            ]
            for debris in stale_candidates:
                try:
                    if debris.stat().st_mtime < stale_before:
                        debris.unlink(missing_ok=True)
                except FileNotFoundError:  # pragma: no cover - raced writer
                    pass
        return removed

    def export(self, destination: Union[str, Path], keys: Optional[Sequence[str]] = None) -> int:
        """Copy objects (and journals) into another store root; returns a count.

        With ``keys=None`` the whole store is exported.  The destination can
        then be used as a ``--store`` root directly — e.g. to seed a CI cache,
        a store service's root, or share results with a colleague.  Exporting
        *from* a remote store works too (objects are fetched through the
        read-through cache); the destination must be local.
        """
        destination_store = ResultStore(destination)
        if hasattr(destination_store.backend, "remote_entries"):
            raise StoreError("cannot export into a remote store (the service is read-only)")
        selected = list(keys) if keys is not None else list(self.keys())
        copied = 0
        for key in selected:
            npz_bytes = self.backend.read_npz_bytes(key)
            sidecar_bytes = self.backend.read_sidecar_bytes(key)
            if npz_bytes is None or sidecar_bytes is None:
                raise StoreError(f"cannot export missing key {key}")
            # Atomic data-before-marker, as in put_trial_set: the destination
            # may be a live shared store with concurrent readers, so neither
            # file may ever be observable half-written.
            destination_store.backend.write_object(key, npz_bytes, sidecar_bytes)
            copied += 1
        if keys is None:
            # The backend view (not just the local surface): a remote store
            # exports the *server's* journals too, so the destination keeps
            # the gc pins of the sweeps it now holds.
            for sweep in self.backend.list_sweeps():
                text = self.backend.read_sweep_text(sweep)
                if text is not None:
                    # Replace, don't append: re-exporting into the same
                    # destination must be idempotent, not double every
                    # journal.
                    destination_store.backend.local.write_sweep_text(sweep, text)
        return copied


def resolve_store(store: Any) -> Optional[ResultStore]:
    """Normalize a ``store=`` argument into a :class:`ResultStore` or None.

    ``None`` consults the :data:`REPRO_STORE <STORE_ENV_VAR>` environment
    variable — a non-empty value enables the store there, whether it is a
    directory path or an ``http(s)://`` service URL (how CI runs the whole
    suite store-backed, and how a laptop points at a warm central store);
    ``False`` disables the store unconditionally; a string/path/URL opens a
    store at that root; an existing :class:`ResultStore` passes through.
    """
    if store is None:
        env = os.environ.get(STORE_ENV_VAR, "").strip()
        return ResultStore(env) if env else None
    if store is False:
        return None
    if isinstance(store, ResultStore):
        return store
    return ResultStore(store)
