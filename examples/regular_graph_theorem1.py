"""Theorem 1 in action: push and visit-exchange track each other on regular graphs.

The paper's main technical result says that on any d-regular graph with
d = Omega(log n), push and visit-exchange have the same asymptotic broadcast
time.  This example sweeps random regular graphs over a range of sizes and
prints the measured ratio T_push / T_visitx, which should stay within a small
constant band, together with the same ratio on the (non-regular!) double star,
where no such relationship holds.

Run with::

    python examples/regular_graph_theorem1.py
"""

from __future__ import annotations

import math

import numpy as np

from repro import simulate
from repro.analysis import format_table
from repro.graphs import double_star, random_regular_graph


def mean_time(protocol: str, graph, source: int, trials: int = 5) -> float:
    """Mean broadcast time of a protocol over a few trials."""
    times = []
    for trial in range(trials):
        result = simulate(protocol, graph, source=source, seed=trial)
        if not result.completed:
            raise RuntimeError(f"{protocol} did not complete on {graph.name}")
        times.append(result.broadcast_time)
    return sum(times) / len(times)


def main() -> None:
    """Compare the push / visit-exchange ratio on regular vs non-regular graphs."""
    rows = []
    rng = np.random.default_rng(0)
    for n in (128, 256, 512, 1024):
        degree = max(4, int(2 * math.log2(n)))
        if (n * degree) % 2:
            degree += 1
        regular = random_regular_graph(n, degree, rng)
        t_push = mean_time("push", regular, source=0)
        t_visitx = mean_time("visit-exchange", regular, source=0)
        rows.append([f"random {degree}-regular", n, t_push, t_visitx, t_push / t_visitx])

    for n in (128, 256, 512, 1024):
        graph = double_star(n)
        t_push = mean_time("push", graph, source=2)
        t_visitx = mean_time("visit-exchange", graph, source=2)
        rows.append(["double star", n, t_push, t_visitx, t_push / t_visitx])

    print(
        format_table(
            ["graph", "n", "mean T_push", "mean T_visitx", "ratio"],
            rows,
            title="Theorem 1: the ratio is flat on regular graphs, divergent otherwise",
        )
    )


if __name__ == "__main__":
    main()
