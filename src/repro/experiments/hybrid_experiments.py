"""Hybrid-protocol experiments.

The paper's introduction suggests that agent-based dissemination "separately
or in combination with push-pull" can improve the broadcast time.  These
experiments run the :class:`~repro.core.protocols.hybrid.HybridPushPullVisitProtocol`
on the two families where exactly one of its constituents is slow:

* the double star, where push-pull alone is ``Omega(n)`` but the agents cross
  the bridge in ``O(1)`` expected rounds, and
* the heavy binary tree, where visit-exchange alone is ``Omega(n)`` but
  push-pull finishes in ``O(log n)`` rounds.

In both cases the hybrid should track the faster constituent up to constants.
"""

from __future__ import annotations


from ..graphs.builders import with_case_spec
from ..graphs.double_star import double_star
from ..graphs.heavy_binary_tree import heavy_binary_tree, tree_leaves
from .config import ExperimentConfig, GraphCase, ProtocolSpec
from .registry import register

__all__ = ["hybrid_double_star_experiment", "hybrid_heavy_tree_experiment"]


@with_case_spec("double_star", lambda size, seed: {"num_vertices": size})
def _build_double_star_case(num_vertices: int, seed: int) -> GraphCase:
    return GraphCase(graph=double_star(num_vertices), source=2, size_parameter=num_vertices)


def hybrid_double_star_experiment() -> ExperimentConfig:
    """Hybrid vs its constituents on the double star (agents rescue push-pull)."""
    return ExperimentConfig(
        experiment_id="hybrid-double-star",
        title="Hybrid push-pull + agents on the double star",
        paper_reference="Section 1 (combination with push-pull); Lemma 3",
        description=(
            "On the double star push-pull alone needs Omega(n) rounds while "
            "visit-exchange needs O(log n); the hybrid inherits the agents' "
            "logarithmic broadcast time."
        ),
        graph_builder=_build_double_star_case,
        sizes=(128, 256, 512, 1024),
        protocols=(
            ProtocolSpec("push-pull"),
            ProtocolSpec("visit-exchange"),
            ProtocolSpec("hybrid-ppull-visitx"),
        ),
        trials=5,
        max_rounds=lambda n: int(60 * n),
        claim_ids=("lemma3a", "lemma3b"),
    )


@with_case_spec("heavy_binary_tree", lambda size, seed: {"num_vertices": size})
def _build_heavy_tree_case(num_vertices: int, seed: int) -> GraphCase:
    graph = heavy_binary_tree(num_vertices)
    return GraphCase(graph=graph, source=tree_leaves(graph)[0], size_parameter=num_vertices)


def hybrid_heavy_tree_experiment() -> ExperimentConfig:
    """Hybrid vs its constituents on the heavy tree (push-pull rescues agents)."""
    return ExperimentConfig(
        experiment_id="hybrid-heavy-tree",
        title="Hybrid push-pull + agents on the heavy binary tree",
        paper_reference="Section 1 (combination with push-pull); Lemma 4",
        description=(
            "On the heavy binary tree visit-exchange alone needs Omega(n) "
            "rounds while push-pull needs O(log n); the hybrid inherits "
            "push-pull's logarithmic broadcast time."
        ),
        graph_builder=_build_heavy_tree_case,
        sizes=(127, 255, 511, 1023),
        protocols=(
            ProtocolSpec("push-pull"),
            ProtocolSpec("visit-exchange"),
            ProtocolSpec("hybrid-ppull-visitx"),
        ),
        trials=5,
        max_rounds=lambda n: int(80 * n),
        claim_ids=("lemma4a", "lemma4b"),
    )


register("hybrid-double-star", hybrid_double_star_experiment)
register("hybrid-heavy-tree", hybrid_heavy_tree_experiment)
