"""Benchmark / reproduction of Figure 1(e): cycle of stars of cliques (Lemma 9).

Paper claims reproduced here:
* ``E[T_visitx] = O(n^{2/3})``,
* ``E[T_meetx] = Omega(n^{2/3} log n)`` — the only family in the paper where
  visit-exchange strictly beats meet-exchange, and only by a log factor.

The shape check asserts (a) both protocols are polynomially slower than
logarithmic, (b) meet-exchange is slower than visit-exchange at every size,
and (c) the meetx/visitx gap does not shrink as the graph grows.
"""

from __future__ import annotations

import math

import pytest

from _helpers import mean_broadcast_time
from repro.analysis.scaling import power_law_exponent, ratio_trend
from repro.graphs import cycle_of_stars_of_cliques


class TestTimings:
    @pytest.fixture(scope="class")
    def medium_instance(self):
        graph, layout = cycle_of_stars_of_cliques(7)
        return graph, layout.clique_members[0][0][0]

    def test_visit_exchange_single_run(self, benchmark, medium_instance):
        graph, source = medium_instance
        benchmark.pedantic(
            lambda: mean_broadcast_time("visit-exchange", graph, source=source, trials=1),
            rounds=2,
            iterations=1,
        )

    def test_meet_exchange_single_run(self, benchmark, medium_instance):
        graph, source = medium_instance
        benchmark.pedantic(
            lambda: mean_broadcast_time("meet-exchange", graph, source=source, trials=1),
            rounds=2,
            iterations=1,
        )


class TestShape:
    def test_lemma9_visitx_beats_meetx(self, benchmark):
        rows = {}

        def sweep():
            for k in (5, 7, 9):
                graph, layout = cycle_of_stars_of_cliques(k)
                source = layout.clique_members[0][0][0]
                rows[k] = {
                    "n": graph.num_vertices,
                    "visitx": mean_broadcast_time(
                        "visit-exchange", graph, source=source, trials=10
                    ),
                    "meetx": mean_broadcast_time(
                        "meet-exchange", graph, source=source, trials=10
                    ),
                }
            return rows

        benchmark.pedantic(sweep, rounds=1, iterations=1)

        sizes = [rows[k]["n"] for k in sorted(rows)]
        visitx = [rows[k]["visitx"] for k in sorted(rows)]
        meetx = [rows[k]["meetx"] for k in sorted(rows)]

        # (a) Polynomial growth for both (exponent well above the ~0 of log).
        assert power_law_exponent(sizes, visitx) > 0.25
        assert power_law_exponent(sizes, meetx) > 0.3
        # (b) meet-exchange is the slower protocol at the larger sizes (at the
        # smallest size the two are within noise of each other, as expected
        # for a logarithmic-factor separation).
        largest = sorted(rows)[-2:]
        for k in largest:
            assert rows[k]["meetx"] > rows[k]["visitx"]
        # (c) the gap does not shrink with n (it should grow ~log n).
        trend = ratio_trend(sizes, meetx, visitx)
        assert trend["last_ratio"] >= 0.8 * trend["first_ratio"]
        assert trend["last_ratio"] > 1.0

    def test_both_slower_than_logarithmic(self, benchmark):
        graph, layout = cycle_of_stars_of_cliques(9)
        source = layout.clique_members[0][0][0]
        times = {}

        def measure():
            times["visitx"] = mean_broadcast_time(
                "visit-exchange", graph, source=source, trials=2
            )
            return times

        benchmark.pedantic(measure, rounds=1, iterations=1)
        assert times["visitx"] > 3 * math.log2(graph.num_vertices)
