"""Tests of the public package surface (imports, registry consistency, simulate)."""

from __future__ import annotations

import pytest

import repro
from repro import PROTOCOL_REGISTRY, make_protocol, simulate
from repro.core.engine import RoundProtocol
from repro.graphs import star


class TestPackageSurface:
    def test_version_is_exposed(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing attribute {name}"

    def test_subpackage_all_exports_resolve(self):
        import repro.analysis as analysis
        import repro.core as core
        import repro.graphs as graphs
        import repro.theory as theory

        for module in (analysis, core, graphs, theory):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.__all__ lists {name}"

    def test_every_public_module_has_a_docstring(self):
        import importlib
        import pkgutil

        for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(module_info.name)
            assert module.__doc__, f"{module_info.name} is missing a module docstring"


class TestProtocolRegistry:
    def test_registry_names_match_class_names(self):
        for name, cls in PROTOCOL_REGISTRY.items():
            assert cls.name == name
            assert issubclass(cls, RoundProtocol)

    def test_expected_protocols_registered(self):
        assert set(PROTOCOL_REGISTRY) == {
            "push",
            "push-pull",
            "pull",
            "visit-exchange",
            "meet-exchange",
            "hybrid-ppull-visitx",
        }

    def test_make_protocol_unknown_name(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            make_protocol("carrier-pigeon")

    def test_make_protocol_forwards_kwargs(self):
        protocol = make_protocol("visit-exchange", agent_density=3.0)
        assert protocol.agent_density == 3.0

    def test_make_protocol_rejects_bad_kwargs(self):
        with pytest.raises(TypeError):
            make_protocol("push", agent_density=3.0)


class TestSimulateEntryPoint:
    def test_returns_run_result(self):
        result = simulate("push-pull", star(10), source=0, seed=1)
        assert result.protocol == "push-pull"
        assert result.completed

    def test_protocol_kwargs_forwarded(self):
        result = simulate("visit-exchange", star(10), source=0, seed=1, agent_density=2.0)
        assert result.num_agents == 22

    def test_max_rounds_respected(self):
        result = simulate("push", star(200), source=0, seed=1, max_rounds=2)
        assert not result.completed
        assert result.rounds_executed == 2

    def test_invalid_source_raises(self):
        with pytest.raises(Exception):
            simulate("push", star(5), source=50, seed=1)

    def test_default_source_is_vertex_zero(self):
        result = simulate("push-pull", star(10), seed=1)
        assert result.source == 0
