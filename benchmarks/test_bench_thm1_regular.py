"""Benchmark / reproduction of Theorem 1 (Theorems 10 and 19).

On any d-regular graph with ``d = Omega(log n)``, push and visit-exchange have
the same asymptotic broadcast time.  The harness checks the measured
``T_push / T_visitx`` ratio on three regular families:

* random regular graphs (logarithmic broadcast time),
* the hypercube (structured, degree exactly ``log2 n``), and
* a cycle of cliques (polynomial broadcast time),

and asserts the ratio stays inside a constant band and does not drift with n.
As a contrast, the same ratio on the (non-regular) double star diverges.
"""

from __future__ import annotations

import math

import numpy as np

from _helpers import mean_broadcast_time
from repro.analysis.scaling import ratio_trend
from repro.graphs import clique_cycle, double_star, hypercube, random_regular_graph


def regular_instance(n, seed):
    degree = max(4, int(2 * math.log2(n)))
    if (n * degree) % 2:
        degree += 1
    return random_regular_graph(n, degree, np.random.default_rng(seed))


class TestTimings:
    def test_push_on_random_regular(self, benchmark):
        graph = regular_instance(1024, 0)
        benchmark.pedantic(
            lambda: mean_broadcast_time("push", graph, source=0, trials=1),
            rounds=3,
            iterations=1,
        )

    def test_visit_exchange_on_random_regular(self, benchmark):
        graph = regular_instance(1024, 0)
        benchmark.pedantic(
            lambda: mean_broadcast_time("visit-exchange", graph, source=0, trials=1),
            rounds=3,
            iterations=1,
        )


class TestShape:
    def test_ratio_bounded_on_random_regular_graphs(self, benchmark):
        measurements = {}

        def sweep():
            for index, n in enumerate((128, 256, 512, 1024)):
                graph = regular_instance(n, index)
                measurements[n] = (
                    mean_broadcast_time("push", graph, source=0, trials=3),
                    mean_broadcast_time("visit-exchange", graph, source=0, trials=3),
                )
            return measurements

        benchmark.pedantic(sweep, rounds=1, iterations=1)
        sizes = sorted(measurements)
        push = [measurements[n][0] for n in sizes]
        visitx = [measurements[n][1] for n in sizes]
        trend = ratio_trend(sizes, push, visitx)
        assert trend["max_ratio"] < 4.0
        assert trend["min_ratio"] > 0.25
        assert abs(trend["log_log_slope"]) < 0.35  # no systematic drift

    def test_ratio_bounded_on_hypercube(self, benchmark):
        measurements = {}

        def sweep():
            for dimension in (7, 8, 9, 10):
                graph = hypercube(dimension)
                measurements[dimension] = (
                    mean_broadcast_time("push", graph, source=0, trials=3),
                    mean_broadcast_time("visit-exchange", graph, source=0, trials=3),
                )
            return measurements

        benchmark.pedantic(sweep, rounds=1, iterations=1)
        ratios = [push / visitx for push, visitx in measurements.values()]
        assert max(ratios) < 4.0 and min(ratios) > 0.25

    def test_ratio_bounded_in_the_slow_polynomial_regime(self, benchmark):
        measurements = {}

        def sweep():
            for cliques in (8, 16, 32):
                graph = clique_cycle(cliques, 12)
                measurements[cliques] = (
                    mean_broadcast_time("push", graph, source=0, trials=2),
                    mean_broadcast_time("visit-exchange", graph, source=0, trials=2),
                )
            return measurements

        benchmark.pedantic(sweep, rounds=1, iterations=1)
        ratios = [push / visitx for push, visitx in measurements.values()]
        assert max(ratios) < 4.0 and min(ratios) > 0.25
        # And the broadcast time itself grows linearly with the cycle length,
        # confirming this family exercises the polynomial regime.
        sizes = sorted(measurements)
        push_times = [measurements[c][0] for c in sizes]
        assert push_times[-1] > 2.5 * push_times[0]

    def test_no_such_bound_on_the_double_star(self, benchmark):
        """Contrast: on a non-regular graph the push/visitx ratio diverges."""
        measurements = {}

        def sweep():
            for n in (128, 512):
                graph = double_star(n)
                measurements[n] = (
                    mean_broadcast_time("push", graph, source=2, trials=3),
                    mean_broadcast_time("visit-exchange", graph, source=2, trials=3),
                )
            return measurements

        benchmark.pedantic(sweep, rounds=1, iterations=1)
        small_ratio = measurements[128][0] / measurements[128][1]
        large_ratio = measurements[512][0] / measurements[512][1]
        assert large_ratio > 1.5 * small_ratio
