"""Shared machinery for the vectorized protocol kernels.

A *kernel* is the single source of truth for one protocol's round transition:
state lives in 2-D numpy arrays shaped ``(trials, ...)`` and one :meth:`step`
advances every still-running trial by one synchronous round.  The sequential
:class:`~repro.core.engine.RoundProtocol` classes are thin adapters that drive
a kernel with ``trials=1``; the batched driver (:mod:`repro.core.batch`)
drives the same kernels with arbitrarily many trials at once.  Either way the
round logic exists exactly once, here in :mod:`repro.core.kernels`.

Design notes
------------
* **Per-trial random streams.**  Trial ``t`` draws all of its randomness from
  its own generator (``gens[t]``), and the shape of each round's draw depends
  only on the round number — never on protocol state.  Consequently a trial's
  outcome is a pure function of its seed: it does not change when the
  surrounding batch grows, shrinks or is reordered.
* **Completion masking by row compaction.**  Per-trial arrays keep the still
  running trials in their first ``k`` rows; the driver retires a finished
  trial by swapping its row into the tail (:meth:`BatchKernel.swap_rows`), so
  finished trials stop costing work and the hot loop operates on contiguous
  zero-copy views.
* **Block draws.**  Raw 64-bit words are drawn :attr:`BatchKernel._DRAW_BLOCK`
  rounds at a time per trial and consumed as fixed-point integers, amortizing
  the per-call generator overhead (see :meth:`BatchKernel._raw_stream`).
* **Observers.**  A kernel can carry one
  :class:`~repro.core.observers.ObserverGroup` per trial
  (:attr:`BatchKernel.trial_observers`); kernels report informing edges
  through the batch hook ``on_edges_used`` on a slow path that only runs when
  a truthy group is attached.
* **Dynamic topology.**  A kernel can carry a
  :class:`~repro.graphs.dynamic.TopologySchedule`
  (:attr:`BatchKernel.dynamics`, set by the driver before
  :meth:`initialize`): each round the schedule's activity masks are expanded
  once into a directed-slot mask shared by every trial, and the samplers
  gather it at their sampled offsets — the CSR adjacency is never rebuilt.
  Masking consumes no randomness, so attaching a schedule leaves every
  trial's draw stream untouched; a round whose masks are ``None``
  (all-active) takes exactly the undynamic code path.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ...graphs.dynamic import DynamicsRuntime, _resolve_dynamics
from ...graphs.graph import Graph

__all__ = [
    "BatchKernel",
    "NeighborSampler",
    "batch_generator",
    "sparse_threshold",
]

#: Default vertex count above which ``frontier="auto"`` switches the vertex
#: kernels to the sparse tier.  Below it, dense whole-row numpy algebra wins
#: on constant factors; above it, frontier-sized gathers win on asymptotics.
SPARSE_MIN_VERTICES = 32768


def sparse_threshold() -> int:
    """Vertex count at which ``frontier="auto"`` engages the sparse tier.

    Overridable via the ``REPRO_SPARSE_MIN_N`` environment variable (see
    :mod:`repro.experiments.config` for the knob catalogue); read per call so
    tests can flip it without reimporting.
    """
    raw = os.environ.get("REPRO_SPARSE_MIN_N", "")
    try:
        return int(raw) if raw else SPARSE_MIN_VERTICES
    except ValueError:
        return SPARSE_MIN_VERTICES


def batch_generator(seed) -> np.random.Generator:
    """Per-trial generator for the batched kernels.

    Uses the SFC64 bit generator: its bulk uniform generation is measurably
    faster than PCG64's and the kernels are draw-bandwidth-bound.  A trial's
    result remains a pure function of its seed; the stream family simply
    differs from the sequential engine's ``default_rng``, whose results the
    batched backend only ever matches statistically anyway.  Existing
    generators are passed through unchanged, which is how the single-trial
    protocol adapters reuse the engine-provided stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if not isinstance(seed, np.random.SeedSequence):
        seed = np.random.SeedSequence(seed)
    return np.random.Generator(np.random.SFC64(seed))


class BatchKernel:
    """State and one-round transition for a batch of trials of one protocol.

    Kernel state is *row compacted*: per-trial arrays have one row per trial,
    and the first ``k`` rows are the trials still running.  ``trial_ids[row]``
    maps a row back to the original trial index; the driver retires a finished
    trial by swapping its row into the tail (:meth:`swap_rows`).
    """

    name = "abstract"

    #: One ObserverGroup per trial (indexed by original trial id), or None.
    #: Set by the driver *before* :meth:`initialize`.
    trial_observers: Optional[Sequence] = None

    #: Optional dynamic-topology spec (anything
    #: :func:`repro.graphs.dynamic.resolve_dynamics` accepts).  Set by the
    #: driver *before* :meth:`initialize`; the schedule is shared by every
    #: trial of the batch.
    dynamics = None

    #: Requested frontier mode: ``"auto"`` (sparse iff the graph clears
    #: :func:`sparse_threshold` and nothing forces dense), ``"dense"``, or
    #: ``"sparse"``.  Set by the driver *before* :meth:`initialize`.  Sparse
    #: and dense are bit-identical — same draw streams, same results — so the
    #: mode never enters store keys; kernels record what actually engaged in
    #: :attr:`frontier_resolved`.
    frontier_mode = "auto"

    #: ``"sparse"`` or ``"dense"``: what :meth:`initialize` actually engaged.
    frontier_resolved = "dense"

    # ------------------------------------------------------------------
    # interface implemented by the protocol kernels
    # ------------------------------------------------------------------
    def initialize(self, graph: Graph, source: int, gens: Sequence[np.random.Generator]) -> None:
        raise NotImplementedError

    def step(self, k: int) -> None:
        """Advance the first ``k`` rows by one synchronous round."""
        raise NotImplementedError

    def complete_rows(self, k: int) -> np.ndarray:
        """(k,) bool mask over the first ``k`` rows: which have finished."""
        raise NotImplementedError

    def informed_vertex_counts(self, k: int) -> np.ndarray:
        """(k,) informed-vertex counts of the first ``k`` rows (may be a view)."""
        raise NotImplementedError

    def informed_agent_counts(self, k: int) -> np.ndarray:
        """(k,) informed-agent counts of the first ``k`` rows (0 for vertex protocols)."""
        return np.zeros(k, dtype=np.int64)

    def num_agents(self) -> int:
        return 0

    def messages_by_trial(self) -> np.ndarray:
        """(T,) messages sent, indexed by original trial."""
        return np.zeros(self.num_trials, dtype=np.int64)

    def trial_metadata(self, trial: int) -> Dict[str, Any]:
        return {}

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _setup_common(self, graph: Graph, gens) -> None:
        self.graph = graph
        self.num_trials = len(gens)
        self.trial_ids = np.arange(self.num_trials, dtype=np.int64)
        # Inverse permutation of trial_ids: _trial_to_row[trial] is the row
        # currently holding that trial.  Maintained by swap_rows so _row_of is
        # O(1) instead of a flatnonzero scan over all trials.
        self._trial_to_row = np.arange(self.num_trials, dtype=np.int64)
        self._gens = list(gens)
        self._row_arrays: List[np.ndarray] = [self.trial_ids]
        #: Ragged per-trial state (Python lists of per-row arrays — the sparse
        #: tier's frontiers); swapped alongside the row arrays.
        self._row_lists: List[list] = []
        self._row_base = (
            np.arange(self.num_trials, dtype=np.int64) * graph.num_vertices
        )[:, None]
        self._round_count = 0
        self._draw_phase = 0
        self._any_observers = bool(self.trial_observers) and any(
            bool(group) for group in self.trial_observers
        )
        schedule = _resolve_dynamics(self.dynamics)
        self._dyn = DynamicsRuntime(schedule, graph) if schedule is not None else None
        #: Per-round masks shared by all trials (None = everything active).
        self._slot_active: Optional[np.ndarray] = None
        self._vertex_active: Optional[np.ndarray] = None

    def _observer_for_row(self, row: int):
        """ObserverGroup of the trial currently held by ``row`` (may be falsy)."""
        return self.trial_observers[int(self.trial_ids[row])]

    def _resolve_frontier(self, *, supported: bool = True) -> str:
        """Decide (and record) whether the sparse tier engages for this run.

        Call after :meth:`_setup_common` (the decision reads the resolved
        dynamics and observers).  Dynamics schedules and observers force the
        dense fallback even when sparse is requested: activity masks are
        materialized per *slot* and the edge-reporting slow path scans dense
        rows, so both are defined on — and only exercised by — the dense
        representation.  ``REPRO_FRONTIER`` overrides an ``"auto"`` request
        (an explicit ``"dense"``/``"sparse"`` from the driver wins over the
        environment).
        """
        mode = self.frontier_mode
        if mode not in ("auto", "dense", "sparse"):
            raise ValueError(f"unknown frontier mode {mode!r}")
        if mode == "auto":
            env = os.environ.get("REPRO_FRONTIER", "")
            if env in ("dense", "sparse"):
                mode = env
        blocked = not supported or self._dyn is not None or self._any_observers
        if blocked:
            self.frontier_resolved = "dense"
        elif mode == "sparse":
            self.frontier_resolved = "sparse"
        elif mode == "auto" and self.graph.num_vertices >= sparse_threshold():
            self.frontier_resolved = "sparse"
        else:
            self.frontier_resolved = "dense"
        return self.frontier_resolved

    #: Rounds of uniforms drawn per generator call (see :meth:`_raw_stream`).
    _DRAW_BLOCK = 4

    def _begin_round(self) -> None:
        """Advance the block draw phase and fetch the round's activity masks;
        call exactly once per :meth:`step`."""
        self._draw_phase = self._round_count % self._DRAW_BLOCK
        self._round_count += 1
        if self._dyn is not None:
            self._slot_active, self._vertex_active = self._dyn.round_masks(
                self._round_count
            )

    def _register_rows(self, *arrays: np.ndarray) -> None:
        """Arrays with one row (or element) per trial, kept compact by swaps."""
        self._row_arrays.extend(arrays)

    def swap_rows(self, i: int, j: int) -> None:
        if i == j:
            return
        for array in self._row_arrays:
            if array.ndim > 1:
                tmp = array[i].copy()
                array[i] = array[j]
                array[j] = tmp
            else:
                array[i], array[j] = array[j], array[i]
        for row_list in self._row_lists:
            row_list[i], row_list[j] = row_list[j], row_list[i]
        self._gens[i], self._gens[j] = self._gens[j], self._gens[i]
        self._trial_to_row[self.trial_ids[i]] = i
        self._trial_to_row[self.trial_ids[j]] = j

    def _materialized_row_base(self, width: int) -> np.ndarray:
        """(T, width) array of flat-index row offsets, shifted past the slot-0
        write sink; materialized because broadcast adds are measurably slower
        than aligned elementwise adds on the hot path."""
        return np.ascontiguousarray(
            np.broadcast_to(self._row_base + 1, (self.num_trials, width))
        )

    def _row_of(self, trial: int) -> int:
        """Row currently holding ``trial`` (rows are a permutation of trials)."""
        return int(self._trial_to_row[trial])

    def _register_row_list(self, row_list: list) -> None:
        """A Python list with one (ragged) entry per trial, kept compact by swaps."""
        self._row_lists.append(row_list)

    def _raw_stream(self, width: int, bits: int) -> Dict[str, Any]:
        """Allocate and register a block-drawn raw-bit stream.

        Each generator call fills ``_DRAW_BLOCK`` rounds of raw 64-bit words
        for one trial (amortizing per-call overhead, a sizeable share of the
        draw cost at typical batch sizes); rounds then consume the words as
        ``width`` fixed-point integers of ``bits`` bits.  The word buffer is
        swap-registered so a trial's pending rounds follow it through row
        compaction; a trial retiring mid-block simply discards its pre-drawn
        remainder, keeping every trial's stream a function of its own round
        count alone.
        """
        values_per_word = 64 // bits
        words_per_round = -(-width // values_per_word)
        words = np.empty(
            (self.num_trials, self._DRAW_BLOCK * words_per_round), dtype=np.uint64
        )
        self._register_rows(words)
        return {
            "words": words,
            "values": words.view(np.uint16 if bits == 16 else np.uint32),
            "stride": words_per_round * values_per_word,
            "width": width,
        }

    def _raw_values(self, k: int, stream: Dict[str, Any]) -> np.ndarray:
        """One round of per-trial fixed-point uniforms from a raw stream.

        A value ``u`` of ``bits`` bits maps to the offset ``(u * d) >> bits``,
        which is an *exact* truncation into ``[0, d)`` (no clamp needed) and
        deviates from per-neighbor uniformity by at most ``d * 2**-bits`` —
        streams are sized so that stays at least three orders of magnitude
        below the statistical resolution of any realistic trial count.
        """
        if self._draw_phase == 0:
            words = stream["words"]
            num_words = words.shape[1]
            for row in range(k):
                words[row] = self._gens[row].bit_generator.random_raw(num_words)
        start = self._draw_phase * stream["stride"]
        return stream["values"][:k, start : start + stream["width"]]

    def _raw_round_start(self, k: int, stream: Dict[str, Any]) -> int:
        """Refill a raw stream's block if due and return this round's offset.

        The sparse tier's entry point to the same streams :meth:`_raw_values`
        serves: the block refill (and therefore every trial's generator
        consumption) is identical, but instead of a dense ``(k, width)`` view
        the caller gets the round's start offset into ``stream["values"]``
        rows and gathers only the frontier positions it needs —
        ``values[row, start + position]`` is exactly the fixed-point value the
        dense path would have seen at that position.  That gather-not-slice
        discipline is what makes sparse results bit-identical to dense.
        """
        if self._draw_phase == 0:
            words = stream["words"]
            num_words = words.shape[1]
            for row in range(k):
                words[row] = self._gens[row].bit_generator.random_raw(num_words)
        return self._draw_phase * stream["stride"]


class NeighborSampler:
    """Uniform fixed-point neighbor sampling over the graph's CSR adjacency.

    One sampler owns one draw stream of ``width`` values per trial per round
    plus all the scratch the sampling ufunc chain needs.  Kernels create one
    sampler per logical stream (the walk stream of an agent protocol, the
    callee stream of a vertex protocol — the hybrid kernel has both) and must
    consume every sampler exactly once per round, after a single
    :meth:`BatchKernel._begin_round` call, so block refills stay aligned.

    Precision: 16-bit offsets are exact enough (bias at most
    ``max_deg * 2**-16``) only for small maximum degree; skewed families fall
    back to 32 bits.  Typed degree scalars/arrays keep the ufunc loops in the
    wide integer type (a weak Python-int operand would select the uint16 loop
    and overflow).

    Dynamic topology: when the kernel carries a schedule, the sampler also
    gathers the round's directed-slot activity at the sampled offsets —
    :meth:`round_ok` then answers, per sample, whether that interaction may
    happen this round (edge up, both endpoints alive).  The draw itself is
    unchanged (masking costs one gather, no randomness), and
    :meth:`sample_walk` additionally applies the movement semantics directly:
    an agent whose sampled traversal is blocked stays put.
    """

    def __init__(self, kernel: BatchKernel, width: int, *, lazy: bool = False) -> None:
        graph = kernel.graph
        self._kernel = kernel
        self.width = int(width)
        max_degree = int(graph.degrees.max())
        self.offset_bits = 16 if max_degree <= 64 else 32
        wide = np.int32 if self.offset_bits == 16 else np.int64
        shape = (kernel.num_trials, self.width)
        self._stream = kernel._raw_stream(self.width, self.offset_bits)
        # Laziness is one extra 16-bit coin per value ("stay put" at p = 1/2).
        self._lazy_stream = kernel._raw_stream(self.width, 16) if lazy else None
        self._stay = np.empty(shape, dtype=bool) if lazy else None
        self._scaled = np.empty(shape, dtype=wide)
        #: Dead after sampling; kernels reuse it as int64 scatter scratch.
        self.offsets = np.empty(shape, dtype=np.int64)
        self._starts = np.empty(shape, dtype=np.int64)
        self.sampled = np.empty(shape, dtype=np.int64)
        # Per-sample activity of the round's topology masks; allocated lazily
        # on the first round whose masks are materialized (see round_ok), so
        # all-active schedules cost nothing here.
        self.active = None
        self._blocked = None
        self._active_valid = False
        # d-regular graphs admit a scalar fast path: every degree is d and the
        # CSR row of vertex v starts exactly at v * d.
        self._regular_degree = (
            graph.regularity_degree() if graph.is_regular() else None
        )
        if self._regular_degree is not None:
            self._degree_wide = wide(self._regular_degree)
        else:
            self._degrees_wide = graph.degrees.astype(wide)
        self._vertex_starts = graph.indptr[:-1]

    def sample_walk(self, k: int, positions: np.ndarray) -> np.ndarray:
        """One uniform neighbor of ``positions`` per slot (lazy-aware).

        Returns a ``(k, width)`` view of the sampler's output buffer; the
        caller owns copying it into kernel state.
        """
        graph = self._kernel.graph
        raw = self._kernel._raw_values(k, self._stream)
        scaled = self._scaled[:k]
        offsets = self.offsets[:k]
        starts = self._starts[:k]
        out = self.sampled[:k]
        if self._regular_degree is not None:
            np.multiply(raw, self._degree_wide, out=scaled)
            np.multiply(positions, self._regular_degree, out=starts)
        else:
            # Gather degrees into the scratch, then scale in place (elementwise,
            # so reading and writing the same buffer is safe).
            np.take(self._degrees_wide, positions, out=scaled, mode="clip")
            np.multiply(raw, scaled, out=scaled)
            np.take(graph.indptr, positions, out=starts, mode="clip")
        np.right_shift(scaled, self.offset_bits, out=scaled)
        np.add(starts, scaled, out=offsets)
        np.take(graph.indices, offsets, out=out, mode="clip")
        # A blocked traversal (edge down, or either endpoint crashed) leaves
        # the agent where it is; a lazy stay overrides either way.
        self._gather_active(k)
        if self._active_valid:
            blocked = np.logical_not(self.active[:k], out=self._blocked[:k])
            np.copyto(out, positions, where=blocked)
        if self._lazy_stream is not None:
            lazy = self._kernel._raw_values(k, self._lazy_stream)
            stay = self._stay[:k]
            np.less(lazy, 1 << 15, out=stay)
            np.copyto(out, positions, where=stay)
        return out

    def sample_per_vertex(self, k: int) -> np.ndarray:
        """One uniform neighbor of every vertex (``width == num_vertices``).

        The draw shape is one value per vertex regardless of protocol state,
        which keeps each trial's stream a function of the round number only;
        kernels simply ignore the draws of vertices that do not act.
        """
        graph = self._kernel.graph
        raw = self._kernel._raw_values(k, self._stream)
        scaled = self._scaled[:k]
        offsets = self.offsets[:k]
        out = self.sampled[:k]
        if self._regular_degree is not None:
            np.multiply(raw, self._degree_wide, out=scaled)
        else:
            np.multiply(raw, self._degrees_wide, out=scaled)
        np.right_shift(scaled, self.offset_bits, out=scaled)
        np.add(scaled, self._vertex_starts, out=offsets)
        np.take(graph.indices, offsets, out=out, mode="clip")
        self._gather_active(k)
        return out

    def _gather_active(self, k: int) -> None:
        """Gather this round's slot activity at the sampled offsets.

        Must run while ``offsets`` still holds the sample's flat CSR slots
        (kernels reuse that buffer as scatter scratch afterwards).
        """
        slot_active = self._kernel._slot_active
        self._active_valid = slot_active is not None
        if self._active_valid:
            if self.active is None:
                shape = (self._kernel.num_trials, self.width)
                self.active = np.empty(shape, dtype=bool)
                self._blocked = np.empty(shape, dtype=bool)
            np.take(slot_active, self.offsets[:k], out=self.active[:k], mode="clip")

    def round_ok(self, k: int) -> Optional[np.ndarray]:
        """(k, width) per-sample activity of the round, or None (all active).

        Valid after the round's sample call; ``None`` on rounds with no
        materialized masks, which is the all-active fast path.
        """
        return self.active[:k] if self._active_valid else None
