"""The PUSH-PULL rumor-spreading protocol (Section 3 of the paper).

In round zero the source becomes informed.  In each round ``t >= 1`` *every*
vertex (informed or not) samples a uniformly random neighbor and the two
exchange information: if exactly one of the pair was informed before the
round, the other becomes informed in this round.

``T_ppull`` is the first round by which all vertices are informed.  The round
transition lives in :class:`~repro.core.kernels.push_pull.PushPullKernel`;
this class is the single-trial adapter for the sequential engine.
"""

from __future__ import annotations

import numpy as np

from ..kernels.push_pull import PushPullKernel
from .adapter import KernelProtocolAdapter

__all__ = ["PushPullProtocol"]


class PushPullProtocol(KernelProtocolAdapter):
    """Sequential adapter for the vectorized PUSH-PULL kernel."""

    name = "push-pull"
    kernel_class = PushPullKernel

    def __init__(self, *, track_all_exchanges: bool = False, dynamics=None) -> None:
        #: When True, every sampled (caller, callee) pair is reported through
        #: ``observers.on_edges_used`` — the "bandwidth" view used by the
        #: fairness analysis — instead of only the informing transmissions.
        self.track_all_exchanges = bool(track_all_exchanges)
        super().__init__(
            track_all_exchanges=self.track_all_exchanges, dynamics=dynamics
        )

    def informed_mask(self) -> np.ndarray:
        """Return a copy of the per-vertex informed mask (for tests/analysis)."""
        return self.kernel.informed[0].copy()
