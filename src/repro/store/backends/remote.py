"""HTTP store backend: a remote store service + a local read-through cache.

``RemoteBackend("http://host:port")`` speaks the read-only API of
``repro store serve`` (:mod:`repro.store.service`) and caches every object
it fetches into a local :class:`~repro.store.backends.local.LocalBackend`,
so repeated ``get_trial_set`` calls never re-fetch: the first read of a key
costs two GETs (sidecar + NPZ payload), every later read is served from
disk without touching the network.

Integrity is verified *before* the cache commit: the fetched NPZ bytes must
match the fetched sidecar's SHA-256, otherwise the object is discarded and
:class:`~repro.store.StoreCorruptionError` raised — a corrupt or truncated
transfer can never poison the cache.  The facade then re-verifies on every
read as usual, so the checksum holds end to end across the transport.

The service is read-only, so writes (computed cells, sweep journals) land
in the local cache: a warm central store is a drop-in behind the existing
``put_trial_set``/``get_trial_set`` interface, and anything the server does
not hold is computed once and cached locally.  Only the URL and cache root
cross process boundaries — each worker process opens its own connections —
so the backend pickles cleanly into the parallel cell scheduler.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import urllib.error
import urllib.parse
import urllib.request
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .base import StoreBackend, check_key
from .local import LocalBackend

__all__ = ["CACHE_ENV_VAR", "RemoteBackend", "default_cache_root", "is_store_url"]

#: Environment variable overriding where remote backends cache objects.
CACHE_ENV_VAR = "REPRO_STORE_CACHE"

#: How many sidecars fetched without their payload to keep in memory (the
#: facade reads sidecar-then-NPZ, so the memo saves one GET per object; the
#: cap only matters for sidecar-only scans like ``ls`` against a huge store).
_SIDECAR_MEMO_CAP = 256


def is_store_url(value: Any) -> bool:
    """True when ``value`` is an ``http(s)://`` store-service URL."""
    return isinstance(value, str) and value.lower().startswith(("http://", "https://"))


def default_cache_root(url: str) -> Path:
    """Cache root for a store URL: ``$REPRO_STORE_CACHE`` or a per-URL dir.

    Without the override, each URL gets its own directory under the user
    cache dir (``$XDG_CACHE_HOME`` or ``~/.cache``), keyed by a hash of the
    normalized URL so two services never share (or clobber) a cache.
    """
    override = os.environ.get(CACHE_ENV_VAR, "").strip()
    if override:
        return Path(override)
    base = Path(os.environ.get("XDG_CACHE_HOME", "") or Path.home() / ".cache")
    digest = hashlib.sha256(url.rstrip("/").encode("utf-8")).hexdigest()[:16]
    return base / "repro-store" / digest


class RemoteBackend(StoreBackend):
    """Read objects from a store service over HTTP, through a local cache."""

    def __init__(
        self,
        url: str,
        *,
        cache: Union[None, str, Path, LocalBackend] = None,
        timeout: float = 30.0,
    ) -> None:
        if not is_store_url(url):
            raise ValueError(f"not a store service URL: {url!r}")
        self.url = url.rstrip("/")
        if isinstance(cache, LocalBackend):
            self.cache = cache
        else:
            self.cache = LocalBackend(cache if cache is not None else default_cache_root(self.url))
        self.timeout = float(timeout)
        self._lock = threading.Lock()
        self._sidecar_memo: Dict[str, bytes] = {}

    def __repr__(self) -> str:
        return f"RemoteBackend({self.url!r}, cache={str(self.cache.root)!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RemoteBackend)
            and self.url == other.url
            and self.cache == other.cache
        )

    def __hash__(self) -> int:
        return hash((RemoteBackend, self.url, self.cache))

    # Locks don't pickle; workers rebuild their own lock and an empty memo.
    def __getstate__(self) -> Dict[str, Any]:
        return {"url": self.url, "cache": self.cache, "timeout": self.timeout}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.url = state["url"]
        self.cache = state["cache"]
        self.timeout = state["timeout"]
        self._lock = threading.Lock()
        self._sidecar_memo = {}

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def location(self) -> str:
        return self.url

    @property
    def local(self) -> LocalBackend:
        return self.cache

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    def _get(self, path: str, *, query: Optional[Dict[str, str]] = None) -> Optional[bytes]:
        """GET a service path; None on 404, StoreError on anything else."""
        from ..artifacts import StoreError

        url = self.url + path
        if query:
            url += "?" + urllib.parse.urlencode(query)
        try:
            with urllib.request.urlopen(url, timeout=self.timeout) as response:
                return response.read()
        except urllib.error.HTTPError as exc:
            if exc.code == 404:
                return None
            raise StoreError(
                f"store service at {self.url} returned HTTP {exc.code} for {path}"
            ) from exc
        except (urllib.error.URLError, OSError, TimeoutError) as exc:
            raise StoreError(f"cannot reach store service at {self.url}: {exc}") from exc

    def healthz(self) -> Dict[str, Any]:
        """The service's ``/healthz`` document (raises StoreError when down)."""
        from ..artifacts import StoreError

        payload = self._get("/healthz")
        if payload is None:
            raise StoreError(f"store service at {self.url} has no /healthz endpoint")
        return json.loads(payload)

    def remote_entries(
        self, *, prefix: Optional[str] = None, proto: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """The server-side ``ls`` rows (optionally filtered), without caching."""
        query = {}
        if prefix:
            query["prefix"] = prefix
        if proto:
            query["proto"] = proto
        payload = self._get("/ls", query=query or None)
        if payload is None:  # pragma: no cover - /ls always exists
            return []
        return json.loads(payload).get("entries", [])

    # ------------------------------------------------------------------
    # objects (read-through)
    # ------------------------------------------------------------------
    def read_sidecar_bytes(self, key: str) -> Optional[bytes]:
        key = check_key(key)
        cached = self.cache.read_sidecar_bytes(key)
        if cached is not None:
            return cached
        fetched = self._get(f"/cells/{key}")
        if fetched is not None:
            # Remember it for the NPZ fetch that typically follows; the
            # cache itself only ever holds complete, verified objects.
            with self._lock:
                if len(self._sidecar_memo) >= _SIDECAR_MEMO_CAP:
                    self._sidecar_memo.clear()
                self._sidecar_memo[key] = fetched
        return fetched

    def read_npz_bytes(self, key: str) -> Optional[bytes]:
        from ..artifacts import StoreCorruptionError

        key = check_key(key)
        cached = self.cache.read_npz_bytes(key)
        if cached is not None:
            return cached
        with self._lock:
            sidecar_bytes = self._sidecar_memo.pop(key, None)
        if sidecar_bytes is None:
            sidecar_bytes = self._get(f"/cells/{key}")
        if sidecar_bytes is None:
            return None
        npz_bytes = self._get(f"/cells/{key}/object")
        if npz_bytes is None:
            return None
        # Verify before the cache commit: a truncated or corrupted transfer
        # must fail loudly here, never become a cached "valid" object.
        try:
            expected = json.loads(sidecar_bytes).get("npz_sha256")
        except json.JSONDecodeError as exc:
            raise StoreCorruptionError(
                f"store service at {self.url} sent an unparsable sidecar for {key}"
            ) from exc
        if hashlib.sha256(npz_bytes).hexdigest() != expected:
            raise StoreCorruptionError(
                f"object {key} fetched from {self.url} failed its integrity "
                "check: NPZ bytes do not match the sidecar checksum"
            )
        self.cache.write_object(key, npz_bytes, sidecar_bytes)
        return npz_bytes

    def write_object(self, key: str, npz_bytes: bytes, sidecar_bytes: bytes) -> Path:
        # The service is read-only; computed cells land in the local cache,
        # exactly like a read-through fill.
        return self.cache.write_object(key, npz_bytes, sidecar_bytes)

    def delete_object(self, key: str) -> None:
        # Deletions manage the local cache only (gc of the served root is
        # the server operator's job).
        self.cache.delete_object(key)

    def list_keys(self) -> List[str]:
        remote = {entry["key"] for entry in self.remote_entries() if "key" in entry}
        return sorted(remote.union(self.cache.list_keys()))

    def object_size(self, key: str) -> Optional[int]:
        return self.cache.object_size(key)

    def mark_read(self, key: str) -> None:
        self.cache.mark_read(key)

    # ------------------------------------------------------------------
    # sweep journals (written locally, readable from the service)
    # ------------------------------------------------------------------
    def append_sweep_line(self, sweep_id: str, line: str) -> None:
        self.cache.append_sweep_line(sweep_id, line)

    def read_sweep_text(self, sweep_id: str) -> Optional[str]:
        """Server journal (if any) followed by the locally cached one.

        A sweep can have history on both sides — journaled on the server,
        then resumed by this client.  Concatenating server-first keeps the
        full history: ``completed_keys``/gc pins become the union, and
        ``last_run_statuses`` reads the most recent (local) run.  Journal
        readers tolerate arbitrary event interleaving by construction.
        """
        payload = self._get(f"/sweeps/{urllib.parse.quote(sweep_id)}")
        remote_text = None if payload is None else payload.decode("utf-8")
        cached = self.cache.read_sweep_text(sweep_id)
        if remote_text is None:
            return cached
        if cached is None:
            return remote_text
        return remote_text + cached

    def list_sweeps(self) -> List[str]:
        known = set(self.cache.list_sweeps())
        payload = self._get("/sweeps")
        if payload is not None:
            known.update(json.loads(payload).get("sweeps", []))
        return sorted(known)
