"""Unit tests for the CSR graph type (repro.graphs.graph)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import Graph, GraphError


class TestConstruction:
    def test_basic_triangle(self):
        graph = Graph(3, [(0, 1), (1, 2), (0, 2)], name="triangle")
        assert graph.num_vertices == 3
        assert graph.num_edges == 3
        assert graph.name == "triangle"
        assert len(graph) == 3

    def test_edges_listed_once_each(self):
        graph = Graph(3, [(0, 1), (1, 2)])
        assert sorted(graph.edges()) == [(0, 1), (1, 2)]

    def test_rejects_zero_vertices(self):
        with pytest.raises(GraphError):
            Graph(0, [])

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            Graph(3, [(1, 1)])

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 3)])

    def test_rejects_duplicate_edges(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 1), (1, 0)])

    def test_isolated_vertices_allowed_at_construction(self):
        graph = Graph(4, [(0, 1)])
        assert graph.degree(2) == 0
        assert graph.degree(3) == 0

    def test_from_edges_classmethod(self):
        graph = Graph.from_edges(3, [(0, 2)])
        assert graph.has_edge(0, 2)

    def test_from_adjacency(self):
        graph = Graph.from_adjacency([[1, 2], [0], [0]])
        assert graph.num_edges == 2
        assert graph.has_edge(0, 1)
        assert graph.has_edge(0, 2)
        assert not graph.has_edge(1, 2)


class TestQueries:
    def test_degrees(self, small_star):
        assert small_star.degree(0) == 20
        assert all(small_star.degree(v) == 1 for v in range(1, 21))

    def test_degrees_array_read_only(self, small_star):
        with pytest.raises(ValueError):
            small_star.degrees[0] = 99

    def test_neighbors_of_star_center(self, small_star):
        neighbors = set(small_star.neighbors(0).tolist())
        assert neighbors == set(range(1, 21))

    def test_neighbors_read_only(self, small_star):
        view = small_star.neighbors(0)
        with pytest.raises(ValueError):
            view[0] = 5

    def test_has_edge(self, small_star):
        assert small_star.has_edge(0, 5)
        assert small_star.has_edge(5, 0)
        assert not small_star.has_edge(1, 2)
        assert not small_star.has_edge(3, 3)

    def test_vertices_iterable(self, small_star):
        assert list(small_star.vertices()) == list(range(21))

    def test_edge_count_matches_degree_sum(self, small_heavy_tree):
        assert small_heavy_tree.degrees.sum() == 2 * small_heavy_tree.num_edges

    def test_indptr_indices_consistency(self, small_double_star):
        indptr = small_double_star.indptr
        indices = small_double_star.indices
        assert indptr[0] == 0
        assert indptr[-1] == len(indices)
        assert np.all(np.diff(indptr) == small_double_star.degrees)


class TestSampling:
    def test_sample_neighbor_is_a_neighbor(self, small_heavy_tree, rng):
        for _ in range(50):
            vertex = int(rng.integers(small_heavy_tree.num_vertices))
            sampled = small_heavy_tree.sample_neighbor(vertex, rng)
            assert small_heavy_tree.has_edge(vertex, sampled)

    def test_sample_neighbor_isolated_raises(self, rng):
        graph = Graph(3, [(0, 1)])
        with pytest.raises(GraphError):
            graph.sample_neighbor(2, rng)

    def test_sample_neighbors_vectorized_matches_edges(self, small_regular, rng):
        vertices = np.arange(small_regular.num_vertices)
        sampled = small_regular.sample_neighbors(vertices, rng)
        for u, v in zip(vertices.tolist(), sampled.tolist()):
            assert small_regular.has_edge(u, v)

    def test_sample_neighbors_uniformity_on_star_leaves(self, small_star, rng):
        # Every leaf has exactly one neighbor (the center).
        leaves = np.arange(1, 21)
        sampled = small_star.sample_neighbors(leaves, rng)
        assert np.all(sampled == 0)

    def test_sample_neighbor_approximately_uniform(self, rng):
        graph = Graph(4, [(0, 1), (0, 2), (0, 3)])
        counts = {1: 0, 2: 0, 3: 0}
        for _ in range(3000):
            counts[graph.sample_neighbor(0, rng)] += 1
        for value in counts.values():
            assert 800 < value < 1200

    def test_stationary_distribution_sums_to_one(self, small_heavy_tree):
        pi = small_heavy_tree.stationary_distribution()
        assert pytest.approx(1.0) == pi.sum()
        assert np.all(pi >= 0)

    def test_stationary_distribution_proportional_to_degree(self, small_star):
        pi = small_star.stationary_distribution()
        assert pi[0] == pytest.approx(20 / 40)
        assert pi[1] == pytest.approx(1 / 40)


class TestPredicates:
    def test_star_is_connected_not_regular_bipartite(self, small_star):
        assert small_star.is_connected()
        assert not small_star.is_regular()
        assert small_star.is_bipartite()

    def test_complete_graph_regular_not_bipartite(self, small_complete):
        assert small_complete.is_regular()
        assert small_complete.regularity_degree() == 15
        assert not small_complete.is_bipartite()

    def test_regularity_degree_raises_on_irregular(self, small_star):
        with pytest.raises(GraphError):
            small_star.regularity_degree()

    def test_disconnected_graph_detected(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        assert not graph.is_connected()

    def test_even_cycle_is_bipartite_odd_is_not(self):
        even = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        odd = Graph(3, [(0, 1), (1, 2), (2, 0)])
        assert even.is_bipartite()
        assert not odd.is_bipartite()


class TestTraversal:
    def test_bfs_order_starts_at_source(self, small_double_star):
        order = small_double_star.bfs_order(0)
        assert order[0] == 0
        assert len(order) == small_double_star.num_vertices

    def test_distances_on_path(self, path_graph_4):
        distances = path_graph_4.distances_from(0)
        assert distances.tolist() == [0, 1, 2, 3]

    def test_distances_unreachable_is_minus_one(self):
        graph = Graph(3, [(0, 1)])
        distances = graph.distances_from(0)
        assert distances[2] == -1

    def test_diameter_of_path(self, path_graph_4):
        assert path_graph_4.diameter() == 3

    def test_diameter_of_star(self, small_star):
        assert small_star.diameter() == 2

    def test_diameter_raises_on_disconnected(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(GraphError):
            graph.diameter()


class TestConversion:
    def test_networkx_round_trip(self, small_double_star):
        nx_graph = small_double_star.to_networkx()
        back = Graph.from_networkx(nx_graph)
        assert back.num_vertices == small_double_star.num_vertices
        assert back.num_edges == small_double_star.num_edges
        assert sorted(back.degrees.tolist()) == sorted(small_double_star.degrees.tolist())

    def test_from_networkx_relabels_arbitrary_nodes(self):
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_edges_from([("a", "b"), ("b", "c")])
        graph = Graph.from_networkx(nx_graph)
        assert graph.num_vertices == 3
        assert graph.num_edges == 2

    def test_relabeled_shares_structure(self, small_star):
        clone = small_star.relabeled("renamed")
        assert clone.name == "renamed"
        assert clone.num_edges == small_star.num_edges
        assert clone.has_edge(0, 1)
