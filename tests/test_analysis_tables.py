"""Tests for table rendering (repro.analysis.tables)."""

from __future__ import annotations


import pytest

from repro.analysis.tables import (
    format_float,
    format_markdown_table,
    format_table,
    rows_from_dicts,
)


class TestFormatFloat:
    def test_none_is_dash(self):
        assert format_float(None) == "-"

    def test_integers_render_without_decimals(self):
        assert format_float(42) == "42"

    def test_floats_use_precision(self):
        assert format_float(3.14159) == "3.14"
        assert format_float(3.14159, precision=4) == "3.1416"

    def test_large_and_tiny_values_use_compact_form(self):
        assert format_float(123456.0) == "1.23e+05"
        assert format_float(0.000123) == "0.000123"

    def test_special_values(self):
        assert format_float(float("nan")) == "nan"
        assert format_float(float("inf")) == "inf"
        assert format_float(float("-inf")) == "-inf"
        assert format_float(True) == "yes"
        assert format_float(False) == "no"
        assert format_float("text") == "text"


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        text = format_table(["a", "b"], [[1, 2], [3, 4]], title="demo")
        assert "demo" in text
        assert "a" in text and "b" in text
        assert "3" in text and "4" in text

    def test_alignment_produces_equal_length_data_lines(self):
        text = format_table(["col", "x"], [[1, 2.5], [100, 3]])
        lines = text.splitlines()
        assert len(lines[1]) == len(lines[2]) == len(lines[3])

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestFormatMarkdownTable:
    def test_structure(self):
        text = format_markdown_table(["n", "T"], [[10, 1.5], [20, 2.5]])
        lines = text.splitlines()
        assert lines[0] == "| n | T |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 10 | 1.50 |"
        assert len(lines) == 4

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_markdown_table(["a"], [[1, 2]])


class TestRowsFromDicts:
    def test_respects_column_order(self):
        records = [{"a": 1, "b": 2}, {"a": 3, "b": 4}]
        rows = rows_from_dicts(records, columns=["b", "a"])
        assert rows == [["2", "1"], ["4", "3"]]

    def test_missing_keys_become_dash(self):
        rows = rows_from_dicts([{"a": 1}], columns=["a", "zzz"])
        assert rows == [["1", "-"]]

    def test_empty_records(self):
        assert rows_from_dicts([]) == []

    def test_default_columns_from_first_record(self):
        rows = rows_from_dicts([{"x": 1.5, "y": None}])
        assert rows == [["1.50", "-"]]
