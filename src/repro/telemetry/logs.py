"""Structured stdlib logging behind the ``REPRO_LOG`` environment knob.

Every module logs through ``get_logger("store.worker")``-style children of
the ``repro`` logger.  With ``REPRO_LOG`` unset nothing is configured: no
handler is attached, propagation stays on (so pytest's ``caplog`` works),
and the stdlib default WARNING threshold keeps the stack silent — exactly
the pre-telemetry behavior.  Setting ``REPRO_LOG=debug`` (or ``info`` /
``warning`` / ``error``) attaches one stderr handler with a key=value line
format::

    2026-08-07 12:00:00.123 DEBUG repro.store.remote request attempt failed \
url=http://127.0.0.1:8321 attempt=1/4 elapsed=0.012 reason="HTTP 503"

Messages are built with :func:`kv` so fields stay grep-able; values with
spaces, quotes or ``=`` are JSON-quoted.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import threading
from typing import Any

__all__ = ["LOG_ENV_VAR", "get_logger", "kv"]

LOG_ENV_VAR = "REPRO_LOG"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "warn": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}

_CONFIG_LOCK = threading.Lock()
_CONFIGURED = False


def kv(**fields: Any) -> str:
    """Render keyword fields as a ``key=value`` string, in call order."""
    parts = []
    for key, value in fields.items():
        text = str(value)
        if not text or any(char in text for char in ' "=\n'):
            text = json.dumps(text)
        parts.append(f"{key}={text}")
    return " ".join(parts)


def _parse_level(raw: str) -> int:
    level = _LEVELS.get(raw.strip().lower())
    if level is not None:
        return level
    try:
        return int(raw)
    except ValueError:
        return logging.INFO


def _configure() -> None:
    global _CONFIGURED
    if _CONFIGURED:
        return
    raw = os.environ.get(LOG_ENV_VAR, "").strip()
    if not raw:
        return
    with _CONFIG_LOCK:
        if _CONFIGURED:
            return
        root = logging.getLogger("repro")
        handler = logging.StreamHandler(sys.stderr)
        formatter = logging.Formatter(
            "%(asctime)s.%(msecs)03d %(levelname)s %(name)s %(message)s",
            datefmt="%Y-%m-%d %H:%M:%S",
        )
        handler.setFormatter(formatter)
        root.addHandler(handler)
        root.setLevel(_parse_level(raw))
        # The handler owns output now; propagating to the stdlib root logger
        # would double-print under basicConfig'd host applications.
        root.propagate = False
        _CONFIGURED = True


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy, configuring it on first use."""
    _configure()
    if name != "repro" and not name.startswith("repro."):
        name = f"repro.{name}"
    return logging.getLogger(name)
