"""``repro store serve``: an HTTP API over a local store root.

The service is deliberately thin — stdlib :class:`ThreadingHTTPServer`, no
dependencies — because the store's integrity model does all the hard work:
objects are immutable, content-addressed and checksummed, so the server
just streams the committed bytes verbatim and every client re-verifies the
SHA-256 end to end (:class:`~repro.store.backends.RemoteBackend` checks
before filling its cache, :class:`~repro.store.ResultStore` checks again on
every read).  Serving a root that a sweep is concurrently writing into is
safe: writes are atomic renames ordered NPZ-before-sidecar, and the server
only serves objects whose sidecar (the commit marker) exists.

Read API (always available):

``GET /healthz``
    Liveness + store summary (object count, format/semantics versions,
    whether the write path is enabled).
``GET /cells/<key>``
    The object's JSON sidecar, verbatim.  404 when absent, 400 for a
    malformed key.
``GET /cells/<key>/object``
    The object's compressed NPZ payload, verbatim.  404 when the object is
    absent *or uncommitted* (NPZ present but no sidecar yet).
``GET /sweeps``
    JSON ``{"sweeps": [...]}`` of the journal ids the store holds.
``GET /sweeps/<id>``
    A sweep journal (JSONL), verbatim.
``GET /sweeps/<id>/status``
    Farm queue counts and lease-accounting counters of a submitted sweep.
``GET /ls?prefix=<hex>&proto=<name>``
    JSON ``{"store", "count", "entries": [...]}`` of the ``repro store ls``
    rows, optionally filtered by key prefix and/or protocol name.
``GET /metrics``
    Prometheus text exposition of the per-server registry: request counts,
    latencies and bytes by route kind, report-cache hit/miss, farm lease
    accounting and queue depth, worker-pushed fleet health, and scrape-time
    store object/byte gauges.  See :mod:`repro.telemetry.metrics`.
``GET /report/<section>`` / ``GET /report/<section>.json``
    The experiment report rendered from cached cells only — zero simulation
    and, on a warm manifest, zero graph construction.  ``<section>`` is a
    registry experiment id, ``coupling``, ``fairness``, or ``all``; query
    params ``only`` (comma-separated section filter, mirroring the CLI's
    ``--only``), ``seed``, ``trials``, ``scale`` and ``backend`` select the
    cell set.  Rendered reports are cached in memory keyed on the request
    params and revalidated against the underlying cell-set fingerprint, so
    a warm report answers without touching the experiment code at all.

Every cacheable GET answer carries an ``ETag`` (object routes use the
content-addressed key itself; journals and listings hash their bytes;
reports use the cell-set fingerprint) and honours ``If-None-Match`` with a
``304 Not Modified``, so polling dashboards and
:class:`~repro.store.backends.RemoteBackend` readers revalidate instead of
re-downloading.

Write API (enabled only when the service is started with an auth token;
every request must carry ``Authorization: Bearer <token>``, and a service
without a token keeps answering 405 to every write, exactly as before):

``PUT /cells/<key>``
    Publish one object.  The body is the explicit-length wire frame of
    :func:`~repro.store.backends.base.encode_object_frame`; the server
    re-verifies the frame structurally *and* the payload's SHA-256 against
    the sidecar (and, when the sidecar carries its cell payload, the key
    against the payload's hash) before committing — the client-side
    fail-loud contract, mirrored server-side.  A bit-identical duplicate is
    idempotent (200); a conflicting payload is 409.
``POST /sweeps/submit``
    Register a sweep and its cell manifest with the lease farm
    (:class:`~repro.store.farm.SweepFarm`).
``POST /sweeps/<id>/lease`` / ``heartbeat`` / ``complete`` / ``fail``
    The worker protocol: grant the next missing cell, renew a lease,
    record a published cell done, release a lease early.
``POST /sweeps/<id>/metrics``
    Fleet health: a worker pushes its ``{"worker": ..., "metrics": {...}}``
    snapshot (cells completed, publish retries, degradations, heartbeat
    RTT); the hub surfaces it in the sweep status document and on
    ``GET /metrics`` as ``repro_fleet_*`` gauges.

Graceful shutdown: :meth:`StoreService.request_stop` stops accepting new
connections while in-flight requests run to completion
(:meth:`StoreService.drain`), so CI teardown and operators never observe
half-logged state — the CLI wires SIGTERM/SIGINT to exactly that sequence
and flushes the request counters on the way out.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import re
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from ..telemetry import MetricsRegistry, span
from .artifacts import ResultStore, StoreError
from .backends import KEY_HEX_LENGTH, decode_object_frame
from .farm import FarmError, SweepFarm, UnknownLeaseError, UnknownSweepError
from .keys import SEMANTICS_VERSION, STORE_FORMAT_VERSION, cell_key

__all__ = ["StoreRequestHandler", "StoreService", "serve"]

_KEY_RE = re.compile(rf"^[0-9a-f]{{{KEY_HEX_LENGTH}}}$")
#: Journal names are 16-hex sweep ids; the charset also rules out any path
#: traversal in the URL.
_SWEEP_RE = re.compile(r"^[A-Za-z0-9_-]{1,64}$")

#: Upper bound on accepted request bodies (a publish of one cell object; the
#: largest registry cells are a few MB, so this is generous headroom while
#: still bounding what an unauthenticated request can make the server read).
_MAX_BODY_BYTES = 256 * 1024 * 1024

#: Prometheus exposition content type served by ``GET /metrics``.
_METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _route_kind(route: str, method: str = "GET") -> str:
    """Collapse one request path into its bounded route-kind bucket.

    Unknown paths share one bucket — a long-running server probed with
    unique junk URLs must not grow a metric series per path.
    """
    if route.startswith("/cells/"):
        return "/cells/*/object" if route.endswith("/object") else "/cells/*"
    if route.startswith("/report/"):
        return "/report/*"
    if route == "/sweeps/submit" and method == "POST":
        return "/sweeps/submit"
    if route.startswith("/sweeps/"):
        tail = route.rsplit("/", 1)[-1]
        if tail in ("lease", "heartbeat", "complete", "fail", "status", "metrics"):
            return f"/sweeps/*/{tail}"
        return "/sweeps/*"
    if route in ("/healthz", "/ls", "/sweeps", "/metrics"):
        return route
    return "<unknown>"


class StoreRequestHandler(BaseHTTPRequestHandler):
    """One request against the served store."""

    server_version = "repro-store"
    protocol_version = "HTTP/1.1"

    #: Status of the last response sent on this connection; stamped by
    #: :meth:`send_response` so `_guarded` can label the latency metrics.
    _response_status = 0

    # ------------------------------------------------------------------
    # responses
    # ------------------------------------------------------------------
    def send_response(self, code: int, message: Optional[str] = None) -> None:
        self._response_status = code
        super().send_response(code, message)

    def _send(
        self, status: int, body: bytes, content_type: str, *, etag: Optional[str] = None
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        if etag is not None:
            self.send_header("ETag", f'"{etag}"')
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self.server.count_bytes(len(body))

    def _if_none_match(self) -> set:
        """The validators of the request's ``If-None-Match`` header, unquoted."""
        tags = set()
        for part in self.headers.get("If-None-Match", "").split(","):
            part = part.strip()
            if part.startswith("W/"):
                part = part[2:].strip()
            if part:
                tags.add(part.strip('"'))
        return tags

    def _send_validated(self, body: bytes, content_type: str, etag: str) -> None:
        """200 with an ETag, or 304 when the client already holds these bytes."""
        tags = self._if_none_match()
        if etag in tags or "*" in tags:
            self._send(304, b"", content_type, etag=etag)
            return
        self._send(200, body, content_type, etag=etag)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send(status, body, "application/json")

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    # ------------------------------------------------------------------
    # request plumbing
    # ------------------------------------------------------------------
    def _authorized(self) -> bool:
        """Check the bearer token (constant-time comparison)."""
        token = self.server.token
        if token is None:
            return False
        supplied = self.headers.get("Authorization", "")
        expected = f"Bearer {token}"
        return hmac.compare_digest(supplied.encode("utf-8"), expected.encode("utf-8"))

    def _read_body(self) -> Optional[bytes]:
        """The request body, honouring Content-Length; None on a bad length.

        A short read (the peer died or the proxy truncated mid-upload) is
        reported as None too — the caller answers 400 and the connection is
        closed, never a half-parsed publish.
        """
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            return None
        if length < 0 or length > _MAX_BODY_BYTES:
            return None
        body = self.rfile.read(length)
        if len(body) != length:
            self.close_connection = True
            return None
        return body

    def _guarded(self, dispatch) -> None:
        """Run one route dispatch inside the in-flight request window."""
        self.server.begin_request()
        self._response_status = 0
        started = time.monotonic()
        try:
            dispatch()
        finally:
            self.server.end_request()
            route = urllib.parse.urlsplit(self.path).path.rstrip("/") or "/"
            self.server.observe_request(
                _route_kind(route, self.command),
                self._response_status,
                time.monotonic() - started,
            )

    # ------------------------------------------------------------------
    # GET routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._guarded(self._do_get)

    def _do_get(self) -> None:
        parts = urllib.parse.urlsplit(self.path)
        route = parts.path.rstrip("/") or "/"
        query = urllib.parse.parse_qs(parts.query)
        store: ResultStore = self.server.store
        self.server.count_request(route)

        if route == "/healthz":
            payload = {
                "status": "ok",
                "store": str(store.root),
                "objects": len(store.backend.list_keys()),
                "format": STORE_FORMAT_VERSION,
                "semantics": SEMANTICS_VERSION,
                "writable": self.server.token is not None,
            }
            self._send_json(200, payload)
            return

        if route == "/ls":
            prefix = (query.get("prefix") or [""])[0]
            proto = (query.get("proto") or [""])[0]
            entries = [
                row
                for row in store.entries()
                if row["key"].startswith(prefix) and (not proto or row["protocol"] == proto)
            ]
            payload = {"store": str(store.root), "count": len(entries), "entries": entries}
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            self._send_validated(body, "application/json", hashlib.sha256(body).hexdigest())
            return

        if route == "/metrics":
            self.server.collect_scrape_gauges()
            body = self.server.metrics.render().encode("utf-8")
            self._send(200, body, _METRICS_CONTENT_TYPE)
            return

        match = re.fullmatch(r"/cells/([^/]+)(/object)?", route)
        if match:
            key, want_object = match.group(1), bool(match.group(2))
            if not _KEY_RE.fullmatch(key):
                self._error(400, f"malformed cell key {key!r}")
                return
            # The sidecar is the commit marker: an object without one is
            # invisible, payload included, so a half-written cell can never
            # be served.  Objects are immutable and content-addressed, so
            # the key itself is a perfect ETag for both routes.
            sidecar_bytes = store.backend.local.read_sidecar_bytes(key)
            if sidecar_bytes is None:
                self._error(404, f"no object {key}")
                return
            if not want_object:
                self._send_validated(sidecar_bytes, "application/json", key)
                return
            npz_bytes = store.backend.local.read_npz_bytes(key)
            if npz_bytes is None:
                self._error(404, f"object {key} has no NPZ payload")
                return
            # An HTTP read (or revalidation) is a read: bump the payload's
            # read stamp so `gc --max-bytes` LRU ordering sees served-hot
            # cells as hot, not as eviction candidates.
            store.backend.local.mark_read(key)
            self._send_validated(npz_bytes, "application/octet-stream", key)
            return

        match = re.fullmatch(r"/report/([A-Za-z0-9_-]+)(\.json)?", route)
        if match:
            self._report(match.group(1), as_json=bool(match.group(2)), query=query)
            return

        if route == "/sweeps":
            self._send_json(200, {"sweeps": store.backend.local.list_sweeps()})
            return

        match = re.fullmatch(r"/sweeps/([^/]+)/status", route)
        if match:
            sweep = match.group(1)
            if not _SWEEP_RE.fullmatch(sweep):
                self._error(400, f"malformed sweep id {sweep!r}")
                return
            try:
                self._send_json(200, self.server.farm.status(sweep))
            except UnknownSweepError as exc:
                self._error(404, str(exc))
            return

        match = re.fullmatch(r"/sweeps/([^/]+)", route)
        if match:
            sweep = match.group(1)
            if not _SWEEP_RE.fullmatch(sweep):
                self._error(400, f"malformed sweep id {sweep!r}")
                return
            text = store.backend.local.read_sweep_text(sweep)
            if text is None:
                self._error(404, f"no sweep {sweep}")
                return
            body = text.encode("utf-8")
            self._send_validated(body, "application/x-ndjson", hashlib.sha256(body).hexdigest())
            return

        self._error(404, f"unknown route {route!r}")

    def _report(self, name: str, *, as_json: bool, query: Dict[str, Any]) -> None:
        """Serve ``/report/<section>[.json]`` from cached cells only.

        The experiment layer is imported lazily so the store service stays
        importable (and every other route keeps working) in stripped-down
        deployments that only ship the store package.
        """
        from ..experiments import reporting

        known = reporting.report_section_ids()
        if name == "all":
            sections = list(known)
        elif name in known:
            sections = [name]
        else:
            self._error(
                404,
                f"unknown report section {name!r}; choose from: all, {', '.join(known)}",
            )
            return
        only: list = []
        for raw in query.get("only", []):
            only.extend(part for part in raw.split(",") if part)
        if only:
            unknown = [part for part in only if part not in known]
            if unknown:
                self._error(
                    400,
                    f"unknown report section(s) {', '.join(map(repr, unknown))}; "
                    f"choose from: {', '.join(known)}",
                )
                return
            sections = [section for section in sections if section in set(only)]
        try:
            base_seed = int((query.get("seed") or ["0"])[0])
            trials_raw = (query.get("trials") or [""])[0]
            trials = int(trials_raw) if trials_raw else None
            scale = float((query.get("scale") or ["1.0"])[0])
        except ValueError:
            self._error(400, "report params seed/trials/scale must be numeric")
            return
        backend = (query.get("backend") or ["auto"])[0]
        kwargs = dict(
            sections=sections, base_seed=base_seed, trials=trials, scale=scale, backend=backend
        )
        params = (tuple(sections), base_seed, trials, scale, backend)
        try:
            # The fingerprint is cheap (key derivation + stat calls, no
            # simulation) and pins the exact cell set: it validates the
            # in-memory render cache *and* doubles as the HTTP ETag.
            fingerprint = reporting.report_fingerprint(self.server.store, **kwargs)
            cached = self.server.report_cache_get(params, fingerprint)
            if cached is None:
                with span("report.render", sections=",".join(sections)):
                    payload = reporting.store_report_payload(self.server.store, **kwargs)
                    json_bytes = json.dumps(payload, sort_keys=True).encode("utf-8")
                    html_bytes = reporting.render_report_html(payload).encode("utf-8")
                self.server.report_cache_put(params, fingerprint, json_bytes, html_bytes)
            else:
                json_bytes, html_bytes = cached
        except StoreError as exc:
            self._error(500, f"report failed: {exc}")
            return
        if as_json:
            self._send_validated(json_bytes, "application/json", fingerprint)
        else:
            self._send_validated(html_bytes, "text/html; charset=utf-8", fingerprint)

    # ------------------------------------------------------------------
    # write routes (only with an auth token; read-only otherwise)
    # ------------------------------------------------------------------
    def do_PUT(self) -> None:  # noqa: N802 - http.server API
        if self.server.token is None:
            self._read_only()
            return
        self._guarded(self._do_put)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.server.token is None:
            self._read_only()
            return
        self._guarded(self._do_post)

    def _reject_write(self, status: int, message: str) -> None:
        # The (possibly unread) request body would desync a keep-alive
        # connection, so always close after refusing a write.
        self.close_connection = True
        self._error(status, message)

    def _do_put(self) -> None:
        route = urllib.parse.urlsplit(self.path).path.rstrip("/")
        self.server.count_request(route, method="PUT")
        match = re.fullmatch(r"/cells/([^/]+)", route)
        if not match:
            self._reject_write(404, f"unknown write route {route!r}")
            return
        key = match.group(1)
        if not _KEY_RE.fullmatch(key):
            self._reject_write(400, f"malformed cell key {key!r}")
            return
        if not self._authorized():
            self._reject_write(401, "missing or invalid auth token")
            return
        body = self._read_body()
        if body is None:
            self._reject_write(400, "unreadable request body (bad or oversized length)")
            return
        try:
            npz_bytes, sidecar_bytes = decode_object_frame(body)
        except ValueError as exc:
            self._error(400, f"rejected publish of {key}: {exc}")
            return

        # Server-side re-verification, mirroring the client's fail-loud
        # contract: the sidecar must parse, its checksum must match the
        # payload bytes, and a self-describing sidecar must hash back to the
        # key it claims — a corrupted or mislabeled publish never commits.
        try:
            sidecar = json.loads(sidecar_bytes.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._error(400, f"rejected publish of {key}: unparsable sidecar ({exc})")
            return
        if sidecar.get("key") != key:
            self._error(400, f"rejected publish of {key}: sidecar names key {sidecar.get('key')!r}")
            return
        if hashlib.sha256(npz_bytes).hexdigest() != sidecar.get("npz_sha256"):
            self._error(
                400,
                f"rejected publish of {key}: payload bytes do not match the sidecar checksum",
            )
            return
        if sidecar.get("cell") is not None:
            try:
                derived = cell_key(sidecar["cell"])
            except (TypeError, ValueError) as exc:
                self._error(400, f"rejected publish of {key}: uncanonical cell payload ({exc})")
                return
            if derived != key:
                self._error(
                    400,
                    f"rejected publish of {key}: cell payload hashes to {derived}",
                )
                return

        store: ResultStore = self.server.store
        existing_sidecar = store.backend.local.read_sidecar_bytes(key)
        if existing_sidecar is not None:
            existing_npz = store.backend.local.read_npz_bytes(key)
            if existing_sidecar == sidecar_bytes and existing_npz == npz_bytes:
                # Publishes are idempotent: cells are content-addressed pure
                # functions, so a bit-identical duplicate is the expected
                # outcome of two honest workers racing one cell.
                self._send_json(200, {"key": key, "status": "exists"})
                return
            self._error(
                409,
                f"conflicting publish of {key}: an object with different bytes "
                "is already committed (nondeterminism or mixed code versions)",
            )
            return
        store.backend.local.write_object(key, npz_bytes, sidecar_bytes)
        self._send_json(201, {"key": key, "status": "committed"})

    def _do_post(self) -> None:
        route = urllib.parse.urlsplit(self.path).path.rstrip("/")
        self.server.count_request(route, method="POST")
        if not self._authorized():
            self._reject_write(401, "missing or invalid auth token")
            return
        body = self._read_body()
        if body is None:
            self._reject_write(400, "unreadable request body (bad or oversized length)")
            return
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._error(400, f"unparsable JSON body: {exc}")
            return
        farm: SweepFarm = self.server.farm

        if route == "/sweeps/submit":
            sweep = payload.get("sweep")
            cells = payload.get("cells")
            if not isinstance(sweep, dict) or not isinstance(cells, list):
                self._error(400, "submit body needs {'sweep': {...}, 'cells': [...]}")
                return
            try:
                self._send_json(200, farm.submit(sweep, cells))
            except FarmError as exc:
                self._error(409, str(exc))
            return

        match = re.fullmatch(
            r"/sweeps/([^/]+)/(lease|heartbeat|complete|fail|metrics)", route
        )
        if not match:
            self._error(404, f"unknown write route {route!r}")
            return
        sweep_id, action = match.group(1), match.group(2)
        if not _SWEEP_RE.fullmatch(sweep_id):
            self._error(400, f"malformed sweep id {sweep_id!r}")
            return
        try:
            if action == "lease":
                grant = farm.lease(sweep_id, str(payload.get("worker", "")))
                if grant is None:
                    self._send_json(200, {"granted": False, **farm.status(sweep_id)})
                else:
                    self._send_json(200, {"granted": True, **grant})
            elif action == "heartbeat":
                self._send_json(200, farm.heartbeat(sweep_id, str(payload.get("lease", ""))))
            elif action == "metrics":
                result = farm.worker_metrics(
                    sweep_id,
                    str(payload.get("worker", "")),
                    payload.get("metrics") or {},
                )
                self._send_json(200, result)
            elif action == "complete":
                result = farm.complete(
                    sweep_id,
                    str(payload.get("lease", "")),
                    key=str(payload.get("key", "")),
                    worker=str(payload.get("worker", "")),
                )
                self._send_json(200, result)
            else:  # fail
                result = farm.fail(
                    sweep_id,
                    str(payload.get("lease", "")),
                    reason=str(payload.get("reason", "")),
                )
                self._send_json(200, result)
        except UnknownSweepError as exc:
            self._error(404, str(exc))
        except UnknownLeaseError as exc:
            self._error(409, str(exc))
        except FarmError as exc:
            self._error(400, str(exc))

    # Without a token the store service is read-only by construction; refuse
    # writes loudly rather than letting http.server's default 501 suggest
    # "not yet".
    def _read_only(self) -> None:
        # The unread request body would desync a keep-alive connection (its
        # bytes would parse as the next request line), so close after
        # responding instead of draining arbitrarily large uploads.
        self.close_connection = True
        self._error(405, "the store service is read-only")

    do_DELETE = do_PATCH = _read_only

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not getattr(self.server, "quiet", True):  # pragma: no cover
            super().log_message(format, *args)


class _StoreHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the store, farm, auth and counters."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        store: ResultStore,
        *,
        quiet: bool,
        token: Optional[str] = None,
        lease_ttl: float = 60.0,
    ) -> None:
        super().__init__(address, StoreRequestHandler)
        self.store = store
        self.quiet = quiet
        self.token = token
        # Per-server registry: two services in one process (a common test
        # shape) must never see each other's request counts, so nothing
        # here lands in the process-global default registry.
        self.metrics = MetricsRegistry()
        self._requests_total = self.metrics.counter(
            "repro_service_requests_total",
            "Requests received, by route kind and HTTP method.",
            labels=("route", "method"),
        )
        self._responses_total = self.metrics.counter(
            "repro_service_responses_total",
            "Responses sent, by route kind and status code.",
            labels=("route", "status"),
        )
        self._request_seconds = self.metrics.histogram(
            "repro_service_request_seconds",
            "Request handling latency, by route kind.",
            labels=("route",),
        )
        self._bytes_sent = self.metrics.counter(
            "repro_service_bytes_sent_total",
            "Response body bytes written to clients.",
        )
        self._report_cache_hits = self.metrics.counter(
            "repro_report_cache_hits_total",
            "Report requests answered from the fingerprint-validated render cache.",
        )
        self._report_cache_misses = self.metrics.counter(
            "repro_report_cache_misses_total",
            "Report requests that had to render (cold or stale cache entry).",
        )
        self.farm = SweepFarm(store, lease_ttl=lease_ttl, registry=self.metrics)
        self._counter_lock = threading.Lock()
        self._in_flight = 0
        self._idle = threading.Condition(self._counter_lock)
        self._report_lock = threading.Lock()
        self._report_cache: Dict[tuple, Tuple[str, bytes, bytes]] = {}

    # ------------------------------------------------------------------
    # rendered-report cache (validated by the cell-set fingerprint)
    # ------------------------------------------------------------------
    def report_cache_get(self, params: tuple, fingerprint: str) -> Optional[Tuple[bytes, bytes]]:
        """Cached (json, html) bytes for ``params`` iff still fingerprint-fresh."""
        with self._report_lock:
            entry = self._report_cache.get(params)
            if entry is not None and entry[0] == fingerprint:
                self._report_cache_hits.inc()
                return entry[1], entry[2]
        self._report_cache_misses.inc()
        return None

    def report_cache_put(
        self, params: tuple, fingerprint: str, json_bytes: bytes, html_bytes: bytes
    ) -> None:
        with self._report_lock:
            # Bounded: a long-running server probed with many param combos
            # must not hoard renders; drop the oldest insertion beyond 32.
            while len(self._report_cache) >= 32:
                self._report_cache.pop(next(iter(self._report_cache)))
            self._report_cache[params] = (fingerprint, json_bytes, html_bytes)

    def count_request(self, route: str, *, method: str = "GET") -> None:
        """Tally one request per route kind (observability + test hooks).

        The tally lives in the per-server metrics registry (labeled by route
        kind and method) and is therefore served live by ``GET /metrics`` —
        not only flushed at shutdown.  Write methods get their own buckets
        (``PUT /cells/*``, ``POST /sweeps/*/lease``, ...) so farm traffic is
        visible next to the read-path counters.
        """
        self._requests_total.labels(route=_route_kind(route, method), method=method).inc()

    @property
    def request_counts(self) -> Dict[str, int]:
        """The historical flat counter view, derived from the registry.

        Keys keep their pre-registry shape — bare route kinds for GETs,
        ``"<METHOD> <kind>"`` for writes — so the CLI shutdown banner and
        the exact-count assertions in the test suite are unchanged.
        """
        counts: Dict[str, int] = {}
        for values, series in self._requests_total.series_items():
            route, method = values
            key = route if method == "GET" else f"{method} {route}"
            value = int(series.value)
            if value:
                counts[key] = counts.get(key, 0) + value
        return counts

    def observe_request(self, kind: str, status: int, elapsed: float) -> None:
        """Record one finished request's status and latency."""
        self._responses_total.labels(route=kind, status=str(status or 0)).inc()
        self._request_seconds.labels(route=kind).observe(elapsed)

    def count_bytes(self, nbytes: int) -> None:
        if nbytes:
            self._bytes_sent.inc(nbytes)

    def collect_scrape_gauges(self) -> None:
        """Refresh scrape-time gauges: store contents and farm queue depth.

        Called per ``/metrics`` request rather than continuously — gauges
        describe current state, so computing them anywhere else would only
        buy staleness.
        """
        local = self.store.backend.local
        keys = local.list_keys()
        total = 0
        for key in keys:
            total += local.object_size(key) or 0
        self.metrics.gauge(
            "repro_store_objects", "Committed objects in the served store."
        ).set(len(keys))
        self.metrics.gauge(
            "repro_store_bytes", "Committed object bytes in the served store."
        ).set(total)
        self.farm.export_queue_gauges()

    # ------------------------------------------------------------------
    # in-flight accounting (graceful shutdown)
    # ------------------------------------------------------------------
    def begin_request(self) -> None:
        with self._idle:
            self._in_flight += 1

    def end_request(self) -> None:
        with self._idle:
            self._in_flight -= 1
            if self._in_flight == 0:
                self._idle.notify_all()

    def wait_idle(self, timeout: float) -> bool:
        """Block until no request is in flight (True) or timeout (False)."""
        with self._idle:
            return self._idle.wait_for(lambda: self._in_flight == 0, timeout=timeout)


class StoreService:
    """A running (or startable) store service bound to a host/port.

    Usable as a context manager in tests and long-running via
    :meth:`serve_forever` from the CLI::

        with StoreService(store_root, port=0) as service:
            remote = ResultStore(service.url, cache=cache_dir)
            ...

    ``port=0`` binds an ephemeral port; read the resolved one from
    :attr:`url`.  Only local store roots can be served — fronting a remote
    store would re-proxy bytes the client could fetch directly.  Passing
    ``token`` enables the authenticated write path (publishes and the sweep
    farm); without one the service is read-only, exactly as before.
    """

    def __init__(
        self,
        root: Union[str, Path, ResultStore],
        *,
        host: str = "127.0.0.1",
        port: int = 8080,
        quiet: bool = True,
        token: Optional[str] = None,
        lease_ttl: float = 60.0,
    ) -> None:
        store = root if isinstance(root, ResultStore) else ResultStore(root)
        if store.backend.local is not store.backend:
            raise StoreError(f"can only serve a local store root, not {store.root!r}")
        self.store = store
        self.server = _StoreHTTPServer(
            (host, port), store, quiet=quiet, token=token, lease_ttl=lease_ttl
        )
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        """Base URL of the bound service (with the resolved port)."""
        host, port = self.server.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def request_counts(self) -> Dict[str, int]:
        """Requests served so far, keyed by route kind."""
        return dict(self.server.request_counts)

    @property
    def farm(self) -> SweepFarm:
        """The lease work queue behind the farm endpoints."""
        return self.server.farm

    def start(self) -> "StoreService":
        """Serve on a daemon thread (idempotent); returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                # A tight poll interval keeps shutdown() prompt (the default
                # 0.5s poll makes every test teardown pay half a second).
                target=lambda: self.server.serve_forever(poll_interval=0.05),
                name="repro-store-serve",
                daemon=True,
            )
            self._thread.start()
        return self

    def request_stop(self) -> None:
        """Ask the serve loop to exit without waiting for it.

        Safe to call from a signal handler: ``shutdown()`` blocks until the
        loop notices, which would deadlock a handler running *on* the
        serving thread, so the blocking wait is pushed onto a helper thread.
        """
        threading.Thread(target=self.server.shutdown, daemon=True).start()

    def drain(self, timeout: float = 10.0) -> bool:
        """Wait for in-flight requests to finish; True when fully idle."""
        return self.server.wait_idle(timeout)

    def stop(self) -> None:
        """Shut the server down, drain in-flight requests, release the port."""
        self.server.shutdown()
        self.drain(timeout=5.0)
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI path)."""
        try:
            self.server.serve_forever()
        finally:
            self.drain(timeout=10.0)
            self.server.server_close()

    def __enter__(self) -> "StoreService":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def serve(
    root: Union[str, Path],
    *,
    host: str = "127.0.0.1",
    port: int = 8080,
    quiet: bool = False,
    token: Optional[str] = None,
    lease_ttl: float = 60.0,
) -> StoreService:
    """Construct (without starting) a service over ``root`` — CLI entry point."""
    return StoreService(root, host=host, port=port, quiet=quiet, token=token, lease_ttl=lease_ttl)
