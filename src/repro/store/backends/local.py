"""Local-directory store backend: the on-disk layout every store bottoms out in.

Layout (everything under one root directory)::

    <root>/
      objects/<k0k1>/<key>.npz    compressed per-trial arrays
      objects/<k0k1>/<key>.json   sidecar: metadata + integrity checksum
      sweeps/<sweep_id>.jsonl     append-only sweep journals

``<key>`` is the 64-hex-digit cell key of :mod:`repro.store.keys`; objects
are sharded by the first two hex digits to keep directory listings sane at
scale.  Writes are atomic (write to a temp file in the same directory, then
``os.replace``) and ordered NPZ-before-sidecar, so the sidecar's existence
is the commit marker: a reader never observes a half-written object, and a
crash mid-write leaves at worst an orphaned temp/NPZ file for ``gc`` to
sweep.  This backend is also the read-through cache behind
:class:`~repro.store.backends.remote.RemoteBackend`, so the served store
and every client cache share one layout — ``repro store ls`` works
identically on either.
"""

from __future__ import annotations

import itertools
import os
import threading
from pathlib import Path
from typing import List, Optional, Tuple, Union

from .base import KEY_HEX_LENGTH, StoreBackend, check_key

__all__ = ["LocalBackend"]

_tmp_counter = itertools.count()


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (same-directory temp + replace).

    The temp name is unique per (process, thread, call): two threads of one
    process race on the same key when a shared read-through cache fills from
    concurrent readers, and a pid-only suffix would make them clobber each
    other's temp file mid-replace.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    unique = f"{os.getpid()}.{threading.get_ident()}.{next(_tmp_counter)}"
    tmp = path.parent / f".{path.name}.{unique}.tmp"
    try:
        tmp.write_bytes(data)
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on a failed replace
            tmp.unlink()


class LocalBackend(StoreBackend):
    """Store objects in a sharded directory tree under one root.

    Safe for concurrent writers (the process-parallel cell scheduler
    persists from worker processes, and a store service may serve the root
    while a sweep writes into it): every write is an atomic rename, and two
    writers racing on the same key write identical bytes by construction.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def __repr__(self) -> str:
        return f"LocalBackend({str(self.root)!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LocalBackend) and self.root == other.root

    def __hash__(self) -> int:
        return hash((LocalBackend, self.root))

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def location(self) -> Path:
        return self.root

    @property
    def local(self) -> "LocalBackend":
        return self

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    @property
    def objects_dir(self) -> Path:
        """Directory holding the content-addressed objects."""
        return self.root / "objects"

    @property
    def sweeps_dir(self) -> Path:
        """Directory holding the per-sweep journals."""
        return self.root / "sweeps"

    def object_paths(self, key: str) -> Tuple[Path, Path]:
        """``(npz_path, sidecar_path)`` of a key (whether or not it exists)."""
        key = check_key(key)
        shard = self.objects_dir / key[:2]
        return shard / f"{key}.npz", shard / f"{key}.json"

    def sweep_path(self, sweep_id: str) -> Path:
        """Journal path of a sweep id (whether or not it exists)."""
        return self.sweeps_dir / f"{sweep_id}.jsonl"

    # ------------------------------------------------------------------
    # objects
    # ------------------------------------------------------------------
    def read_sidecar_bytes(self, key: str) -> Optional[bytes]:
        _npz, sidecar_path = self.object_paths(key)
        try:
            return sidecar_path.read_bytes()
        except FileNotFoundError:
            return None

    def read_npz_bytes(self, key: str) -> Optional[bytes]:
        npz_path, _sidecar = self.object_paths(key)
        try:
            return npz_path.read_bytes()
        except FileNotFoundError:
            return None

    def write_object(self, key: str, npz_bytes: bytes, sidecar_bytes: bytes) -> Path:
        npz_path, sidecar_path = self.object_paths(key)
        # NPZ first, sidecar last: the sidecar commits the object.
        _atomic_write_bytes(npz_path, npz_bytes)
        _atomic_write_bytes(sidecar_path, sidecar_bytes)
        return sidecar_path

    def delete_object(self, key: str) -> None:
        npz_path, sidecar_path = self.object_paths(key)
        # Sidecar first: the object is uncommitted from the moment the
        # marker disappears.
        sidecar_path.unlink(missing_ok=True)
        npz_path.unlink(missing_ok=True)

    def list_keys(self) -> List[str]:
        if not self.objects_dir.is_dir():
            return []
        return sorted(
            path.stem
            for path in self.objects_dir.glob("??/*.json")
            if len(path.stem) == KEY_HEX_LENGTH
        )

    def object_size(self, key: str) -> Optional[int]:
        npz_path, _sidecar = self.object_paths(key)
        try:
            return npz_path.stat().st_size
        except FileNotFoundError:
            return None

    def mark_read(self, key: str) -> None:
        """Bump the NPZ payload's mtime: the gc LRU evicts least-recently-read.

        The *sidecar* mtime is deliberately left alone — it records when the
        object was committed, which is what the default gc mode's age cutoff
        (``--keep-days``) is defined over.  Best-effort: a concurrent gc may
        have deleted the object between the read and the touch, which is
        fine (the read already succeeded).
        """
        npz_path, _sidecar = self.object_paths(key)
        try:
            os.utime(npz_path)
        except FileNotFoundError:  # pragma: no cover - raced deletion
            pass

    # ------------------------------------------------------------------
    # sweep journals
    # ------------------------------------------------------------------
    def append_sweep_line(self, sweep_id: str, line: str) -> None:
        path = self.sweep_path(sweep_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(line)

    def write_sweep_text(self, sweep_id: str, text: str) -> None:
        """Replace a journal wholesale (atomic) — the export/seed path.

        Appending is the journal's normal mode; replacement exists so that
        exporting a store into the same destination twice stays idempotent
        instead of duplicating every journal line.
        """
        _atomic_write_bytes(self.sweep_path(sweep_id), text.encode("utf-8"))

    def read_sweep_text(self, sweep_id: str) -> Optional[str]:
        try:
            return self.sweep_path(sweep_id).read_text(encoding="utf-8")
        except FileNotFoundError:
            return None

    def list_sweeps(self) -> List[str]:
        if not self.sweeps_dir.is_dir():
            return []
        return sorted(path.stem for path in self.sweeps_dir.glob("*.jsonl"))
