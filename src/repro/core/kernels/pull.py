"""The PULL kernel.

PULL is the mirror image of PUSH: in every round each *uninformed* vertex
samples a uniformly random neighbor and, if that neighbor was informed before
the round, becomes informed.  The paper studies PUSH and PUSH-PULL; PULL is
included as an additional baseline because the classic analysis (Karp et al.
2000) treats PUSH-PULL as the combination of the two directions, and having
PULL available makes the ablation benchmarks self-contained.

The kernel draws one neighbor per vertex regardless of its informed state (a
fixed draw shape keeps every trial's stream a pure function of its round
count) and simply ignores the draws of already informed vertices; message
accounting still counts only the uninformed pullers, as the sequential
implementation did.
"""

from __future__ import annotations

import numpy as np

from .vertex import VertexKernel

__all__ = ["PullKernel"]


class PullKernel(VertexKernel):
    """Batched PULL: uninformed vertices pull from uniformly random neighbors."""

    name = "pull"
    _sparse_needs_uninformed = True

    def _step_sparse(self, k):
        """Only the uninformed list draws (informed vertices' dense draws are
        ignored by the dense mask anyway); a puller whose sampled callee's
        packed bit is set learns and leaves the list."""
        start = self._raw_round_start(k, self._sparse_stream)
        for row in range(k):
            uninformed = self._uninformed_rows[row]
            # One message per uninformed puller (dense: n - counts).
            self._messages[row] += uninformed.size
            if uninformed.size == 0:
                continue
            callees = self._sparse_callees(row, start, uninformed)
            got = self._packed.test_row(row, callees)
            if got.any():
                newly = uninformed[got]
                self._packed.set_row(row, newly)
                self.counts[row] += newly.size
                self._uninformed_rows[row] = uninformed[~got]

    def step(self, k):
        self._begin_round()
        if self.frontier_resolved == "sparse":
            self._step_sparse(k)
            return
        informed = self.informed[:k]
        callees, callee_flat = self._sample_callees(k)
        ok = self._sampler.round_ok(k)
        callee_informed = self._gathered[:k]
        np.take(self._informed_flat, callee_flat, out=callee_informed, mode="clip")
        # One message per uninformed puller.
        self._messages[:k] += self.graph.num_vertices - self.counts[:k]
        # For booleans ``a > b`` is exactly ``a & ~b``: an uninformed puller
        # whose callee was informed before the round learns the rumor — if
        # the round's topology allows the call at all.
        pull_mask = np.greater(callee_informed, informed, out=self._pull_scratch[:k])
        if ok is not None:
            pull_mask &= ok
        if self._any_observers:
            self._report_edges(k, callees, pull_mask)
        informed |= pull_mask
        self.counts[:k] = informed.sum(axis=1)

    def _report_edges(self, k, callees, pull_mask):
        """Report every successful pull as a (puller, source-neighbor) edge."""
        for row in range(k):
            group = self._observer_for_row(row)
            if not group:
                continue
            pullers = np.flatnonzero(pull_mask[row])
            if pullers.size:
                group.on_edges_used(pullers, callees[row, pullers])
