"""Tests for the Section-5 coupling machinery (repro.core.coupling)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coupling import (
    CoupledPushVisitExchange,
    CoupledRunResult,
    NeighborChoices,
)
from repro.graphs import Graph, GraphError, complete_graph, hypercube, random_regular_graph


class TestNeighborChoices:
    def test_choices_are_neighbors(self, small_regular, rng):
        choices = NeighborChoices(small_regular, rng)
        for vertex in range(0, small_regular.num_vertices, 7):
            for index in range(1, 6):
                choice = choices.choice(vertex, index)
                assert small_regular.has_edge(vertex, choice)

    def test_choices_are_stable_on_repeated_access(self, small_regular, rng):
        choices = NeighborChoices(small_regular, rng)
        first = [choices.choice(3, i) for i in range(1, 10)]
        second = [choices.choice(3, i) for i in range(1, 10)]
        assert first == second

    def test_lazy_generation_tracked(self, small_regular, rng):
        choices = NeighborChoices(small_regular, rng)
        assert choices.issued(5) == 0
        choices.choice(5, 4)
        assert choices.issued(5) == 4

    def test_one_based_indexing_enforced(self, small_regular, rng):
        choices = NeighborChoices(small_regular, rng)
        with pytest.raises(ValueError):
            choices.choice(0, 0)


class TestCoupledRun:
    @pytest.fixture
    def coupled_result(self, rng) -> CoupledRunResult:
        graph = random_regular_graph(64, 8, rng)
        return CoupledPushVisitExchange().run(graph, source=0, seed=21)

    def test_both_processes_complete(self, coupled_result):
        assert coupled_result.push_broadcast_time > 0
        assert coupled_result.visitx_broadcast_time > 0

    def test_inform_rounds_cover_all_vertices(self, coupled_result):
        assert np.all(coupled_result.push_inform_round >= 0)
        assert np.all(coupled_result.visitx_inform_round >= 0)

    def test_source_informed_at_round_zero_in_both(self, coupled_result):
        assert coupled_result.push_inform_round[0] == 0
        assert coupled_result.visitx_inform_round[0] == 0
        assert coupled_result.c_counter_at_inform[0] == 0

    def test_broadcast_times_match_max_inform_round(self, coupled_result):
        assert coupled_result.push_broadcast_time == int(
            coupled_result.push_inform_round.max()
        )
        assert coupled_result.visitx_broadcast_time == int(
            coupled_result.visitx_inform_round.max()
        )

    def test_lemma13_invariant_holds(self, coupled_result):
        # tau_u <= C_u(t_u) for every vertex: the exact invariant of Lemma 13.
        assert coupled_result.lemma13_holds()
        assert coupled_result.lemma13_violations() == []

    def test_congestion_dominates_push_time(self, coupled_result):
        # max_u C_u(t_u) >= max_u tau_u = T_push (consequence of Lemma 13).
        assert coupled_result.max_congestion() >= coupled_result.push_broadcast_time

    def test_ratios_are_positive_and_finite(self, coupled_result):
        assert 0 < coupled_result.broadcast_time_ratio() < float("inf")
        assert 0 < coupled_result.congestion_ratio() < float("inf")

    def test_lemma13_holds_on_multiple_graph_families(self, rng):
        graphs = [
            hypercube(6),
            complete_graph(48),
            random_regular_graph(60, 10, rng),
        ]
        for graph in graphs:
            result = CoupledPushVisitExchange().run(graph, source=1, seed=5)
            assert result.lemma13_holds(), f"Lemma 13 violated on {graph.name}"

    def test_one_agent_per_vertex_variant(self, rng):
        graph = random_regular_graph(48, 8, rng)
        result = CoupledPushVisitExchange(one_agent_per_vertex=True).run(
            graph, source=0, seed=9
        )
        assert result.num_agents == 48
        assert result.lemma13_holds()

    def test_agent_density_respected(self, rng):
        graph = random_regular_graph(40, 8, rng)
        result = CoupledPushVisitExchange(agent_density=2.0).run(graph, source=0, seed=9)
        assert result.num_agents == 80

    def test_disconnected_graph_rejected(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(GraphError):
            CoupledPushVisitExchange().run(graph, source=0, seed=1)

    def test_source_out_of_range_rejected(self, small_complete):
        with pytest.raises(GraphError):
            CoupledPushVisitExchange().run(small_complete, source=99, seed=1)

    def test_reproducible_with_same_seed(self, rng):
        graph = random_regular_graph(40, 8, np.random.default_rng(2))
        a = CoupledPushVisitExchange().run(graph, source=0, seed=33)
        b = CoupledPushVisitExchange().run(graph, source=0, seed=33)
        assert a.push_broadcast_time == b.push_broadcast_time
        assert a.visitx_broadcast_time == b.visitx_broadcast_time
        assert np.array_equal(a.c_counter_at_inform, b.c_counter_at_inform)
