"""Tests for the experiment registry and the registered definitions."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig, GraphCase, ProtocolSpec
from repro.experiments.registry import get_experiment, list_experiment_ids, register
from repro.graphs import star
from repro.theory.predictions import PAPER_PREDICTIONS


EXPECTED_IDS = {
    "fig1a-star",
    "fig1b-double-star",
    "fig1c-heavy-tree",
    "fig1d-siamese",
    "fig1e-cycle-stars",
    "thm1-regular-random",
    "thm1-regular-slow",
    "thm1-regular-hypercube",
    "thm23-meetx-regular",
    "thm24-25-lower",
    "hybrid-double-star",
    "hybrid-heavy-tree",
    "ablation-agent-density",
    "ablation-initial-placement",
    "ablation-laziness",
    "robustness-star",
    "robustness-siamese",
    "robustness-regular",
}


class TestRegistry:
    def test_all_expected_experiments_registered(self):
        assert EXPECTED_IDS.issubset(set(list_experiment_ids()))

    def test_get_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            get_experiment("does-not-exist")

    def test_duplicate_registration_rejected(self):
        def factory():
            return ExperimentConfig(
                experiment_id="fig1a-star",
                title="dup",
                paper_reference="",
                description="",
                graph_builder=lambda n, s: GraphCase(star(n), 0, n),
                sizes=(4,),
                protocols=(ProtocolSpec("push"),),
            )

        with pytest.raises(ValueError):
            register("fig1a-star", factory)

    def test_registered_factories_produce_matching_ids(self):
        for experiment_id in list_experiment_ids():
            config = get_experiment(experiment_id)
            assert config.experiment_id == experiment_id


class TestRegisteredDefinitions:
    @pytest.mark.parametrize("experiment_id", sorted(EXPECTED_IDS))
    def test_every_experiment_builds_its_smallest_case(self, experiment_id):
        config = get_experiment(experiment_id)
        case = config.build_case(config.sizes[0], seed=0)
        assert case.graph.is_connected()
        assert 0 <= case.source < case.graph.num_vertices
        assert config.sizes == tuple(sorted(config.sizes))

    @pytest.mark.parametrize("experiment_id", sorted(EXPECTED_IDS))
    def test_round_budgets_are_positive(self, experiment_id):
        config = get_experiment(experiment_id)
        budget = config.round_budget(config.sizes[0])
        assert budget is None or budget > 0

    def test_claim_ids_reference_known_predictions(self):
        known = {p.claim_id for p in PAPER_PREDICTIONS}
        for experiment_id in list_experiment_ids():
            config = get_experiment(experiment_id)
            for claim in config.claim_ids:
                assert claim in known, f"{experiment_id} references unknown claim {claim}"

    def test_figure1_experiments_cover_all_figure1_claims(self):
        covered = set()
        for experiment_id in EXPECTED_IDS:
            if experiment_id.startswith("fig1"):
                covered.update(get_experiment(experiment_id).claim_ids)
        figure1_claims = {p.claim_id for p in PAPER_PREDICTIONS if p.claim_id.startswith("lemma")}
        assert figure1_claims.issubset(covered)

    def test_heavy_tree_experiment_uses_leaf_source(self):
        config = get_experiment("fig1c-heavy-tree")
        case = config.build_case(config.sizes[0], seed=0)
        from repro.graphs.heavy_binary_tree import tree_leaves

        assert case.source in tree_leaves(case.graph)

    def test_regular_experiments_build_regular_graphs(self):
        for experiment_id in ("thm1-regular-random", "thm1-regular-slow", "thm23-meetx-regular"):
            config = get_experiment(experiment_id)
            case = config.build_case(config.sizes[0], seed=0)
            assert case.graph.is_regular()

    def test_regular_degree_meets_log_assumption(self):
        import math

        config = get_experiment("thm1-regular-random")
        case = config.build_case(config.sizes[-1], seed=0)
        degree = case.graph.regularity_degree()
        assert degree >= math.log(case.graph.num_vertices)

    def test_robustness_experiments_sweep_failure_rates(self):
        from repro.experiments.robustness import FAILURE_RATES
        from repro.graphs.dynamic import BernoulliEdgeFailures, resolve_dynamics

        for experiment_id in ("robustness-star", "robustness-siamese", "robustness-regular"):
            config = get_experiment(experiment_id)
            rates = []
            for spec in config.protocols:
                dynamics = spec.kwargs.get("dynamics")
                if dynamics is None:
                    rates.append(0.0)
                    continue
                schedule = resolve_dynamics(dynamics)
                assert isinstance(schedule, BernoulliEdgeFailures)
                rates.append(schedule.rate)
            # Every protocol of the experiment covers the whole rate axis,
            # including the failure-free (fast-path) baseline.
            assert set(rates) == set(FAILURE_RATES)
            # The rate axis is seed-paired: every rate of one protocol
            # derives its trial seeds from the same key.
            keys = {}
            for spec in config.protocols:
                keys.setdefault(spec.name, set()).add(spec.seed_key)
            assert all(len(k) == 1 for k in keys.values())

    def test_seed_label_pairs_trials_across_specs(self):
        from repro.experiments.runner import run_trial_set
        from repro.graphs import star

        case = GraphCase(graph=star(40), source=1, size_parameter=40)
        a = run_trial_set(
            ProtocolSpec("push", label="push f=0.0", seed_label="push"),
            case,
            trials=4,
            base_seed=3,
        )
        b = run_trial_set(
            ProtocolSpec("push", label="push f=0.1", seed_label="push"),
            case,
            trials=4,
            base_seed=3,
        )
        # Different display labels, same seed key, no dynamics: the runs are
        # literally the same trials — that is what "seed-paired" means.
        assert a.broadcast_times() == b.broadcast_times()
