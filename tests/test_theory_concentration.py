"""Tests for the concentration-bound helpers (repro.theory.concentration)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.theory.concentration import (
    binomial_tail_upper,
    chernoff_lower_multiplicative,
    chernoff_upper_heavy,
    chernoff_upper_multiplicative,
    expected_geometric_sum,
    geometric_sum_tail,
)


class TestChernoffBounds:
    def test_upper_multiplicative_formula(self):
        assert chernoff_upper_multiplicative(30, 0.5) == pytest.approx(
            math.exp(-30 * 0.25 / 3)
        )

    def test_upper_multiplicative_validates_delta(self):
        with pytest.raises(ValueError):
            chernoff_upper_multiplicative(10, 1.5)
        with pytest.raises(ValueError):
            chernoff_upper_multiplicative(10, 0.0)

    def test_upper_heavy_formula(self):
        assert chernoff_upper_heavy(2.0, 6.0) == pytest.approx(2.0 ** (-12.0))

    def test_upper_heavy_requires_large_factor(self):
        with pytest.raises(ValueError):
            chernoff_upper_heavy(2.0, 2.0)

    def test_lower_multiplicative_formula(self):
        assert chernoff_lower_multiplicative(40, 0.5) == pytest.approx(
            math.exp(-40 * 0.25 / 2)
        )

    def test_bounds_capped_at_one(self):
        assert chernoff_upper_multiplicative(0.0, 0.5) == 1.0
        assert chernoff_lower_multiplicative(0.0, 0.5) == 1.0

    def test_empirical_binomial_tail_respects_upper_bound(self):
        # P[Bin(n, p) >= (1+delta) mu] must not exceed the Chernoff bound by
        # much (it is an upper bound, so empirically it should be below).
        rng = np.random.default_rng(0)
        n, p, delta = 200, 0.3, 0.5
        mean = n * p
        samples = rng.binomial(n, p, size=20000)
        empirical = np.mean(samples >= (1 + delta) * mean)
        assert empirical <= chernoff_upper_multiplicative(mean, delta) + 0.01


class TestGeometricSum:
    def test_expected_value(self):
        assert expected_geometric_sum(10, 0.5) == pytest.approx(20.0)

    def test_tail_is_one_below_twice_mean(self):
        assert geometric_sum_tail(10, 0.5, threshold=30) == 1.0

    def test_tail_formula_above_twice_mean(self):
        assert geometric_sum_tail(10, 0.5, threshold=50) == pytest.approx(
            math.exp(-50 * 0.5 / 8)
        )

    def test_tail_bound_holds_empirically(self):
        rng = np.random.default_rng(1)
        count, p = 5, 0.4
        threshold = 2.5 * expected_geometric_sum(count, p)
        samples = rng.geometric(p, size=(20000, count)).sum(axis=1)
        empirical = np.mean(samples >= threshold)
        assert empirical <= geometric_sum_tail(count, p, threshold) + 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_geometric_sum(-1, 0.5)
        with pytest.raises(ValueError):
            expected_geometric_sum(3, 0.0)
        with pytest.raises(ValueError):
            geometric_sum_tail(3, 1.5, 10)


class TestBinomialTail:
    def test_zero_mean(self):
        assert binomial_tail_upper(10, 0.0, 1) == 0.0

    def test_threshold_zero_gives_one(self):
        assert binomial_tail_upper(10, 0.5, 0) == 1.0

    def test_formula(self):
        assert binomial_tail_upper(100, 0.01, 5) == pytest.approx(
            (math.e * 1.0 / 5) ** 5
        )

    def test_monotone_decreasing_in_threshold(self):
        values = [binomial_tail_upper(100, 0.02, k) for k in range(3, 12)]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_empirical_tail_respects_bound(self):
        rng = np.random.default_rng(2)
        n, p, k = 64, 1 / 16, 8
        samples = rng.binomial(n, p, size=20000)
        empirical = np.mean(samples >= k)
        assert empirical <= binomial_tail_upper(n, p, k) + 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            binomial_tail_upper(-1, 0.5, 2)
        with pytest.raises(ValueError):
            binomial_tail_upper(10, 2.0, 2)
