"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli.main import build_parser, main


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_parses_options(self):
        args = build_parser().parse_args(
            ["run", "fig1a-star", "--seed", "3", "--trials", "2", "--scale", "0.5"]
        )
        assert args.experiment_id == "fig1a-star"
        assert args.seed == 3
        assert args.trials == 2
        assert args.scale == 0.5

    def test_simulate_command_parses(self):
        args = build_parser().parse_args(
            ["simulate", "push", "star", "100", "--source", "2"]
        )
        assert args.protocol == "push"
        assert args.family == "star"
        assert args.size == 100

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_store_flags_parse(self):
        args = build_parser().parse_args(
            ["run", "fig1a-star", "--store", "/tmp/s", "--force"]
        )
        assert args.store == "/tmp/s"
        assert args.force
        bare = build_parser().parse_args(["run", "fig1a-star", "--store"])
        assert bare.store == ""
        off = build_parser().parse_args(["run", "fig1a-star", "--no-store"])
        assert off.no_store

    def test_store_subcommand_parses(self):
        args = build_parser().parse_args(["store", "--store", "/tmp/s", "ls"])
        assert args.command == "store"
        assert args.store_command == "ls"
        assert args.store_path == "/tmp/s"
        gc = build_parser().parse_args(["store", "gc", "--keep-days", "2", "--dry-run"])
        assert gc.keep_days == 2.0
        assert gc.dry_run
        assert gc.max_bytes is None

    def test_store_serve_and_url_flags_parse(self):
        args = build_parser().parse_args(
            ["store", "--store", "http://hub:8080", "serve", "--host", "0.0.0.0", "--port", "9999"]
        )
        assert args.store_command == "serve"
        assert args.store_path == "http://hub:8080"
        assert (args.host, args.port) == ("0.0.0.0", 9999)
        gc = build_parser().parse_args(["store", "gc", "--max-bytes", "500M"])
        assert gc.max_bytes == 500 * 1024**2

    def test_parse_byte_size(self):
        from repro.cli.main import parse_byte_size

        assert parse_byte_size("1234") == 1234
        assert parse_byte_size("4K") == 4096
        assert parse_byte_size("1.5m") == int(1.5 * 1024**2)
        assert parse_byte_size("2G") == 2 * 1024**3
        with pytest.raises(Exception):
            parse_byte_size("lots")
        with pytest.raises(Exception):
            parse_byte_size("-1")
        with pytest.raises(Exception):
            parse_byte_size("inf")  # OverflowError must not escape argparse

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "gossip-9000", "star", "10"])


class TestCommands:
    def test_list_outputs_experiment_ids(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig1a-star" in output
        assert "thm1-regular-random" in output

    def test_simulate_star(self, capsys):
        assert main(["simulate", "push-pull", "star", "30", "--source", "1"]) == 0
        output = capsys.readouterr().out
        assert "broadcast time" in output

    def test_simulate_visit_exchange_reports_agents(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "visit-exchange",
                    "double-star",
                    "40",
                    "--source",
                    "2",
                    "--agent-density",
                    "2.0",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "agents = 80" in output

    def test_simulate_every_family_builds(self, capsys):
        families_and_sizes = [
            ("star", "20"),
            ("double-star", "20"),
            ("heavy-binary-tree", "15"),
            ("siamese-heavy-tree", "15"),
            ("cycle-stars-cliques", "3"),
            ("complete", "12"),
            ("hypercube", "4"),
            ("random-regular", "16"),
        ]
        for family, size in families_and_sizes:
            assert main(["simulate", "push-pull", family, size]) == 0

    def test_run_scaled_experiment(self, capsys):
        assert (
            main(["run", "fig1a-star", "--scale", "0.1", "--trials", "1"]) == 0
        )
        output = capsys.readouterr().out
        assert "Star graph" in output

    def test_run_with_store_then_store_ls_and_info(self, capsys, tmp_path):
        store_path = str(tmp_path / "store")
        run_args = [
            "run", "fig1a-star", "--scale", "0.1", "--trials", "1",
            "--store", store_path,
        ]
        assert main(run_args) == 0
        first = capsys.readouterr().out
        assert main(run_args) == 0  # warm rerun: pure cache hits
        second = capsys.readouterr().out
        assert first == second

        assert main(["store", "--store", store_path, "ls"]) == 0
        listing = capsys.readouterr().out
        assert "push-pull" in listing

        key_prefix = listing.splitlines()[3].split()[0]
        assert main(["store", "--store", store_path, "info", key_prefix]) == 0
        info = capsys.readouterr().out
        assert '"fingerprint"' in info

    def test_store_gc_and_export_commands(self, capsys, tmp_path):
        store_path = str(tmp_path / "store")
        assert main([
            "run", "fig1a-star", "--scale", "0.1", "--trials", "1",
            "--store", store_path,
        ]) == 0
        capsys.readouterr()
        destination = str(tmp_path / "copy")
        assert main(["store", "--store", store_path, "export", destination]) == 0
        assert "exported" in capsys.readouterr().out
        assert main(["store", "--store", destination, "gc", "--all"]) == 0
        assert "deleted" in capsys.readouterr().out

    def test_store_gc_max_bytes_command(self, capsys, tmp_path):
        store_path = str(tmp_path / "store")
        assert main([
            "run", "fig1a-star", "--scale", "0.1", "--trials", "1",
            "--store", store_path,
        ]) == 0
        capsys.readouterr()
        # The sweep's cells are journal-referenced, so the LRU budget keeps
        # them pinned even at a zero-byte budget.
        assert main(["store", "--store", store_path, "gc", "--max-bytes", "0"]) == 0
        assert "deleted 0 object(s)" in capsys.readouterr().out
        assert main([
            "store", "--store", store_path, "gc", "--max-bytes", "0", "--all",
        ]) == 0
        out = capsys.readouterr().out
        assert "deleted" in out and "deleted 0" not in out

    def test_store_serve_rejects_url_roots(self, capsys):
        assert main(["store", "--store", "http://127.0.0.1:1", "serve"]) == 2
        assert "local store root" in capsys.readouterr().err

    def test_store_info_unknown_key_fails(self, capsys, tmp_path):
        assert main(["store", "--store", str(tmp_path / "s"), "info", "feed"]) == 1

    def test_report_from_store_conflicts_with_no_store(self, capsys):
        assert main(["report", "--from-store", "--no-store"]) == 2
        assert "--no-store" in capsys.readouterr().err

    def test_run_markdown_mode(self, capsys):
        assert (
            main(
                ["run", "fig1b-double-star", "--scale", "0.1", "--trials", "1", "--markdown"]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert output.startswith("### `fig1b-double-star`")

    def test_run_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "unknown-experiment"])
