"""Tests of the Figure 1 graph family generators."""

from __future__ import annotations

import pytest

from repro.graphs import GraphError, cycle_of_stars_of_cliques, double_star, heavy_binary_tree, siamese_heavy_binary_tree, star
from repro.graphs.cycle_stars_cliques import cycle_stars_layout, parameter_for_target_size
from repro.graphs.double_star import CENTER_A, CENTER_B, leaves_of
from repro.graphs.heavy_binary_tree import (
    complete_binary_tree_edges,
    internal_vertices,
    leaf_volume_fraction,
    tree_leaves,
)
from repro.graphs.siamese_tree import left_leaves, right_leaves
from repro.graphs.star import CENTER, leaf_vertices


class TestStar:
    def test_vertex_and_edge_counts(self):
        graph = star(50)
        assert graph.num_vertices == 51
        assert graph.num_edges == 50

    def test_center_degree(self):
        graph = star(50)
        assert graph.degree(CENTER) == 50

    def test_leaf_degrees(self):
        graph = star(50)
        for leaf in leaf_vertices(graph):
            assert graph.degree(leaf) == 1

    def test_connected_and_bipartite(self):
        graph = star(10)
        assert graph.is_connected()
        assert graph.is_bipartite()

    def test_rejects_zero_leaves(self):
        with pytest.raises(GraphError):
            star(0)


class TestDoubleStar:
    def test_vertex_count(self):
        graph = double_star(100)
        assert graph.num_vertices == 100

    def test_bridge_edge_exists(self):
        graph = double_star(100)
        assert graph.has_edge(CENTER_A, CENTER_B)

    def test_centers_have_balanced_leaf_counts(self):
        graph = double_star(100)
        leaves_a = leaves_of(graph, CENTER_A)
        leaves_b = leaves_of(graph, CENTER_B)
        assert len(leaves_a) + len(leaves_b) == 98
        assert abs(len(leaves_a) - len(leaves_b)) <= 1

    def test_leaves_have_degree_one(self):
        graph = double_star(60)
        for vertex in range(2, 60):
            assert graph.degree(vertex) == 1

    def test_odd_vertex_count_supported(self):
        graph = double_star(101)
        assert graph.num_vertices == 101
        assert graph.is_connected()

    def test_leaves_of_rejects_non_center(self):
        graph = double_star(20)
        with pytest.raises(GraphError):
            leaves_of(graph, 5)

    def test_rejects_too_small(self):
        with pytest.raises(GraphError):
            double_star(3)

    def test_connected_and_bipartite(self):
        graph = double_star(64)
        assert graph.is_connected()
        assert graph.is_bipartite()


class TestHeavyBinaryTree:
    def test_complete_binary_tree_edges_count(self):
        assert len(complete_binary_tree_edges(15)) == 14

    def test_vertex_count_preserved(self):
        graph = heavy_binary_tree(31)
        assert graph.num_vertices == 31

    def test_leaves_induce_a_clique(self):
        graph = heavy_binary_tree(31)
        leaves = tree_leaves(graph)
        assert len(leaves) == 16  # ceil(31 / 2)
        for i, u in enumerate(leaves):
            for v in leaves[i + 1 :]:
                assert graph.has_edge(u, v)

    def test_internal_vertices_disjoint_from_leaves(self):
        graph = heavy_binary_tree(31)
        assert set(internal_vertices(graph)).isdisjoint(tree_leaves(graph))
        assert len(internal_vertices(graph)) + len(tree_leaves(graph)) == 31

    def test_root_degree_is_two(self):
        graph = heavy_binary_tree(31)
        assert graph.degree(0) == 2

    def test_leaf_volume_dominates(self):
        graph = heavy_binary_tree(255)
        assert leaf_volume_fraction(graph) > 0.95

    def test_connected(self):
        graph = heavy_binary_tree(63)
        assert graph.is_connected()

    def test_rejects_too_small(self):
        with pytest.raises(GraphError):
            heavy_binary_tree(2)


class TestSiameseTree:
    def test_vertex_count_merges_roots(self):
        graph = siamese_heavy_binary_tree(31)
        assert graph.num_vertices == 61

    def test_root_connects_both_copies(self):
        graph = siamese_heavy_binary_tree(31)
        # Root has two children in each copy.
        assert graph.degree(0) == 4

    def test_left_and_right_leaf_cliques(self):
        graph = siamese_heavy_binary_tree(31)
        left = left_leaves(graph)
        right = right_leaves(graph)
        assert len(left) == len(right) == 16
        assert set(left).isdisjoint(right)
        for leaves in (left, right):
            for i, u in enumerate(leaves):
                for v in leaves[i + 1 :]:
                    assert graph.has_edge(u, v)

    def test_no_edges_between_left_and_right_leaves(self):
        graph = siamese_heavy_binary_tree(15)
        for u in left_leaves(graph):
            for v in right_leaves(graph):
                assert not graph.has_edge(u, v)

    def test_connected(self):
        graph = siamese_heavy_binary_tree(31)
        assert graph.is_connected()

    def test_rejects_too_small(self):
        with pytest.raises(GraphError):
            siamese_heavy_binary_tree(2)


class TestCycleStarsCliques:
    def test_total_vertex_count(self):
        graph, layout = cycle_of_stars_of_cliques(4)
        assert graph.num_vertices == 4 + 16 + 64
        assert layout.num_vertices == graph.num_vertices

    def test_ring_vertex_degrees(self):
        graph, layout = cycle_of_stars_of_cliques(5)
        for ring_vertex in layout.ring:
            assert graph.degree(ring_vertex) == 5 + 2  # k leaves + 2 ring edges

    def test_star_leaf_degrees(self):
        graph, layout = cycle_of_stars_of_cliques(5)
        for i in range(5):
            for j in range(5):
                assert graph.degree(layout.star_leaves[i][j]) == 5 + 1

    def test_clique_member_degrees(self):
        graph, layout = cycle_of_stars_of_cliques(5)
        member = layout.clique_members[2][3][0]
        assert graph.degree(member) == 5  # k-1 clique members + the star leaf

    def test_cliques_are_cliques(self):
        graph, layout = cycle_of_stars_of_cliques(4)
        clique = layout.clique_of(1, 2)
        assert len(clique) == 5
        for i, u in enumerate(clique):
            for v in clique[i + 1 :]:
                assert graph.has_edge(u, v)

    def test_ring_is_a_cycle(self):
        graph, layout = cycle_of_stars_of_cliques(6)
        k = 6
        for i in range(k):
            assert graph.has_edge(layout.ring[i], layout.ring[(i + 1) % k])

    def test_connected_and_nearly_regular(self):
        graph, _layout = cycle_of_stars_of_cliques(5)
        assert graph.is_connected()
        degrees = graph.degrees
        assert degrees.max() - degrees.min() <= 2

    def test_layout_function_standalone(self):
        layout = cycle_stars_layout(3)
        assert layout.k == 3
        assert len(layout.ring) == 3
        assert len(layout.star_leaves) == 3

    def test_rejects_small_k(self):
        with pytest.raises(GraphError):
            cycle_of_stars_of_cliques(2)

    def test_parameter_for_target_size(self):
        assert parameter_for_target_size(39) == 3
        k = parameter_for_target_size(1000)
        size = k + k**2 + k**3
        assert abs(size - 1000) <= abs((k + 1) + (k + 1) ** 2 + (k + 1) ** 3 - 1000)

    def test_parameter_for_target_size_rejects_tiny(self):
        with pytest.raises(GraphError):
            parameter_for_target_size(10)
