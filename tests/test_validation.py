"""Tests for graph structural validation helpers."""

from __future__ import annotations


import pytest

from repro.graphs import (
    GraphError,
    complete_graph,
    cycle_graph,
    degree_histogram,
    double_star,
    hypercube,
    inspect_graph,
    require_connected,
    require_degree_at_least_log,
    require_regular,
    star,
)
from repro.graphs.graph import Graph


class TestInspectGraph:
    def test_star_report(self):
        report = inspect_graph(star(20))
        assert report.num_vertices == 21
        assert report.num_edges == 20
        assert report.min_degree == 1
        assert report.max_degree == 20
        assert report.is_connected
        assert not report.is_regular
        assert report.is_bipartite
        assert not report.meets_log_degree

    def test_complete_graph_report(self):
        report = inspect_graph(complete_graph(16))
        assert report.is_regular
        assert report.meets_log_degree
        assert not report.is_bipartite

    def test_describe_contains_name_and_counts(self):
        report = inspect_graph(hypercube(4))
        text = report.describe()
        assert "hypercube" in text
        assert "n=16" in text
        assert "4-regular" in text

    def test_mean_degree(self):
        report = inspect_graph(cycle_graph(10))
        assert report.mean_degree == pytest.approx(2.0)


class TestRequireHelpers:
    def test_require_connected_passes_and_fails(self):
        assert require_connected(star(5)) is not None
        with pytest.raises(GraphError):
            require_connected(Graph(4, [(0, 1), (2, 3)]))

    def test_require_regular(self):
        assert require_regular(hypercube(3)) == 3
        with pytest.raises(GraphError):
            require_regular(double_star(10))

    def test_require_degree_at_least_log(self):
        # Complete graph on 32 vertices: degree 31 >> ln 32.
        require_degree_at_least_log(complete_graph(32))
        with pytest.raises(GraphError):
            require_degree_at_least_log(cycle_graph(64))

    def test_require_degree_with_factor(self):
        graph = hypercube(5)  # degree 5, n = 32, ln n ~ 3.46
        require_degree_at_least_log(graph, factor=1.0)
        with pytest.raises(GraphError):
            require_degree_at_least_log(graph, factor=2.0)


class TestDegreeHistogram:
    def test_star_histogram(self):
        hist = degree_histogram(star(10))
        assert hist[1] == 10
        assert hist[10] == 1

    def test_histogram_sums_to_vertex_count(self):
        graph = double_star(30)
        assert sum(degree_histogram(graph)) == 30
