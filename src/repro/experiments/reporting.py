"""Report generation: turn experiment results into Markdown/terminal output.

The EXPERIMENTS.md of this repository is (re)generated from the structures in
this module: every sweep experiment contributes a table of mean broadcast
times plus the fitted growth exponents, and the coupling and fairness
experiments contribute their dedicated tables.
"""

from __future__ import annotations

import hashlib
import html as _html
from typing import Any, Dict, List, Optional, Sequence

from ..analysis.statistics import summarize_trials
from ..analysis.tables import format_float, format_markdown_table, format_table
from ..store import (
    SweepJournal,
    cell_key,
    resolve_store,
    resolve_sweep_plans,
    sweep_payload,
)
from ..theory.predictions import PAPER_PREDICTIONS, Prediction
from .config import ExperimentConfig, scaled_sizes
from .coupling_experiment import CouplingExperimentResult, coupling_cell
from .fairness_experiment import FairnessExperimentResult, fairness_cell
from .runner import CellResult, ExperimentResult

__all__ = [
    "experiment_table",
    "experiment_markdown_section",
    "coupling_markdown_section",
    "fairness_markdown_section",
    "claims_for_experiment",
    "result_from_store",
    "experiment_markdown_section_from_store",
    "coupling_result_from_store",
    "fairness_result_from_store",
    "report_section_ids",
    "store_report_payload",
    "report_fingerprint",
    "render_report_html",
]

#: Non-sweep report sections served alongside the registry experiments.
REPORT_EXTRA_SECTIONS = ("coupling", "fairness")


def report_section_ids() -> List[str]:
    """Every report section id: registry experiments plus coupling/fairness."""
    from .registry import list_experiment_ids

    return list_experiment_ids() + list(REPORT_EXTRA_SECTIONS)


def claims_for_experiment(result: ExperimentResult) -> List[Prediction]:
    """The paper predictions attached to an experiment configuration."""
    wanted = set(result.config.claim_ids)
    return [p for p in PAPER_PREDICTIONS if p.claim_id in wanted]


def _pivot_rows(result: ExperimentResult) -> List[List[object]]:
    """One row per sweep size, one column per protocol (mean broadcast time)."""
    labels = result.protocol_labels()
    sizes = sorted({cell.size_parameter for cell in result.cells})
    rows: List[List[object]] = []
    for size in sizes:
        cells = {c.protocol_label: c for c in result.cells if c.size_parameter == size}
        any_cell = next(iter(cells.values()))
        row: List[object] = [size, any_cell.num_vertices]
        for label in labels:
            cell = cells.get(label)
            if cell is None or cell.mean_time is None:
                row.append(None)
            else:
                row.append(cell.mean_time)
        rows.append(row)
    return rows


def experiment_table(result: ExperimentResult, *, markdown: bool = False) -> str:
    """Render the size-by-protocol mean broadcast-time table."""
    labels = result.protocol_labels()
    headers = ["size", "n"] + [f"mean T ({label})" for label in labels]
    rows = _pivot_rows(result)
    if markdown:
        return format_markdown_table(headers, rows)
    return format_table(headers, rows, title=result.config.title)


def _growth_lines(result: ExperimentResult) -> List[str]:
    """Per-protocol growth-exponent and best-fit summaries."""
    lines = []
    for label in result.protocol_labels():
        exponent = result.growth_exponent(label)
        fit = result.best_fit(
            label,
            candidates=["1", "log n", "n", "n log n", "n^(2/3)", "n^(2/3) log n"],
        )
        if exponent is None or fit is None:
            lines.append(f"* `{label}`: insufficient completed data for a growth fit")
            continue
        lines.append(
            f"* `{label}`: measured power-law exponent "
            f"{format_float(exponent)} ; best-fitting model `{fit.growth}` "
            f"(relative RMSE {format_float(fit.relative_rmse)})"
        )
    return lines


def experiment_markdown_section(result: ExperimentResult) -> str:
    """Full Markdown section for one sweep experiment."""
    config = result.config
    lines = [
        f"### `{config.experiment_id}` — {config.title}",
        "",
        f"*Paper reference*: {config.paper_reference}.",
        "",
        config.description,
        "",
    ]
    claims = claims_for_experiment(result)
    if claims:
        lines.append("Paper claims checked:")
        lines.extend(f"* {claim.describe()}" for claim in claims)
        lines.append("")
    lines.append(experiment_table(result, markdown=True))
    lines.append("")
    lines.append("Measured growth:")
    lines.extend(_growth_lines(result))
    if config.notes:
        lines.extend(["", f"Notes: {config.notes}"])
    lines.append("")
    return "\n".join(lines)


def result_from_store(
    config: ExperimentConfig,
    store,
    *,
    base_seed: int = 0,
    sizes: Optional[Sequence[int]] = None,
    trials: Optional[int] = None,
    backend: str = "auto",
    dynamics=None,
    strict: bool = True,
) -> ExperimentResult:
    """Assemble an :class:`ExperimentResult` purely from cached cells.

    Derives the same cell plans :func:`~repro.experiments.runner.run_experiment`
    would execute (building graphs is cheap; only the simulations are
    expensive) and fetches each plan's trial set from the store — zero
    simulation work, so figures and tables regenerate from a warm store in
    milliseconds.  ``store`` accepts anything
    :func:`~repro.store.resolve_store` does, including a ``repro store
    serve`` URL — dashboards and notebooks can pull cached cells without a
    filesystem mount.  With ``strict=True`` (default) a missing cell raises
    ``KeyError`` naming every absent plan; with ``strict=False`` missing
    cells are skipped, yielding a partial (but honest) result.
    """
    store_obj = resolve_store(store)
    if store_obj is None:
        raise ValueError("result_from_store needs an enabled result store")
    result = ExperimentResult(config=config, base_seed=base_seed)
    missing: List[str] = []
    for sp in _store_sweep_plans(
        config,
        store_obj,
        base_seed=base_seed,
        sizes=sizes,
        trials=trials,
        backend=backend,
        dynamics=dynamics,
    ):
        trial_set = store_obj.get_trial_set(sp.plan.key)
        if trial_set is None:
            missing.append(
                f"{config.experiment_id} size={sp.size_parameter} "
                f"protocol={sp.protocol_label} key={sp.plan.key[:16]}"
            )
            continue
        result.cells.append(
            CellResult(
                experiment_id=config.experiment_id,
                size_parameter=sp.size_parameter,
                num_vertices=int(sp.plan.graph.num_vertices),
                protocol_label=sp.protocol_label,
                protocol_name=sp.spec.name,
                trials=trial_set,
                summary=summarize_trials(trial_set),
            )
        )
    if missing and strict:
        raise KeyError(
            "result store is missing "
            f"{len(missing)} cell(s); run the sweep with --store first:\n  "
            + "\n  ".join(missing)
        )
    return result


def _store_sweep_plans(
    config: ExperimentConfig,
    store_obj,
    *,
    base_seed: int,
    sizes: Optional[Sequence[int]] = None,
    trials: Optional[int] = None,
    backend: str = "auto",
    dynamics=None,
):
    """Resolve a sweep's cell plans against a store's journaled manifest.

    The manifest of the sweep's own journal (when one exists and its builder
    specs still match) lets the plans resolve from trusted fingerprints,
    so a warm report derives every key without constructing a single graph.
    """
    sweep = tuple(sizes) if sizes is not None else config.sizes
    num_trials = int(trials) if trials is not None else config.trials
    journal = SweepJournal(
        store_obj,
        sweep_payload(
            config,
            base_seed=base_seed,
            sizes=sweep,
            trials=num_trials,
            backend=backend,
            dynamics=dynamics,
        ),
    )
    manifest_event = journal.last_manifest()
    manifest = manifest_event.get("cells") if manifest_event is not None else None
    return resolve_sweep_plans(
        config,
        base_seed=base_seed,
        sizes=sweep,
        trials=num_trials,
        backend=backend,
        dynamics=dynamics,
        manifest=manifest,
    )


def experiment_markdown_section_from_store(
    config: ExperimentConfig, store, **kwargs
) -> str:
    """Markdown section for one experiment, read straight from the store."""
    return experiment_markdown_section(result_from_store(config, store, **kwargs))


def coupling_result_from_store(
    store, *, base_seed: int = 0, **cell_kwargs
) -> CouplingExperimentResult:
    """Load the coupling experiment's cached document cell — zero simulation.

    Raises ``KeyError`` naming the absent document when the store has no
    cached run for these parameters (mirroring :func:`result_from_store`).
    """
    store_obj = resolve_store(store)
    if store_obj is None:
        raise ValueError("coupling_result_from_store needs an enabled result store")
    cell = coupling_cell(base_seed=base_seed, **cell_kwargs)
    key = cell_key(cell)
    document = store_obj.get_document(key, kind="coupling")
    if document is None:
        raise KeyError(
            "result store is missing the coupling document cell; run "
            f"`repro coupling --store` first:\n  coupling key={key[:16]}"
        )
    return CouplingExperimentResult.from_dict(document)


def fairness_result_from_store(
    store, *, base_seed: int = 0, **cell_kwargs
) -> FairnessExperimentResult:
    """Load the fairness experiment's cached document cell — zero simulation.

    Raises ``KeyError`` naming the absent document when the store has no
    cached run for these parameters (mirroring :func:`result_from_store`).
    """
    store_obj = resolve_store(store)
    if store_obj is None:
        raise ValueError("fairness_result_from_store needs an enabled result store")
    cell = fairness_cell(base_seed=base_seed, **cell_kwargs)
    key = cell_key(cell)
    document = store_obj.get_document(key, kind="fairness")
    if document is None:
        raise KeyError(
            "result store is missing the fairness document cell; run "
            f"`repro fairness --store` first:\n  fairness key={key[:16]}"
        )
    return FairnessExperimentResult.from_dict(document)


def coupling_markdown_section(result: CouplingExperimentResult) -> str:
    """Markdown section for the coupling/congestion experiment."""
    rows = result.table_rows()
    headers = list(rows[0].keys()) if rows else []
    lines = [
        "### `coupling-congestion` — The Section-5 coupling, Lemmas 13/14",
        "",
        "Coupled push / visit-exchange runs on random regular graphs. Lemma 13 "
        "(`tau_u <= C_u(t_u)`) is checked exactly on every vertex of every run; "
        "the congestion ratio `max_u C_u(t_u) / T_visitx` is the quantity "
        "Theorem 10 bounds by a constant.",
        "",
    ]
    if rows:
        lines.append(format_markdown_table(headers, [[row[h] for h in headers] for row in rows]))
    lines.append("")
    lines.append(
        f"Lemma 13 held in all runs: **{'yes' if result.lemma13_always_holds() else 'NO'}**; "
        f"largest congestion ratio observed: {format_float(result.max_congestion_ratio())}."
    )
    lines.append("")
    return "\n".join(lines)


def _json_value(value: Any) -> Any:
    """Coerce a table cell to a plain JSON scalar (numpy types included)."""
    if value is None or isinstance(value, (str, bool)):
        return value
    if isinstance(value, int):
        return int(value)
    try:
        as_float = float(value)
    except (TypeError, ValueError):
        return str(value)
    return int(as_float) if as_float.is_integer() else as_float


def _report_plan_keys(
    section: str,
    store_obj,
    *,
    base_seed: int,
    trials: Optional[int],
    scale: float,
    backend: str,
    dynamics=None,
) -> List[str]:
    """Every store key a report section reads, derived without simulating."""
    if section == "coupling":
        return [cell_key(coupling_cell(base_seed=base_seed))]
    if section == "fairness":
        return [cell_key(fairness_cell(base_seed=base_seed))]
    from .registry import get_experiment

    config = get_experiment(section)
    sizes = scaled_sizes(config.sizes, scale) if scale != 1.0 else None
    return [
        sp.plan.key
        for sp in _store_sweep_plans(
            config,
            store_obj,
            base_seed=base_seed,
            sizes=sizes,
            trials=trials,
            backend=backend,
            dynamics=dynamics,
        )
    ]


def report_fingerprint(
    store,
    *,
    sections: Optional[Sequence[str]] = None,
    base_seed: int = 0,
    trials: Optional[int] = None,
    scale: float = 1.0,
    backend: str = "auto",
    dynamics=None,
) -> str:
    """Fingerprint of the cell set underlying a report.

    Hashes, per section, every cell key the report would read together with
    the stored object's size (or an absence marker).  Objects are immutable
    and content-addressed, so presence plus size pins the report's inputs
    exactly: the fingerprint changes iff a cell the report reads appears,
    disappears, or is replaced.  Computing it performs no simulation and —
    on a warm manifest — no graph construction, so it is cheap enough to
    serve as an HTTP ETag validator.
    """
    store_obj = resolve_store(store)
    if store_obj is None:
        raise ValueError("report_fingerprint needs an enabled result store")
    wanted = list(sections) if sections is not None else report_section_ids()
    digest = hashlib.sha256()
    digest.update(b"repro-report-v1\0")
    for section in wanted:
        for key in _report_plan_keys(
            section,
            store_obj,
            base_seed=base_seed,
            trials=trials,
            scale=scale,
            backend=backend,
            dynamics=dynamics,
        ):
            size = store_obj.backend.object_size(key)
            marker = "absent" if size is None else str(int(size))
            digest.update(f"{section}:{key}:{marker}\n".encode("utf-8"))
    return digest.hexdigest()


def store_report_payload(
    store,
    *,
    sections: Optional[Sequence[str]] = None,
    base_seed: int = 0,
    trials: Optional[int] = None,
    scale: float = 1.0,
    backend: str = "auto",
    dynamics=None,
) -> Dict[str, Any]:
    """Assemble the full report as a JSON-safe payload, purely from the store.

    Each requested section resolves its cell plans (manifest-trusted, so a
    warm store needs zero graph constructions) and reads cached cells only —
    zero simulation.  Sections whose cells are absent come back with
    ``status: "missing"`` and the runner command that would fill them; the
    report never fails outright because one sweep has not run yet.
    """
    store_obj = resolve_store(store)
    if store_obj is None:
        raise ValueError("store_report_payload needs an enabled result store")
    wanted = list(sections) if sections is not None else report_section_ids()
    from .registry import get_experiment

    rendered: List[Dict[str, Any]] = []
    for section in wanted:
        entry: Dict[str, Any] = {"id": section}
        try:
            if section == "coupling":
                coupling = coupling_result_from_store(store_obj, base_seed=base_seed)
                entry["title"] = "Coupling / congestion (Lemmas 13/14)"
                entry["markdown"] = coupling_markdown_section(coupling)
                entry["rows"] = [
                    {k: _json_value(v) for k, v in row.items()}
                    for row in coupling.table_rows()
                ]
            elif section == "fairness":
                fairness = fairness_result_from_store(store_obj, base_seed=base_seed)
                entry["title"] = "Edge-usage fairness (Section 1)"
                entry["markdown"] = fairness_markdown_section(fairness)
                entry["rows"] = [
                    {k: _json_value(v) for k, v in row.items()}
                    for row in fairness.table_rows()
                ]
            else:
                config = get_experiment(section)
                sizes = scaled_sizes(config.sizes, scale) if scale != 1.0 else None
                result = result_from_store(
                    config,
                    store_obj,
                    base_seed=base_seed,
                    sizes=sizes,
                    trials=trials,
                    backend=backend,
                    dynamics=dynamics,
                    strict=True,
                )
                labels = result.protocol_labels()
                entry["title"] = config.title
                entry["markdown"] = experiment_markdown_section(result)
                entry["columns"] = ["size", "n"] + [f"mean T ({label})" for label in labels]
                entry["rows"] = [
                    [_json_value(value) for value in row] for row in _pivot_rows(result)
                ]
            entry["status"] = "complete"
        except KeyError as exc:
            entry["status"] = "missing"
            entry["detail"] = str(exc.args[0]) if exc.args else str(exc)
        rendered.append(entry)
    return {
        "report": "repro-experiment-report",
        "params": {
            "sections": wanted,
            "base_seed": int(base_seed),
            "trials": None if trials is None else int(trials),
            "scale": float(scale),
            "backend": backend,
        },
        "complete": all(entry["status"] == "complete" for entry in rendered),
        "sections": rendered,
        "fingerprint": report_fingerprint(
            store_obj,
            sections=wanted,
            base_seed=base_seed,
            trials=trials,
            scale=scale,
            backend=backend,
            dynamics=dynamics,
        ),
    }


_REPORT_CSS = (
    "body{font-family:sans-serif;margin:2rem auto;max-width:60rem;padding:0 1rem}"
    "pre{background:#f6f8fa;padding:0.8rem;overflow-x:auto}"
    ".status{font-size:0.7em;padding:0.15em 0.5em;border-radius:0.5em;"
    "vertical-align:middle}"
    ".status-complete{background:#dcffdc}.status-missing{background:#ffe0e0}"
    "code{word-break:break-all}"
)


def render_report_html(payload: Dict[str, Any]) -> str:
    """Render a :func:`store_report_payload` dict as a standalone HTML page.

    The output is a pure function of the payload — no timestamps, request
    counters or other per-render state — so two renders of the same cell set
    are bit-identical and conditional GETs can revalidate against the
    payload fingerprint alone.
    """
    params = payload.get("params", {})
    lines = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        "<title>repro experiment report</title>",
        f"<style>{_REPORT_CSS}</style>",
        "</head><body>",
        "<h1>Experiment report</h1>",
        "<p>Served from the result store: cached cells only, zero simulation.</p>",
        "<p>"
        + _html.escape(
            f"base_seed={params.get('base_seed')} trials={params.get('trials')} "
            f"scale={params.get('scale')} backend={params.get('backend')}"
        )
        + "</p>",
    ]
    for section in payload.get("sections", []):
        section_id = str(section.get("id", ""))
        status = str(section.get("status", "missing"))
        title = str(section.get("title") or section_id)
        lines.append(f'<section id="{_html.escape(section_id, quote=True)}">')
        lines.append(
            f"<h2>{_html.escape(title)} "
            f'<span class="status status-{_html.escape(status, quote=True)}">'
            f"{_html.escape(status)}</span></h2>"
        )
        markdown = section.get("markdown")
        if markdown:
            lines.append(f"<pre>{_html.escape(str(markdown))}</pre>")
        detail = section.get("detail")
        if detail:
            lines.append(f"<pre>{_html.escape(str(detail))}</pre>")
        lines.append("</section>")
    fingerprint = payload.get("fingerprint", "")
    lines.append(f"<p>cell-set fingerprint <code>{_html.escape(str(fingerprint))}</code></p>")
    lines.append("</body></html>")
    return "\n".join(lines) + "\n"


def fairness_markdown_section(result: FairnessExperimentResult) -> str:
    """Markdown section for the edge-usage fairness experiment."""
    rows = result.table_rows()
    headers = list(rows[0].keys()) if rows else []
    lines = [
        "### `fairness` — Local fairness of bandwidth use (Section 1)",
        "",
        "Per-edge usage distributions: all traversals of a stationary agent "
        "population versus all sampled push-pull exchanges. The agent "
        "distribution is near-uniform on every graph (small Gini coefficient), "
        "while push-pull starves the bridge edge of the double star — the "
        "paper's local-fairness argument made quantitative.",
        "",
    ]
    if rows:
        lines.append(format_markdown_table(headers, [[row[h] for h in headers] for row in rows]))
    lines.append("")
    return "\n".join(lines)
