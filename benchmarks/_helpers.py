"""Shared helpers for the benchmark harness (imported by the bench modules)."""

from __future__ import annotations

import numpy as np

from repro import simulate

__all__ = ["mean_broadcast_time"]


def mean_broadcast_time(protocol, graph, source, trials=3, **kwargs):
    """Mean broadcast time over a few completed runs (asserts completion)."""
    times = []
    for seed in range(trials):
        result = simulate(protocol, graph, source=source, seed=seed, **kwargs)
        assert result.completed, f"{protocol} did not complete on {graph.name}"
        times.append(result.broadcast_time)
    return float(np.mean(times))
