"""Tests for the content-addressed result store (repro.store).

The store's contract is exactness: a cache hit must be bit-identical to a
recompute, an interrupted sweep must resume where it stopped, and a corrupt
artifact must fail loudly.  Every test here runs against a temp-dir store and
pins those three properties.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig, GraphCase, ProtocolSpec
from repro.experiments.registry import get_experiment
from repro.experiments.reporting import result_from_store
from repro.experiments.runner import run_experiment, run_trial_set
from repro.graphs import complete_graph, star
from repro.store import (
    ResultStore,
    StoreCorruptionError,
    SweepJournal,
    canonical_json,
    graph_fingerprint,
    resolve_cell,
    resolve_store,
    sweep_payload,
    trial_cell_payload,
)


def star_case(size=30):
    return GraphCase(graph=star(size), source=0, size_parameter=size)


def complete_builder(size, seed):
    return GraphCase(graph=complete_graph(size), source=0, size_parameter=size)


TOY_CONFIG = ExperimentConfig(
    experiment_id="toy-store",
    title="Toy store experiment",
    paper_reference="none",
    description="fast experiment used by the store tests",
    graph_builder=complete_builder,
    sizes=(8, 16),
    protocols=(ProtocolSpec("push"), ProtocolSpec("pull")),
    trials=3,
)


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


def count_batches(monkeypatch):
    """Patch the runner's kernel dispatch to count cell executions."""
    import repro.experiments.runner as runner_module

    calls = {"n": 0}
    real_run_batch = runner_module.run_batch

    def counting_run_batch(*args, **kwargs):
        calls["n"] += 1
        return real_run_batch(*args, **kwargs)

    monkeypatch.setattr(runner_module, "run_batch", counting_run_batch)
    return calls


class TestCanonicalJson:
    def test_dict_order_and_tuples_normalized(self):
        a = canonical_json({"b": (1, 2), "a": [3.0]})
        b = canonical_json({"a": [3.0], "b": [1, 2]})
        assert a == b

    def test_numpy_scalars_and_arrays_unwrap(self):
        a = canonical_json({"x": np.int64(4), "y": np.float64(0.5), "z": np.arange(3)})
        b = canonical_json({"x": 4, "y": 0.5, "z": [0, 1, 2]})
        assert a == b

    def test_negative_zero_folds_to_zero(self):
        assert canonical_json(-0.0) == canonical_json(0.0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_json(float("nan"))

    def test_unhashable_type_rejected(self):
        with pytest.raises(TypeError):
            canonical_json(object())


class TestCellKeys:
    def test_key_is_stable_across_calls(self):
        case = star_case()
        plans = [
            resolve_cell(ProtocolSpec("push"), case, trials=4, base_seed=7)
            for _ in range(2)
        ]
        assert plans[0].key == plans[1].key
        assert len(plans[0].key) == 64

    @pytest.mark.parametrize(
        "override",
        [
            {"base_seed": 8},
            {"trials": 5},
            {"max_rounds": 50},
            {"record_history": True},
            {"backend": "sequential"},
            {"dynamics": {"kind": "bernoulli-edges", "rate": 0.1, "seed": 0}},
        ],
    )
    def test_key_sensitivity(self, override):
        case = star_case()
        base = dict(trials=4, base_seed=7)
        reference = resolve_cell(ProtocolSpec("push"), case, **base)
        changed = resolve_cell(ProtocolSpec("push"), case, **{**base, **override})
        assert reference.key != changed.key

    def test_graph_structure_changes_key(self):
        a = resolve_cell(ProtocolSpec("push"), star_case(30), trials=2, base_seed=0)
        b = resolve_cell(ProtocolSpec("push"), star_case(31), trials=2, base_seed=0)
        assert a.key != b.key

    def test_graph_fingerprint_independent_of_construction_order(self):
        from repro.graphs import Graph

        edges = [(0, 1), (1, 2), (2, 3)]
        a = Graph(4, edges, name="g")
        b = Graph(4, list(reversed(edges)), name="g")
        assert graph_fingerprint(a) == graph_fingerprint(b)

    def test_spec_level_dynamics_override_enters_key(self):
        case = star_case()
        schedule = {"kind": "bernoulli-edges", "rate": 0.2, "seed": 1}
        spec = ProtocolSpec("push", kwargs={"dynamics": schedule})
        pinned = resolve_cell(spec, case, trials=2, base_seed=0, dynamics=None)
        defaulted = resolve_cell(
            ProtocolSpec("push"), case, trials=2, base_seed=0, dynamics=schedule
        )
        # The spec-level schedule wins at run time, so both describe the same
        # cell and must share a key.
        assert pinned.key == defaulted.key

    def test_auto_resolves_before_hashing(self):
        case = star_case()
        auto = resolve_cell(ProtocolSpec("push"), case, trials=2, base_seed=0)
        batched = resolve_cell(
            ProtocolSpec("push"), case, trials=2, base_seed=0, backend="batched"
        )
        assert auto.key == batched.key
        assert auto.backend == "batched"

    def test_unresolved_backend_rejected_by_payload(self):
        case = star_case()
        with pytest.raises(ValueError):
            trial_cell_payload(
                graph=case.graph,
                source=0,
                protocol_name="push",
                seeds=[1, 2],
                backend="auto",
            )


class TestArtifactRoundTrip:
    def test_round_trip_is_bit_identical(self, store):
        case = star_case()
        computed = run_trial_set(
            ProtocolSpec("push"),
            case,
            trials=4,
            base_seed=3,
            record_history=True,
            store=store,
        )
        plan = resolve_cell(
            ProtocolSpec("push"), case, trials=4, base_seed=3, record_history=True
        )
        loaded = store.get_trial_set(plan.key)
        assert loaded == computed
        assert loaded.backend == computed.backend
        for a, b in zip(loaded.results, computed.results):
            assert a.informed_vertex_history == b.informed_vertex_history
            assert a.metadata == b.metadata

    def test_round_trip_with_incomplete_runs(self, store):
        case = star_case(60)
        computed = run_trial_set(
            ProtocolSpec("push"), case, trials=3, base_seed=1, max_rounds=1, store=store
        )
        plan = resolve_cell(
            ProtocolSpec("push"), case, trials=3, base_seed=1, max_rounds=1
        )
        loaded = store.get_trial_set(plan.key)
        assert loaded == computed
        assert all(r.broadcast_time is None for r in loaded.results)

    def test_round_trip_agent_protocol_metadata(self, store):
        case = complete_builder(12, 0)
        spec = ProtocolSpec("visit-exchange", kwargs={"agent_density": 2.0})
        computed = run_trial_set(
            spec, case, trials=2, base_seed=5, record_history=True, store=store
        )
        plan = resolve_cell(spec, case, trials=2, base_seed=5, record_history=True)
        loaded = store.get_trial_set(plan.key)
        assert loaded == computed
        assert loaded.results[0].num_agents == 24
        assert loaded.results[0].informed_agent_history

    def test_get_missing_key_returns_none(self, store):
        assert store.get_trial_set("0" * 64) is None

    def test_malformed_key_rejected(self, store):
        from repro.store import StoreError

        with pytest.raises(StoreError):
            store.get_trial_set("not-a-key")


class TestIntegrity:
    def _one_key(self, store):
        run_trial_set(ProtocolSpec("push"), star_case(), trials=2, base_seed=0, store=store)
        return next(store.keys())

    def test_corrupt_npz_fails_loudly(self, store):
        key = self._one_key(store)
        npz_path, _ = store.object_paths(key)
        data = bytearray(npz_path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        npz_path.write_bytes(bytes(data))
        with pytest.raises(StoreCorruptionError):
            store.get_trial_set(key)

    def test_missing_npz_fails_loudly(self, store):
        key = self._one_key(store)
        npz_path, _ = store.object_paths(key)
        npz_path.unlink()
        with pytest.raises(StoreCorruptionError):
            store.get_trial_set(key)

    def test_raced_full_deletion_is_a_miss_not_corruption(self, store, monkeypatch):
        # A concurrent gc may delete the whole object between the sidecar
        # read and the NPZ read; that must surface as a cache miss.
        key = self._one_key(store)
        npz_path, sidecar_path = store.object_paths(key)
        sidecar = store.read_sidecar(key)
        npz_path.unlink()
        sidecar_path.unlink()
        monkeypatch.setattr(store, "read_sidecar", lambda k: sidecar)
        assert store.get_trial_set(key) is None

    def test_unreadable_sidecar_fails_loudly(self, store):
        key = self._one_key(store)
        _, sidecar_path = store.object_paths(key)
        sidecar_path.write_text("{not json", encoding="utf-8")
        with pytest.raises(StoreCorruptionError):
            store.get_trial_set(key)

    def test_format_version_mismatch_fails_loudly(self, store):
        key = self._one_key(store)
        _, sidecar_path = store.object_paths(key)
        sidecar = json.loads(sidecar_path.read_text(encoding="utf-8"))
        sidecar["format"] = 999
        sidecar_path.write_text(json.dumps(sidecar), encoding="utf-8")
        with pytest.raises(StoreCorruptionError):
            store.get_trial_set(key)


class TestCaching:
    def test_second_run_executes_zero_cells(self, store, monkeypatch):
        calls = count_batches(monkeypatch)
        first = run_trial_set(
            ProtocolSpec("push"), star_case(), trials=3, base_seed=2, store=store
        )
        assert calls["n"] == 1
        second = run_trial_set(
            ProtocolSpec("push"), star_case(), trials=3, base_seed=2, store=store
        )
        assert calls["n"] == 1  # pure cache hit
        assert second == first

    def test_force_recomputes(self, store, monkeypatch):
        calls = count_batches(monkeypatch)
        first = run_trial_set(
            ProtocolSpec("push"), star_case(), trials=3, base_seed=2, store=store
        )
        forced = run_trial_set(
            ProtocolSpec("push"), star_case(), trials=3, base_seed=2, store=store,
            force=True,
        )
        assert calls["n"] == 2
        assert forced == first  # determinism: the recompute matches

    def test_numpy_typed_protocol_kwargs_persist(self, store):
        # The payload is normalized before hashing AND before the sidecar
        # write, so numpy-typed kwargs cannot crash put_trial_set after the
        # simulation has already run.
        case = complete_builder(12, 0)
        spec = ProtocolSpec("visit-exchange", kwargs={"num_agents": np.int64(8)})
        first = run_trial_set(spec, case, trials=2, base_seed=1, store=store)
        second = run_trial_set(spec, case, trials=2, base_seed=1, store=store)
        assert second.store_status[0] == "cached"
        assert second == first

    def test_cached_equals_uncached(self, store):
        uncached = run_trial_set(
            ProtocolSpec("push-pull"), star_case(), trials=4, base_seed=9, store=False
        )
        run_trial_set(
            ProtocolSpec("push-pull"), star_case(), trials=4, base_seed=9, store=store
        )
        cached = run_trial_set(
            ProtocolSpec("push-pull"), star_case(), trials=4, base_seed=9, store=store
        )
        assert cached == uncached

    def test_env_var_enables_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env-store"))
        run_trial_set(ProtocolSpec("push"), star_case(), trials=2, base_seed=0)
        env_store = resolve_store(None)
        assert env_store is not None
        assert len(list(env_store.keys())) == 1
        # store=False must win over the environment.
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "other-store"))
        run_trial_set(
            ProtocolSpec("push"), star_case(), trials=2, base_seed=0, store=False
        )
        assert not (tmp_path / "other-store").exists()


class TestSweepCaching:
    def test_registry_sweep_twice_is_bit_identical_with_zero_recompute(
        self, store, monkeypatch
    ):
        """The acceptance criterion: rerunning a registry sweep with --store
        recomputes nothing and reproduces the exact ExperimentResult."""
        calls = count_batches(monkeypatch)
        config = get_experiment("fig1a-star")
        kwargs = dict(base_seed=0, sizes=(8, 12), trials=2, store=store)
        first = run_experiment(config, **kwargs)
        cells_executed = calls["n"]
        assert cells_executed == len(first.cells) > 0
        second = run_experiment(config, **kwargs)
        assert calls["n"] == cells_executed  # zero simulation cells on rerun
        assert [c.trials for c in second.cells] == [c.trials for c in first.cells]
        assert [c.summary for c in second.cells] == [c.summary for c in first.cells]
        statuses = [c.trials.store_status[0] for c in second.cells]
        assert statuses == ["cached"] * len(second.cells)

    def test_store_run_matches_plain_run(self, store):
        plain = run_experiment(TOY_CONFIG, base_seed=4, store=False)
        stored = run_experiment(TOY_CONFIG, base_seed=4, store=store)
        rerun = run_experiment(TOY_CONFIG, base_seed=4, store=store)
        assert [c.trials for c in plain.cells] == [c.trials for c in stored.cells]
        assert [c.trials for c in plain.cells] == [c.trials for c in rerun.cells]

    def test_journal_records_cells_and_statuses(self, store):
        run_experiment(TOY_CONFIG, base_seed=4, store=store)
        run_experiment(TOY_CONFIG, base_seed=4, store=store)
        journal = SweepJournal(
            store,
            sweep_payload(
                TOY_CONFIG,
                base_seed=4,
                sizes=TOY_CONFIG.sizes,
                trials=TOY_CONFIG.trials,
                backend="auto",
            ),
        )
        events = list(journal.events())
        assert [e["event"] for e in events].count("sweep-start") == 2
        assert [e["event"] for e in events].count("sweep-end") == 2
        statuses = journal.last_run_statuses()
        assert set(statuses.values()) == {"cached"}
        assert len(statuses) == len(TOY_CONFIG.sizes) * len(TOY_CONFIG.protocols)


class TestInterruptedResume:
    def test_killed_sweep_resumes_where_it_stopped(self, store, monkeypatch):
        """Kill a sweep after two cells; the rerun must execute only the
        missing cells and still produce a bit-identical ExperimentResult."""
        import repro.experiments.runner as runner_module

        reference = run_experiment(TOY_CONFIG, base_seed=11, store=False)
        total_cells = len(reference.cells)
        assert total_cells == 4

        real_run_batch = runner_module.run_batch
        calls = {"n": 0}

        def dying_run_batch(*args, **kwargs):
            if calls["n"] >= 2:
                raise KeyboardInterrupt("simulated kill mid-sweep")
            calls["n"] += 1
            return real_run_batch(*args, **kwargs)

        monkeypatch.setattr(runner_module, "run_batch", dying_run_batch)
        with pytest.raises(KeyboardInterrupt):
            run_experiment(TOY_CONFIG, base_seed=11, store=store)
        assert len(list(store.keys())) == 2  # finished cells were persisted

        # The journal shows the interrupted run stopped after two cells.
        journal = SweepJournal(
            store,
            sweep_payload(
                TOY_CONFIG,
                base_seed=11,
                sizes=TOY_CONFIG.sizes,
                trials=TOY_CONFIG.trials,
                backend="auto",
            ),
        )
        assert len(journal.cell_events()) == 2

        # Resume: only the two missing cells execute.
        counting = {"n": 0}

        def counting_run_batch(*args, **kwargs):
            counting["n"] += 1
            return real_run_batch(*args, **kwargs)

        monkeypatch.setattr(runner_module, "run_batch", counting_run_batch)
        resumed = run_experiment(TOY_CONFIG, base_seed=11, store=store)
        assert counting["n"] == total_cells - 2
        assert [c.trials for c in resumed.cells] == [c.trials for c in reference.cells]
        statuses = [c.trials.store_status[0] for c in resumed.cells]
        assert statuses.count("cached") == 2
        assert statuses.count("computed") == 2


class TestResultFromStore:
    def test_reporting_reads_straight_from_store(self, store, monkeypatch):
        computed = run_experiment(TOY_CONFIG, base_seed=6, store=store)
        calls = count_batches(monkeypatch)
        loaded = result_from_store(TOY_CONFIG, store, base_seed=6)
        assert calls["n"] == 0
        assert [c.trials for c in loaded.cells] == [c.trials for c in computed.cells]
        assert loaded.table_rows() == computed.table_rows()

    def test_missing_cells_raise_by_default(self, store):
        with pytest.raises(KeyError):
            result_from_store(TOY_CONFIG, store, base_seed=6)

    def test_partial_result_when_not_strict(self, store):
        run_experiment(TOY_CONFIG, base_seed=6, sizes=(8,), store=store)
        partial = result_from_store(
            TOY_CONFIG, store, base_seed=6, strict=False
        )
        assert len(partial.cells) == len(TOY_CONFIG.protocols)


class TestManagement:
    def test_entries_flag_corrupt_sidecars_instead_of_raising(self, store):
        run_trial_set(ProtocolSpec("push"), star_case(), trials=2, base_seed=0, store=store)
        run_trial_set(ProtocolSpec("pull"), star_case(), trials=2, base_seed=0, store=store)
        a_key = next(store.keys())
        _, sidecar_path = store.object_paths(a_key)
        sidecar_path.write_text("{torn", encoding="utf-8")
        entries = store.entries()
        assert len(entries) == 2  # the healthy object is still listed
        by_key = {e["key"]: e for e in entries}
        assert by_key[a_key]["protocol"] == "<corrupt sidecar>"

    def test_gc_sweeps_stale_orphaned_npz(self, store):
        import os
        import time as time_module

        run_trial_set(ProtocolSpec("push"), star_case(), trials=2, base_seed=0, store=store)
        npz_path, sidecar_path = store.object_paths(next(store.keys()))
        orphan = npz_path.parent / ("f" * 64 + ".npz")
        orphan.write_bytes(b"payload whose sidecar never landed")
        store.gc(keep_referenced=False, older_than_days=999)
        assert orphan.exists()  # young: could be a live writer mid-put
        hour_ago = time_module.time() - 7200
        os.utime(orphan, (hour_ago, hour_ago))
        store.gc(keep_referenced=False, older_than_days=999)
        assert not orphan.exists()
        assert sidecar_path.exists()  # committed objects are untouched

    def test_gc_spares_fresh_tmp_files_of_live_writers(self, store):
        run_trial_set(ProtocolSpec("push"), star_case(), trials=2, base_seed=0, store=store)
        key = next(store.keys())
        npz_path, _ = store.object_paths(key)
        fresh_tmp = npz_path.parent / f".{npz_path.name}.99999.tmp"
        fresh_tmp.write_bytes(b"in-flight write")
        store.gc(keep_referenced=False, older_than_days=999)
        assert fresh_tmp.exists()  # a live writer's temp file survives
        import os

        hour_ago = __import__("time").time() - 7200
        os.utime(fresh_tmp, (hour_ago, hour_ago))
        store.gc(keep_referenced=False, older_than_days=999)
        assert not fresh_tmp.exists()  # an abandoned one is swept

    def test_ls_entries_describe_objects(self, store):
        run_trial_set(ProtocolSpec("push"), star_case(), trials=2, base_seed=0, store=store)
        entries = store.entries()
        assert len(entries) == 1
        entry = entries[0]
        assert entry["protocol"] == "push"
        assert entry["trials"] == 2
        assert entry["backend"] == "batched"
        assert entry["bytes"] > 0

    def test_gc_keeps_journal_referenced_objects(self, store):
        run_experiment(TOY_CONFIG, base_seed=4, store=store)  # journaled
        run_trial_set(
            ProtocolSpec("push"), star_case(), trials=2, base_seed=0, store=store
        )  # adhoc, unreferenced
        total = len(list(store.keys()))
        removed = store.gc()
        assert len(removed) == 1
        assert len(list(store.keys())) == total - 1

    def test_gc_all_empties_the_store(self, store):
        run_experiment(TOY_CONFIG, base_seed=4, store=store)
        removed = store.gc(keep_referenced=False)
        assert removed
        assert list(store.keys()) == []

    def test_gc_dry_run_deletes_nothing(self, store):
        run_trial_set(ProtocolSpec("push"), star_case(), trials=2, base_seed=0, store=store)
        assert store.gc(dry_run=True, keep_referenced=False)
        assert len(list(store.keys())) == 1

    def test_gc_budget_evicts_least_recently_read_first(self, store):
        import os
        import time as time_module

        for seed in (0, 1, 2):
            run_trial_set(
                ProtocolSpec("push"), star_case(), trials=2, base_seed=seed, store=store
            )
        keys = list(store.keys())
        assert len(keys) == 3
        # Stamp distinct last-read times, oldest first; then "read" the
        # oldest one, which must bump it to most recently used.
        now = time_module.time()
        for age, key in zip((300, 200, 100), keys):
            npz, sidecar = store.object_paths(key)
            os.utime(npz, (now - age, now - age))
            os.utime(sidecar, (now - age, now - age))
        store.get_trial_set(keys[0])

        sizes = {
            key: sum(p.stat().st_size for p in store.object_paths(key))
            for key in keys
        }
        budget = sizes[keys[0]] + sizes[keys[2]] + 1
        removed = store.gc(max_bytes=budget)
        # keys[1] was the least recently read (keys[0] was just read,
        # keys[2] has the freshest stamp), so it alone is evicted.
        assert removed == [keys[1]]
        assert set(store.keys()) == {keys[0], keys[2]}

    def test_gc_budget_keeps_journal_referenced_objects_pinned(self, store):
        run_experiment(TOY_CONFIG, base_seed=4, store=store)  # journaled
        run_trial_set(
            ProtocolSpec("push"), star_case(), trials=2, base_seed=0, store=store
        )  # adhoc, unreferenced
        removed = store.gc(max_bytes=0)
        assert len(removed) == 1  # only the unpinned object can go
        assert len(list(store.keys())) == len(TOY_CONFIG.sizes) * len(TOY_CONFIG.protocols)
        # ... unless references are explicitly ignored.
        assert store.gc(max_bytes=0, keep_referenced=False)
        assert list(store.keys()) == []

    def test_gc_budget_honours_keep_days_age_floor(self, store):
        import os
        import time as time_module

        for seed in (0, 1):
            run_trial_set(
                ProtocolSpec("push"), star_case(), trials=2, base_seed=seed, store=store
            )
        keys = list(store.keys())
        old, fresh = keys
        ten_days_ago = time_module.time() - 10 * 86400
        for path in store.object_paths(old):
            os.utime(path, (ten_days_ago, ten_days_ago))
        # Only the object older than the floor may be evicted for the budget.
        removed = store.gc(max_bytes=0, older_than_days=7)
        assert removed == [old]
        assert list(store.keys()) == [fresh]

    def test_gc_budget_noop_when_under_budget(self, store):
        run_trial_set(ProtocolSpec("push"), star_case(), trials=2, base_seed=0, store=store)
        assert store.gc(max_bytes=10**9) == []
        assert len(list(store.keys())) == 1

    def test_gc_budget_dry_run_deletes_nothing(self, store):
        run_trial_set(ProtocolSpec("push"), star_case(), trials=2, base_seed=0, store=store)
        assert store.gc(max_bytes=0, dry_run=True)
        assert len(list(store.keys())) == 1

    def test_reads_do_not_extend_age_based_gc(self, store):
        import os
        import time as time_module

        run_trial_set(ProtocolSpec("push"), star_case(), trials=2, base_seed=0, store=store)
        key = next(store.keys())
        npz, sidecar = store.object_paths(key)
        ten_days_ago = time_module.time() - 10 * 86400
        os.utime(sidecar, (ten_days_ago, ten_days_ago))
        os.utime(npz, (ten_days_ago, ten_days_ago))
        # A read marks LRU recency (payload mtime) but must not refresh the
        # commit age the --keep-days cutoff is defined over.
        store.get_trial_set(key)
        assert store.gc(keep_referenced=False, older_than_days=7) == [key]

    def test_export_twice_is_idempotent(self, store, tmp_path):
        run_experiment(TOY_CONFIG, base_seed=4, store=store)  # journaled
        destination = ResultStore(tmp_path / "seed")
        store.export(destination.root)
        once = {p.name: p.read_bytes() for p in destination.sweeps_dir.glob("*.jsonl")}
        store.export(destination.root)
        twice = {p.name: p.read_bytes() for p in destination.sweeps_dir.glob("*.jsonl")}
        assert once and once == twice

    def test_export_round_trips(self, store, tmp_path):
        computed = run_trial_set(
            ProtocolSpec("push"), star_case(), trials=2, base_seed=0, store=store
        )
        destination = ResultStore(tmp_path / "exported")
        assert store.export(destination.root) == 1
        key = next(destination.keys())
        assert destination.get_trial_set(key) == computed


class TestParallelSweepWithStore:
    def test_workers_compose_with_store(self, store):
        plain = run_experiment(TOY_CONFIG, base_seed=3, store=False)
        stored = run_experiment(TOY_CONFIG, base_seed=3, store=store, workers=2)
        assert [c.trials for c in stored.cells] == [c.trials for c in plain.cells]
        # Workers persisted from their own processes; a serial rerun is warm.
        rerun = run_experiment(TOY_CONFIG, base_seed=3, store=store)
        assert [c.trials.store_status[0] for c in rerun.cells] == ["cached"] * 4
        assert [c.trials for c in rerun.cells] == [c.trials for c in plain.cells]
