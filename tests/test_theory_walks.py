"""Tests for random-walk quantities (repro.theory.walks)."""

from __future__ import annotations


import numpy as np
import pytest

from repro.graphs import Graph, complete_graph, cycle_graph, star
from repro.theory.walks import (
    expected_hitting_times,
    mixing_time_bound,
    relaxation_time,
    simulate_cover_time,
    simulate_meeting_time,
    spectral_gap,
    stationary_distribution,
    transition_matrix,
)


class TestTransitionMatrix:
    def test_rows_sum_to_one(self, small_heavy_tree):
        matrix = transition_matrix(small_heavy_tree)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_lazy_matrix_has_half_on_diagonal(self, small_complete):
        matrix = transition_matrix(small_complete, lazy=True)
        assert np.allclose(np.diag(matrix), 0.5)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_stationarity_of_degree_distribution(self, small_double_star):
        matrix = transition_matrix(small_double_star)
        pi = stationary_distribution(small_double_star)
        assert np.allclose(pi @ matrix, pi)

    def test_isolated_vertex_rejected(self):
        graph = Graph(3, [(0, 1)])
        with pytest.raises(Exception):
            transition_matrix(graph)


class TestSpectralQuantities:
    def test_complete_graph_gap(self):
        # Normalized adjacency of K_n has second eigenvalue -1/(n-1), so the
        # gap is 1 + 1/(n-1) > 1.
        gap = spectral_gap(complete_graph(10))
        assert gap == pytest.approx(1 + 1 / 9, abs=1e-8)

    def test_cycle_gap_small(self):
        assert spectral_gap(cycle_graph(40)) < 0.1

    def test_relaxation_time_inverse_of_gap(self, small_hypercube):
        gap = spectral_gap(small_hypercube)
        assert relaxation_time(small_hypercube) == pytest.approx(1 / gap)

    def test_mixing_time_bound_increases_with_size(self):
        small = mixing_time_bound(cycle_graph(10))
        large = mixing_time_bound(cycle_graph(40))
        assert large > small

    def test_mixing_time_validates_epsilon(self, small_complete):
        with pytest.raises(ValueError):
            mixing_time_bound(small_complete, epsilon=0.0)


class TestHittingTimes:
    def test_hitting_time_zero_at_target(self, small_complete):
        hitting = expected_hitting_times(small_complete, target=3)
        assert hitting[3] == 0.0

    def test_complete_graph_hitting_time(self):
        # On K_n, the hitting time from any other vertex is n - 1.
        n = 12
        hitting = expected_hitting_times(complete_graph(n), target=0)
        for v in range(1, n):
            assert hitting[v] == pytest.approx(n - 1)

    def test_star_leaf_to_center(self):
        hitting = expected_hitting_times(star(10), target=0)
        # Every leaf reaches the center in exactly one step.
        for leaf in range(1, 11):
            assert hitting[leaf] == pytest.approx(1.0)

    def test_path_end_to_end(self):
        # Known formula: hitting time from one end of a path of length L to the
        # other is L^2.
        edges = [(i, i + 1) for i in range(4)]
        graph = Graph(5, edges, name="path5")
        hitting = expected_hitting_times(graph, target=4)
        assert hitting[0] == pytest.approx(16.0)

    def test_invalid_target_rejected(self, small_complete):
        with pytest.raises(Exception):
            expected_hitting_times(small_complete, target=99)


class TestSimulatedQuantities:
    def test_meeting_time_zero_when_same_start(self, small_complete, rng):
        assert (
            simulate_meeting_time(small_complete, rng, start_a=3, start_b=3) == 0
        )

    def test_meeting_time_positive_otherwise(self, small_complete, rng):
        time = simulate_meeting_time(small_complete, rng, start_a=0, start_b=5)
        assert time >= 1

    def test_meeting_time_mean_reasonable_on_complete_graph(self):
        # Two lazy walks on K_n meet within O(n) steps in expectation.
        rng = np.random.default_rng(3)
        graph = complete_graph(16)
        times = [simulate_meeting_time(graph, rng) for _ in range(100)]
        assert np.mean(times) < 8 * 16

    def test_cover_time_at_least_n_minus_one(self, small_complete, rng):
        assert simulate_cover_time(small_complete, rng) >= small_complete.num_vertices - 1

    def test_cover_time_mean_near_n_log_n_on_complete_graph(self):
        rng = np.random.default_rng(5)
        n = 16
        graph = complete_graph(n)
        times = [simulate_cover_time(graph, rng) for _ in range(50)]
        expected = (n - 1) * sum(1 / k for k in range(1, n))
        assert 0.6 * expected < np.mean(times) < 1.6 * expected

    def test_cover_time_budget_exhaustion_raises(self, small_cycle, rng):
        with pytest.raises(RuntimeError):
            simulate_cover_time(small_cycle, rng, max_steps=2)
