"""Batched multi-trial simulation backend.

Every statistical claim of the paper (Theorems 1-3, Figure 1) is estimated
from dozens of independent trials per (graph, protocol, size) cell.  The
sequential :class:`~repro.core.engine.Engine` runs those trials one at a time,
paying the Python round-loop overhead ``trials`` times over.  This module
advances **T independent trials simultaneously** on 2-D numpy state —
``positions`` shaped ``(trials, agents)``, ``informed`` shaped
``(trials, vertices)`` — so the per-round cost is a handful of vectorized
array operations regardless of the trial count, and the number of round-loop
iterations drops from ``sum_t rounds_t`` to ``max_t rounds_t``.

Design notes
------------
* **Per-trial random streams.**  Trial ``t`` draws all of its randomness from
  its own generator (``seeds[t]``), and the shape of each round's draw depends
  only on that trial's own state.  Consequently a trial's outcome is a pure
  function of its seed: it does not change when the surrounding batch grows,
  shrinks or is reordered, and re-running any batch containing the same seed
  reproduces the same per-trial result.  (The *sequence* of draws differs from
  the sequential engine's, so batched and sequential runs of the same seed
  agree statistically, not sample-for-sample.)
* **Completion masking by row compaction.**  Kernel state lives in dense
  arrays whose first ``k`` rows are the still-running trials; when a trial
  completes, its row is swapped into the tail and ``k`` shrinks.  Finished
  trials therefore stop costing work, and the hot loop operates on contiguous
  zero-copy views instead of fancy-indexed row gathers.
* **No observers.**  Per-edge instrumentation (``track_edge_traversals``,
  ``track_all_exchanges``) and per-round observer hooks require the sequential
  engine; :func:`supports_batched` reports whether a configuration can run
  here, and the experiment runner falls back to the :class:`Engine` otherwise.

Use :func:`run_batch` directly, or :func:`repro.simulate_batch` for the
one-call convenience wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..graphs.graph import Graph, GraphError
from .agents import default_agent_count
from .engine import default_max_rounds
from .results import RunResult, TrialSet
from .rng import derive_seed

__all__ = [
    "BATCHED_PROTOCOLS",
    "BatchResult",
    "run_batch",
    "supports_batched",
    "trial_seeds",
]

#: Protocols with a batched kernel in this module.
BATCHED_PROTOCOLS = frozenset({"push", "push-pull", "visit-exchange", "meet-exchange"})

#: Protocol kwargs that force the sequential engine (observer instrumentation).
_OBSERVER_KWARGS = ("track_edge_traversals", "track_all_exchanges")


def supports_batched(protocol: str, kwargs: Optional[Dict[str, Any]] = None) -> bool:
    """Return True if ``protocol`` with ``kwargs`` can run on the batched backend."""
    if protocol not in BATCHED_PROTOCOLS:
        return False
    kwargs = kwargs or {}
    return not any(kwargs.get(key) for key in _OBSERVER_KWARGS)


def trial_seeds(base_seed: int, *components, trials: int) -> List[int]:
    """Derive one independent seed per trial, matching the sequential runner.

    Seed ``t`` is ``derive_seed(base_seed, *components, t)``, i.e. exactly the
    seed the sequential :func:`~repro.experiments.runner.run_trial_set` hands
    to trial ``t``, so switching backends never silently reshuffles streams.
    """
    if trials < 1:
        raise ValueError("trials must be at least 1")
    return [derive_seed(base_seed, *components, t) for t in range(trials)]


def _batch_generator(seed) -> np.random.Generator:
    """Per-trial generator for the batched kernels.

    Uses the SFC64 bit generator: its bulk uniform generation is measurably
    faster than PCG64's and the kernels are draw-bandwidth-bound.  A trial's
    result remains a pure function of its seed; the stream family simply
    differs from the sequential engine's ``default_rng``, whose results the
    batched backend only ever matches statistically anyway.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if not isinstance(seed, np.random.SeedSequence):
        seed = np.random.SeedSequence(seed)
    return np.random.Generator(np.random.SFC64(seed))


class _BatchKernel:
    """State and one-round transition for a batch of trials of one protocol.

    Kernel state is *row compacted*: per-trial arrays have one row per trial,
    and the first ``k`` rows are the trials still running.  ``trial_ids[row]``
    maps a row back to the original trial index; the driver retires a finished
    trial by swapping its row into the tail (:meth:`swap_rows`).
    """

    name = "abstract"

    def initialize(self, graph: Graph, source: int, gens: Sequence[np.random.Generator]) -> None:
        raise NotImplementedError

    def step(self, k: int) -> None:
        """Advance the first ``k`` rows by one synchronous round."""
        raise NotImplementedError

    def complete_rows(self, k: int) -> np.ndarray:
        """(k,) bool mask over the first ``k`` rows: which have finished."""
        raise NotImplementedError

    def num_agents(self) -> int:
        return 0

    def messages_by_trial(self) -> np.ndarray:
        """(T,) messages sent, indexed by original trial."""
        return np.zeros(self.num_trials, dtype=np.int64)

    def trial_metadata(self, trial: int) -> Dict[str, Any]:
        return {}

    # shared helpers -----------------------------------------------------
    def _setup_common(self, graph: Graph, gens) -> None:
        self.graph = graph
        self.num_trials = len(gens)
        self.trial_ids = np.arange(self.num_trials, dtype=np.int64)
        self._gens = list(gens)
        self._row_arrays: List[np.ndarray] = [self.trial_ids]
        self._row_base = (
            np.arange(self.num_trials, dtype=np.int64) * graph.num_vertices
        )[:, None]
        self._round_count = 0
        self._draw_phase = 0

    #: Rounds of uniforms drawn per generator call (see :meth:`_draw_buffer`).
    _DRAW_BLOCK = 4

    def _begin_round(self) -> None:
        """Advance the block draw phase (see :meth:`_uniforms`)."""
        self._draw_phase = self._round_count % self._DRAW_BLOCK
        self._round_count += 1

    def _register_rows(self, *arrays: np.ndarray) -> None:
        """Arrays with one row (or element) per trial, kept compact by swaps."""
        self._row_arrays.extend(arrays)

    def swap_rows(self, i: int, j: int) -> None:
        if i == j:
            return
        for array in self._row_arrays:
            if array.ndim > 1:
                tmp = array[i].copy()
                array[i] = array[j]
                array[j] = tmp
            else:
                array[i], array[j] = array[j], array[i]
        self._gens[i], self._gens[j] = self._gens[j], self._gens[i]

    def _materialized_row_base(self, width: int) -> np.ndarray:
        """(T, width) array of flat-index row offsets, shifted past the slot-0
        write sink; materialized because broadcast adds are measurably slower
        than aligned elementwise adds on the hot path."""
        return np.ascontiguousarray(
            np.broadcast_to(self._row_base + 1, (self.num_trials, width))
        )

    def _row_of(self, trial: int) -> int:
        """Row currently holding ``trial`` (rows are a permutation of trials)."""
        return int(np.flatnonzero(self.trial_ids == trial)[0])

    def _raw_stream(self, width: int, bits: int) -> Dict[str, Any]:
        """Allocate and register a block-drawn raw-bit stream.

        Each generator call fills ``_DRAW_BLOCK`` rounds of raw 64-bit words
        for one trial (amortizing per-call overhead, a sizeable share of the
        draw cost at typical batch sizes); rounds then consume the words as
        ``width`` fixed-point integers of ``bits`` bits.  The word buffer is
        swap-registered so a trial's pending rounds follow it through row
        compaction; a trial retiring mid-block simply discards its pre-drawn
        remainder, keeping every trial's stream a function of its own round
        count alone.
        """
        values_per_word = 64 // bits
        words_per_round = -(-width // values_per_word)
        words = np.empty(
            (self.num_trials, self._DRAW_BLOCK * words_per_round), dtype=np.uint64
        )
        self._register_rows(words)
        return {
            "words": words,
            "values": words.view(np.uint16 if bits == 16 else np.uint32),
            "stride": words_per_round * values_per_word,
            "width": width,
        }

    def _raw_values(self, k: int, stream: Dict[str, Any]) -> np.ndarray:
        """One round of per-trial fixed-point uniforms from a raw stream.

        A value ``u`` of ``bits`` bits maps to the offset ``(u * d) >> bits``,
        which is an *exact* truncation into ``[0, d)`` (no clamp needed) and
        deviates from per-neighbor uniformity by at most ``d * 2**-bits`` —
        streams are sized so that stays at least three orders of magnitude
        below the statistical resolution of any realistic trial count.
        """
        if self._draw_phase == 0:
            words = stream["words"]
            num_words = words.shape[1]
            for row in range(k):
                words[row] = self._gens[row].bit_generator.random_raw(num_words)
        start = self._draw_phase * stream["stride"]
        return stream["values"][:k, start : start + stream["width"]]

    def _setup_offset_layout(self, width: int) -> None:
        """Choose fixed-point precision and degree representations.

        16-bit offsets are exact enough (bias at most ``max_deg * 2**-16``)
        only for small maximum degree; skewed families fall back to 32 bits.
        Typed degree scalars/arrays keep the ufunc loops in the wide integer
        type (a weak Python-int operand would select the uint16 loop and
        overflow).
        """
        graph = self.graph
        max_degree = int(graph.degrees.max())
        self._offset_bits = 16 if max_degree <= 64 else 32
        wide = np.int32 if self._offset_bits == 16 else np.int64
        self._mult_scratch = np.empty((self.num_trials, width), dtype=wide)
        # d-regular graphs admit a scalar fast path: every degree is d and the
        # CSR row of vertex v starts exactly at v * d.
        self._regular_degree = (
            graph.regularity_degree() if graph.is_regular() else None
        )
        if self._regular_degree is not None:
            self._degree_wide = wide(self._regular_degree)
        else:
            self._degrees_wide = graph.degrees.astype(wide)


class _AgentKernel(_BatchKernel):
    """Shared agent placement for visit-exchange and meet-exchange."""

    def __init__(
        self,
        *,
        agent_density: float = 1.0,
        num_agents: Optional[int] = None,
        lazy: bool = False,
        one_agent_per_vertex: bool = False,
    ) -> None:
        self.agent_density = float(agent_density)
        self.explicit_num_agents = num_agents
        self.lazy = lazy
        self.one_agent_per_vertex = bool(one_agent_per_vertex)
        self._num_agents = 0

    def _place_agents(self, graph: Graph, gens) -> np.ndarray:
        """(T, A) initial positions, drawn per trial from its own stream.

        Sampling the stationary distribution ``deg(v) / 2|E|`` is equivalent to
        picking a uniformly random directed-edge slot and taking its source
        vertex, so placement is one gather over the slot-source array instead
        of a per-trial inverse-CDF search.
        """
        num_trials = len(gens)
        if self.one_agent_per_vertex:
            self._num_agents = graph.num_vertices
            return np.tile(
                np.arange(graph.num_vertices, dtype=np.int64), (num_trials, 1)
            )
        self._num_agents = (
            int(self.explicit_num_agents)
            if self.explicit_num_agents is not None
            else default_agent_count(graph, self.agent_density)
        )
        if self._num_agents < 1:
            raise ValueError("need at least one agent")
        slot_sources = np.repeat(
            np.arange(graph.num_vertices, dtype=np.int64), graph.degrees
        )
        uniforms = np.empty((num_trials, self._num_agents))
        for t, gen in enumerate(gens):
            gen.random(out=uniforms[t])
        slots = (uniforms * slot_sources.size).astype(np.int64)
        np.minimum(slots, slot_sources.size - 1, out=slots)
        return slot_sources[slots]

    def _setup_walk_buffers(self, uses_lazy: bool) -> None:
        shape = (self.num_trials, self._num_agents)
        self._setup_offset_layout(self._num_agents)
        self._walk_stream = self._raw_stream(self._num_agents, self._offset_bits)
        self._lazy_stream = self._raw_stream(self._num_agents, 16) if uses_lazy else None
        # Scratch reused every round to avoid allocator churn on the hot path;
        # ``_masked`` aliases ``_offsets``, which is dead by the time the
        # scatter mask is built (smaller resident set, fewer cache evictions).
        self._offsets = np.empty(shape, dtype=np.int64)
        self._starts = np.empty(shape, dtype=np.int64)
        self._new_positions = np.empty(shape, dtype=np.int64)
        self._position_flat = np.empty(shape, dtype=np.int64)
        self._masked = self._offsets
        self._gathered = np.empty(shape, dtype=bool)

    def _walk_rows(self, k: int) -> np.ndarray:
        """One walk step for the first ``k`` rows; returns the new positions."""
        graph = self.graph
        self._begin_round()
        positions = self.positions[:k]
        raw = self._raw_values(k, self._walk_stream)
        scaled = self._mult_scratch[:k]
        offsets = self._offsets[:k]
        starts = self._starts[:k]
        new_positions = self._new_positions[:k]

        if self._regular_degree is not None:
            np.multiply(raw, self._degree_wide, out=scaled)
            np.multiply(positions, self._regular_degree, out=starts)
        else:
            # Gather degrees into the scratch, then scale in place (elementwise,
            # so reading and writing the same buffer is safe).
            np.take(self._degrees_wide, positions, out=scaled, mode="clip")
            np.multiply(raw, scaled, out=scaled)
            np.take(graph.indptr, positions, out=starts, mode="clip")
        np.right_shift(scaled, self._offset_bits, out=scaled)
        np.add(starts, scaled, out=offsets)
        np.take(graph.indices, offsets, out=new_positions, mode="clip")
        if self._lazy_stream is not None:
            lazy = self._raw_values(k, self._lazy_stream)
            stay = self._gathered[:k]
            np.less(lazy, 1 << 15, out=stay)
            np.copyto(new_positions, positions, where=stay)
        return new_positions

    def num_agents(self) -> int:
        return self._num_agents


class _VisitExchangeKernel(_AgentKernel):
    """Batched VISIT-EXCHANGE: vertices and agents both store the rumor."""

    name = "visit-exchange"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.lazy = bool(self.lazy)

    def initialize(self, graph, source, gens):
        self._setup_common(graph, gens)
        self.positions = self._place_agents(graph, gens)
        self.agent_informed = self.positions == source
        # Slot 0 of the flat buffer is a write sink: scatters index it with
        # ``flat_index * mask`` instead of extracting the masked indices, which
        # is the single most expensive operation it replaces.
        self._vertex_flat = np.zeros(self.num_trials * graph.num_vertices + 1, dtype=bool)
        self.vertex_informed = self._vertex_flat[1:].reshape(
            self.num_trials, graph.num_vertices
        )
        self.vertex_informed[:, source] = True
        self.counts = np.ones(self.num_trials, dtype=np.int64)
        self._register_rows(
            self.positions, self.agent_informed, self.vertex_informed, self.counts
        )
        self._setup_walk_buffers(self.lazy)
        self._row_base1 = self._materialized_row_base(self._num_agents)
        self._all_agents_informed = False

    def step(self, k):
        new_positions = self._walk_rows(k)
        position_flat = self._position_flat[:k]
        np.add(self._row_base1[:k], new_positions, out=position_flat)

        if self._all_agents_informed:
            # Every agent already carries the rumor (a monotone, batch-wide
            # condition), so every visited vertex becomes informed and the
            # carrier masking and agent updates are bit-identical no-ops.
            self._vertex_flat[position_flat] = True
        else:
            # Agents informed in a previous round inform the vertices they
            # visit; ``informed`` is read before it is updated, so the scatter
            # sees only the carriers from previous rounds.
            informed = self.agent_informed[:k]
            masked = self._masked[:k]
            np.multiply(position_flat, informed, out=masked)
            self._vertex_flat[masked] = True

            # Uninformed agents on (now) informed vertices learn the rumor.
            on_informed = self._gathered[:k]
            np.take(self._vertex_flat, position_flat, out=on_informed, mode="clip")
            informed |= on_informed
            self._all_agents_informed = bool(self.agent_informed.all())
        self.counts[:k] = self.vertex_informed[:k].sum(axis=1)
        self.positions[:k] = new_positions

    def complete_rows(self, k):
        return self.counts[:k] >= self.graph.num_vertices

    def trial_metadata(self, trial):
        return {
            "agent_density": self.agent_density,
            "lazy": self.lazy,
            "one_agent_per_vertex": self.one_agent_per_vertex,
        }


class _MeetExchangeKernel(_AgentKernel):
    """Batched MEET-EXCHANGE: only agents store the rumor."""

    name = "meet-exchange"

    def __init__(self, *, lazy: Optional[bool] = None, **kwargs) -> None:
        # ``lazy=None`` auto-enables lazy walks on bipartite graphs, matching
        # the sequential protocol's convention from Section 3 of the paper.
        super().__init__(lazy=lazy, **kwargs)

    def initialize(self, graph, source, gens):
        self._setup_common(graph, gens)
        self._effective_lazy = (
            bool(self.lazy) if self.lazy is not None else graph.is_bipartite()
        )
        self.source = int(source)
        self.positions = self._place_agents(graph, gens)
        self.informed = self.positions == source
        # If no agent starts on the source it keeps the rumor for its first visitor.
        self.source_still_informs = ~self.informed.any(axis=1)
        self._register_rows(self.positions, self.informed, self.source_still_informs)
        self._setup_walk_buffers(self._effective_lazy)
        self._row_base1 = self._materialized_row_base(self._num_agents)
        # Scratch meeting map with a slot-0 write sink (see _VisitExchangeKernel).
        self._meeting_flat = np.empty(
            self.num_trials * graph.num_vertices + 1, dtype=bool
        )

    def step(self, k):
        new_positions = self._walk_rows(k)
        informed_before = self.informed[:k].copy()

        # The source hands the rumor to its first visitor(s), then goes silent.
        # Agents informed directly by the source may not spread further this
        # round (they were not informed in a previous round), hence the copy of
        # ``informed_before`` above.
        still_informs = self.source_still_informs[:k]
        if np.any(still_informs):
            at_source = new_positions == self.source
            visited = at_source.any(axis=1) & still_informs
            if np.any(visited):
                self.informed[:k] |= at_source & visited[:, None]
                still_informs &= ~visited

        # Meetings: every vertex holding an agent informed in a previous round
        # informs all agents located there.
        informed_here = self._meeting_flat[: k * self.graph.num_vertices + 1]
        informed_here[...] = False
        local_flat = self._position_flat[:k]
        masked = self._masked[:k]
        np.add(self._row_base1[:k], new_positions, out=local_flat)
        np.multiply(local_flat, informed_before, out=masked)
        informed_here[masked] = True
        met = self._gathered[:k]
        np.take(informed_here, local_flat, out=met, mode="clip")
        self.informed[:k] |= met
        self.positions[:k] = new_positions

    def complete_rows(self, k):
        return self.informed[:k].all(axis=1)

    def trial_metadata(self, trial):
        return {
            "agent_density": self.agent_density,
            "lazy": self._effective_lazy,
            "one_agent_per_vertex": self.one_agent_per_vertex,
            "source_still_informs": bool(self.source_still_informs[self._row_of(trial)]),
        }


class _VertexKernel(_BatchKernel):
    """Shared state for the vertex-only protocols (push and push-pull)."""

    def __init__(self) -> None:
        pass

    def initialize(self, graph, source, gens):
        self._setup_common(graph, gens)
        shape = (self.num_trials, graph.num_vertices)
        # Slot 0 of the flat buffer is a write sink: scatters index it with
        # ``flat_index * mask`` instead of extracting the masked indices, which
        # is the single most expensive operation it replaces.
        self._informed_flat = np.zeros(self.num_trials * graph.num_vertices + 1, dtype=bool)
        self.informed = self._informed_flat[1:].reshape(shape)
        self.informed[:, source] = True
        self.counts = np.ones(self.num_trials, dtype=np.int64)
        self._messages = np.zeros(self.num_trials, dtype=np.int64)
        self._register_rows(self.informed, self.counts, self._messages)
        # Scratch reused every round to avoid allocator churn on the hot path;
        # ``_masked`` aliases ``_offsets``, which is dead by the time the
        # scatter mask is built (smaller resident set, fewer cache evictions).
        self._setup_offset_layout(graph.num_vertices)
        self._callee_stream = self._raw_stream(graph.num_vertices, self._offset_bits)
        self._offsets = np.empty(shape, dtype=np.int64)
        self._target_flat = np.empty(shape, dtype=np.int64)
        self._masked = self._offsets
        self._gathered = np.empty(shape, dtype=bool)
        self._pull_scratch = np.empty(shape, dtype=bool)
        self._vertex_starts = graph.indptr[:-1]
        self._row_base1 = self._materialized_row_base(graph.num_vertices)

    def _sample_callee_flat(self, k: int) -> np.ndarray:
        """Flat informed-array indices of one uniform neighbor per vertex.

        The draw shape is one value per vertex regardless of protocol state,
        which keeps each trial's stream a function of the round number only.
        The sampled vertices are materialized directly in flat (trial, vertex)
        index space — no kernel needs the plain vertex ids.
        """
        graph = self.graph
        self._begin_round()
        raw = self._raw_values(k, self._callee_stream)
        scaled = self._mult_scratch[:k]
        offsets = self._offsets[:k]
        callee_flat = self._target_flat[:k]
        if self._regular_degree is not None:
            np.multiply(raw, self._degree_wide, out=scaled)
        else:
            np.multiply(raw, self._degrees_wide, out=scaled)
        np.right_shift(scaled, self._offset_bits, out=scaled)
        np.add(scaled, self._vertex_starts, out=offsets)
        np.take(graph.indices, offsets, out=callee_flat, mode="clip")
        np.add(callee_flat, self._row_base1[:k], out=callee_flat)
        return callee_flat

    def complete_rows(self, k):
        return self.counts[:k] >= self.graph.num_vertices

    def messages_by_trial(self):
        out = np.empty(self.num_trials, dtype=np.int64)
        out[self.trial_ids] = self._messages
        return out


class _PushKernel(_VertexKernel):
    """Batched PUSH: informed vertices push to uniformly random neighbors."""

    name = "push"

    def step(self, k):
        informed = self.informed[:k]
        target_flat = self._sample_callee_flat(k)
        masked = self._masked[:k]
        np.multiply(target_flat, informed, out=masked)
        self._messages[:k] += self.counts[:k]
        self._informed_flat[masked] = True
        self.counts[:k] = informed.sum(axis=1)


class _PushPullKernel(_VertexKernel):
    """Batched PUSH-PULL: every vertex calls a random neighbor each round."""

    name = "push-pull"

    def step(self, k):
        graph = self.graph
        caller_informed = self.informed[:k]
        callee_flat = self._sample_callee_flat(k)
        callee_informed = self._gathered[:k]
        np.take(self._informed_flat, callee_flat, out=callee_informed, mode="clip")

        # Push direction: informed caller informs its callee; pull direction:
        # uninformed caller learns from an informed callee.  Both masks are
        # materialized from the pre-round state before any update is applied
        # (for booleans ``a > b`` is exactly ``a & ~b``).
        masked = self._masked[:k]
        push_mask = np.greater(caller_informed, callee_informed, out=self._pull_scratch[:k])
        np.multiply(callee_flat, push_mask, out=masked)
        pull_mask = np.greater(callee_informed, caller_informed, out=push_mask)
        self._informed_flat[masked] = True
        caller_informed |= pull_mask
        self.counts[:k] = caller_informed.sum(axis=1)
        self._messages[:k] += graph.num_vertices


_KERNELS = {
    _PushKernel.name: _PushKernel,
    _PushPullKernel.name: _PushPullKernel,
    _VisitExchangeKernel.name: _VisitExchangeKernel,
    _MeetExchangeKernel.name: _MeetExchangeKernel,
}


@dataclass
class BatchResult:
    """Outcome of a batch of independent trials of one protocol configuration.

    Per-trial arrays are index-aligned with the ``seeds`` passed to
    :func:`run_batch`; ``broadcast_times[t]`` is ``-1`` for trials that hit the
    round budget (mirrored by ``completed[t] = False``).
    """

    protocol: str
    graph_name: str
    num_vertices: int
    num_edges: int
    source: int
    broadcast_times: np.ndarray
    completed: np.ndarray
    rounds_executed: np.ndarray
    num_agents: int
    messages_sent: np.ndarray
    metadata: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def num_trials(self) -> int:
        """Number of trials in the batch."""
        return int(self.broadcast_times.size)

    @property
    def completion_rate(self) -> float:
        """Fraction of trials that completed within the round budget."""
        return float(np.count_nonzero(self.completed)) / self.num_trials

    def completed_times(self) -> np.ndarray:
        """Broadcast times of the completed trials."""
        return self.broadcast_times[self.completed]

    def mean_broadcast_time(self) -> Optional[float]:
        """Mean broadcast time over completed trials (None if none completed)."""
        times = self.completed_times()
        return float(times.mean()) if times.size else None

    def to_run_results(self) -> List[RunResult]:
        """Per-trial :class:`RunResult` records, interchangeable with the engine's."""
        results = []
        for t in range(self.num_trials):
            done = bool(self.completed[t])
            results.append(
                RunResult(
                    protocol=self.protocol,
                    graph_name=self.graph_name,
                    num_vertices=self.num_vertices,
                    num_edges=self.num_edges,
                    source=self.source,
                    broadcast_time=int(self.broadcast_times[t]) if done else None,
                    rounds_executed=int(self.rounds_executed[t]),
                    completed=done,
                    num_agents=self.num_agents,
                    messages_sent=int(self.messages_sent[t]),
                    metadata=dict(self.metadata[t]) if self.metadata else {},
                )
            )
        return results

    def to_trial_set(self) -> TrialSet:
        """Package the batch as a :class:`TrialSet` for the experiment layer."""
        return TrialSet.from_results(self.to_run_results())


def run_batch(
    protocol: str,
    graph: Graph,
    source: int = 0,
    *,
    seeds: Sequence,
    max_rounds: Optional[int] = None,
    **protocol_kwargs,
) -> BatchResult:
    """Run ``len(seeds)`` independent trials of ``protocol`` simultaneously.

    Parameters
    ----------
    protocol:
        One of :data:`BATCHED_PROTOCOLS`.
    graph / source:
        As for :class:`~repro.core.engine.Engine.run`.
    seeds:
        One seed-like per trial (see :func:`repro.core.rng.make_rng`); trial
        ``t`` draws exclusively from ``seeds[t]``, so its result is independent
        of the rest of the batch.  Use :func:`trial_seeds` to derive the same
        per-trial seeds as the sequential experiment runner.
    max_rounds:
        Round budget shared by all trials; ``None`` selects
        :func:`~repro.core.engine.default_max_rounds`.
    protocol_kwargs:
        Forwarded to the kernel (``agent_density``, ``num_agents``, ``lazy``,
        ``one_agent_per_vertex``).  Observer-instrumented options are not
        supported here — use the sequential engine for those.
    """
    if not supports_batched(protocol, protocol_kwargs):
        supported = ", ".join(sorted(BATCHED_PROTOCOLS))
        raise ValueError(
            f"protocol {protocol!r} with kwargs {protocol_kwargs!r} has no batched "
            f"kernel (batched protocols: {supported}); use the sequential Engine"
        )
    seeds = list(seeds)
    if not seeds:
        raise ValueError("need at least one trial seed")
    if not (0 <= source < graph.num_vertices):
        raise GraphError(f"source vertex {source} out of range")
    if not graph.is_connected():
        raise GraphError("the paper's protocols are defined on connected graphs")
    budget = max_rounds if max_rounds is not None else default_max_rounds(graph)
    if budget < 0:
        raise ValueError("max_rounds must be non-negative")

    gens = [_batch_generator(seed) for seed in seeds]
    num_trials = len(gens)
    kernel = _KERNELS[protocol](**protocol_kwargs)
    kernel.initialize(graph, int(source), gens)

    broadcast_times = np.full(num_trials, -1, dtype=np.int64)
    rounds_executed = np.zeros(num_trials, dtype=np.int64)
    active = num_trials

    def retire(finished_rows: np.ndarray, round_index: int) -> None:
        """Record the finished trials and swap their rows into the tail."""
        nonlocal active
        for row in finished_rows[::-1].tolist():
            trial = int(kernel.trial_ids[row])
            broadcast_times[trial] = round_index
            rounds_executed[trial] = round_index
            kernel.swap_rows(row, active - 1)
            active -= 1

    retire(np.flatnonzero(kernel.complete_rows(active)), 0)

    round_index = 0
    while active and round_index < budget:
        round_index += 1
        kernel.step(active)
        finished = np.flatnonzero(kernel.complete_rows(active))
        if finished.size:
            retire(finished, round_index)
    # Trials still running at budget exhaustion executed every round.
    for row in range(active):
        rounds_executed[int(kernel.trial_ids[row])] = round_index

    completed = broadcast_times >= 0
    return BatchResult(
        protocol=kernel.name,
        graph_name=graph.name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        source=int(source),
        broadcast_times=broadcast_times,
        completed=completed,
        rounds_executed=rounds_executed,
        num_agents=kernel.num_agents(),
        messages_sent=kernel.messages_by_trial(),
        metadata=[kernel.trial_metadata(t) for t in range(num_trials)],
    )
