"""Tests for the PUSH-PULL protocol."""

from __future__ import annotations

import numpy as np

from repro import simulate
from repro.core.engine import Engine
from repro.core.observers import EdgeUsageObserver, ObserverGroup
from repro.core.protocols import PushPullProtocol
from repro.graphs import Graph, complete_graph, double_star, star


class TestBasicBehaviour:
    def test_completes_on_small_graphs(self, small_star, small_double_star, small_complete):
        for graph in (small_star, small_double_star, small_complete):
            result = simulate("push-pull", graph, source=0, seed=1)
            assert result.completed

    def test_star_from_center_takes_one_round_of_pulls(self):
        # Lemma 2(b): every leaf pulls from the center, so one round suffices
        # when the source is the center.
        graph = star(50)
        result = simulate("push-pull", graph, source=0, seed=0)
        assert result.broadcast_time == 1

    def test_star_from_leaf_takes_at_most_two_rounds(self):
        # Lemma 2(b): T_ppull <= 2 on the star.
        graph = star(50)
        for seed in range(10):
            result = simulate("push-pull", graph, source=7, seed=seed)
            assert result.broadcast_time <= 2

    def test_faster_than_push_on_the_star(self):
        graph = star(60)
        push_time = simulate("push", graph, source=1, seed=3).broadcast_time
        ppull_time = simulate("push-pull", graph, source=1, seed=3).broadcast_time
        assert ppull_time < push_time

    def test_informed_count_monotone(self):
        graph = complete_graph(32)
        result = simulate("push-pull", graph, source=0, seed=2)
        history = result.informed_vertex_history
        assert all(b >= a for a, b in zip(history, history[1:]))

    def test_messages_are_n_per_round(self):
        graph = complete_graph(16)
        result = simulate("push-pull", graph, source=0, seed=1)
        assert result.messages_sent == 16 * result.rounds_executed

    def test_informed_mask_complete(self):
        protocol = PushPullProtocol()
        graph = double_star(30)
        Engine().run(protocol, graph, 5, seed=0)
        assert protocol.informed_mask().all()

    def test_two_vertex_graph(self):
        graph = Graph(2, [(0, 1)])
        result = simulate("push-pull", graph, source=1, seed=0)
        assert result.broadcast_time == 1


class TestDoubleStarSlowness:
    def test_double_star_needs_many_rounds(self):
        # Lemma 3(a): the bridge is sampled with probability ~4/n per round, so
        # the broadcast time is typically much larger than logarithmic.
        graph = double_star(200)
        times = [
            simulate("push-pull", graph, source=2, seed=seed).broadcast_time
            for seed in range(10)
        ]
        assert np.mean(times) > 15  # >> log2(200) would be ~7.6

    def test_bridge_edge_is_used(self):
        graph = double_star(40)
        observer = EdgeUsageObserver()
        Engine().run(
            PushPullProtocol(), graph, 2, seed=8, observers=ObserverGroup([observer])
        )
        assert (0, 1) in observer.counts  # information must cross the bridge


class TestDominanceOverPush:
    def test_never_slower_than_push_on_average(self):
        # Push-pull includes the push direction, so on any graph its mean
        # broadcast time is at most push's (up to sampling noise).
        for graph in (star(40), double_star(60), complete_graph(24)):
            push_mean = np.mean(
                [simulate("push", graph, source=2, seed=s).broadcast_time for s in range(5)]
            )
            ppull_mean = np.mean(
                [
                    simulate("push-pull", graph, source=2, seed=s).broadcast_time
                    for s in range(5)
                ]
            )
            assert ppull_mean <= push_mean * 1.2


class TestDeterminism:
    def test_same_seed_same_run(self, small_double_star):
        a = simulate("push-pull", small_double_star, source=2, seed=11)
        b = simulate("push-pull", small_double_star, source=2, seed=11)
        assert a.broadcast_time == b.broadcast_time
