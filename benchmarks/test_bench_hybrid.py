"""Benchmark / reproduction of the hybrid push-pull + agents suggestion (Section 1).

The introduction argues agent-based dissemination "separately or in
combination with push-pull" can improve broadcast times.  The harness runs the
hybrid protocol on the two families where exactly one of its constituents is
slow and asserts the hybrid tracks the faster constituent:

* double star — push-pull alone is Omega(n), the hybrid stays logarithmic;
* heavy binary tree — visit-exchange alone is Omega(n), the hybrid stays
  logarithmic.
"""

from __future__ import annotations

import math


from _helpers import mean_broadcast_time
from repro.graphs import double_star, heavy_binary_tree
from repro.graphs.heavy_binary_tree import tree_leaves


class TestTimings:
    def test_hybrid_on_double_star(self, benchmark):
        graph = double_star(512)
        benchmark.pedantic(
            lambda: mean_broadcast_time("hybrid-ppull-visitx", graph, source=2, trials=1),
            rounds=3,
            iterations=1,
        )

    def test_hybrid_on_heavy_tree(self, benchmark):
        graph = heavy_binary_tree(511)
        leaf = tree_leaves(graph)[0]
        benchmark.pedantic(
            lambda: mean_broadcast_time(
                "hybrid-ppull-visitx", graph, source=leaf, trials=1
            ),
            rounds=3,
            iterations=1,
        )


class TestShape:
    def test_hybrid_matches_the_faster_constituent_on_double_star(self, benchmark):
        graph = double_star(512)
        times = {}

        def measure():
            times["hybrid"] = mean_broadcast_time(
                "hybrid-ppull-visitx", graph, source=2, trials=3
            )
            times["push-pull"] = mean_broadcast_time("push-pull", graph, source=2, trials=3)
            times["visit-exchange"] = mean_broadcast_time(
                "visit-exchange", graph, source=2, trials=3
            )
            return times

        benchmark.pedantic(measure, rounds=1, iterations=1)
        assert times["hybrid"] < times["push-pull"]
        assert times["hybrid"] <= 2.0 * times["visit-exchange"]
        assert times["hybrid"] < 8 * math.log2(graph.num_vertices)

    def test_hybrid_matches_the_faster_constituent_on_heavy_tree(self, benchmark):
        graph = heavy_binary_tree(511)
        leaf = tree_leaves(graph)[0]
        times = {}

        def measure():
            times["hybrid"] = mean_broadcast_time(
                "hybrid-ppull-visitx", graph, source=leaf, trials=3
            )
            times["push-pull"] = mean_broadcast_time(
                "push-pull", graph, source=leaf, trials=3
            )
            times["visit-exchange"] = mean_broadcast_time(
                "visit-exchange", graph, source=leaf, trials=2
            )
            return times

        benchmark.pedantic(measure, rounds=1, iterations=1)
        assert times["hybrid"] < times["visit-exchange"]
        assert times["hybrid"] <= 2.5 * times["push-pull"]
        assert times["hybrid"] < 8 * math.log2(graph.num_vertices)
