"""Coupon-collector quantities.

Several of the paper's arguments reduce to the coupon-collector problem: the
star-center in the PUSH lower bound of Lemma 2(a) must sample (almost) all
``n`` leaves, and the last stage of the cycle-of-stars argument in Lemma 9(a)
is "it takes ``O(n^{1/3} log n)`` rounds (by coupon collector's) until all
cliques are informed".  These helpers give the exact expectations and tail
bounds used by the theory-prediction layer and its tests.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "harmonic_number",
    "expected_collection_time",
    "expected_partial_collection_time",
    "collection_time_tail_bound",
    "simulate_collection_time",
]


def harmonic_number(n: int) -> float:
    """Return ``H_n = sum_{i=1}^{n} 1/i`` (exact summation for moderate n)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if n == 0:
        return 0.0
    if n <= 10**6:
        return float(np.sum(1.0 / np.arange(1, n + 1)))
    # Asymptotic expansion for very large n (never needed by the experiments,
    # but keeps the function total).
    gamma = 0.5772156649015328606
    return math.log(n) + gamma + 1.0 / (2 * n) - 1.0 / (12 * n**2)


def expected_collection_time(num_coupons: int) -> float:
    """Expected draws to collect all ``num_coupons`` coupons: ``n * H_n``."""
    if num_coupons < 1:
        raise ValueError("need at least one coupon")
    return num_coupons * harmonic_number(num_coupons)


def expected_partial_collection_time(num_coupons: int, target: int) -> float:
    """Expected draws to collect any ``target`` distinct coupons out of ``n``.

    ``E = n * (H_n - H_{n-target})``.  Lemma 2(a) uses the case
    ``target = n - 1`` ("all leaves except possibly one").
    """
    if not 0 <= target <= num_coupons:
        raise ValueError("target must lie between 0 and num_coupons")
    if target == 0:
        return 0.0
    return num_coupons * (
        harmonic_number(num_coupons) - harmonic_number(num_coupons - target)
    )


def collection_time_tail_bound(num_coupons: int, deviation: float) -> float:
    """Upper bound on ``P[T > n ln n + c n]``: the classical ``e^{-c}`` bound."""
    if num_coupons < 1:
        raise ValueError("need at least one coupon")
    return float(min(1.0, math.exp(-deviation)))


def simulate_collection_time(
    num_coupons: int, rng: np.random.Generator, *, target: int = None
) -> int:
    """Simulate one coupon-collector run; returns the number of draws.

    Used by the property tests to check the closed forms above against
    empirical means.
    """
    if num_coupons < 1:
        raise ValueError("need at least one coupon")
    goal = num_coupons if target is None else int(target)
    if not 0 <= goal <= num_coupons:
        raise ValueError("target must lie between 0 and num_coupons")
    seen = np.zeros(num_coupons, dtype=bool)
    collected = 0
    draws = 0
    while collected < goal:
        draws += 1
        coupon = int(rng.integers(num_coupons))
        if not seen[coupon]:
            seen[coupon] = True
            collected += 1
    return draws
