"""Regular-graph experiments: Theorems 1, 23, 24 and 25.

These experiments check the paper's regular-graph results empirically:

* ``thm1-regular-random`` and ``thm1-regular-slow`` — push and visit-exchange
  have the same asymptotic broadcast time on d-regular graphs with
  ``d = Omega(log n)``, both on a fast family (random regular graphs, where
  both are logarithmic) and on a slow family (a cycle of cliques, where both
  are polynomial).
* ``thm23-meetx-regular`` — visit-exchange is at most an additive ``O(log n)``
  slower than meet-exchange on regular graphs.
* ``thm24-25-lower`` — both agent protocols need ``Omega(log n)`` rounds on
  regular graphs of at least logarithmic degree.
"""

from __future__ import annotations

import math

import numpy as np

from ..graphs.builders import with_case_spec
from ..graphs.regular import clique_cycle, hypercube, random_regular_graph
from .config import ExperimentConfig, GraphCase, ProtocolSpec
from .registry import register

__all__ = [
    "thm1_random_regular_experiment",
    "thm1_clique_cycle_experiment",
    "thm23_meetx_experiment",
    "lower_bound_experiment",
    "regular_degree_for",
]


def regular_degree_for(num_vertices: int, *, factor: float = 2.0) -> int:
    """A degree satisfying the ``d = Omega(log n)`` assumption: ``~factor * log2 n``.

    The returned degree is adjusted so that ``n * d`` is even (a d-regular
    graph exists) and ``d < n``.
    """
    n = int(num_vertices)
    degree = max(4, int(math.ceil(factor * math.log2(max(n, 2)))))
    degree = min(degree, n - 1)
    if (n * degree) % 2 != 0:
        degree += 1
    return min(degree, n - 1)


@with_case_spec(
    "random_regular_graph",
    lambda size, seed: {
        "num_vertices": size,
        "degree": regular_degree_for(size),
        "seed": seed,
    },
)
def _build_random_regular_case(num_vertices: int, seed: int) -> GraphCase:
    degree = regular_degree_for(num_vertices)
    rng = np.random.default_rng(seed)
    graph = random_regular_graph(num_vertices, degree, rng)
    return GraphCase(
        graph=graph,
        source=0,
        size_parameter=num_vertices,
        metadata={"degree": degree},
    )


def thm1_random_regular_experiment() -> ExperimentConfig:
    """Theorem 1 on random regular graphs (the fast, logarithmic regime)."""
    return ExperimentConfig(
        experiment_id="thm1-regular-random",
        title="Push vs visit-exchange on random regular graphs (Theorem 1)",
        paper_reference="Theorem 1 (Theorems 10 and 19)",
        description=(
            "On d-regular graphs with d = Omega(log n), push and "
            "visit-exchange have the same asymptotic broadcast time. Random "
            "regular graphs with d ~ 2 log2 n realise the logarithmic regime; "
            "the measured T_push / T_visitx ratio should stay bounded by a "
            "constant across the sweep."
        ),
        graph_builder=_build_random_regular_case,
        sizes=(128, 256, 512, 1024, 2048),
        protocols=(
            ProtocolSpec("push"),
            ProtocolSpec("push-pull"),
            ProtocolSpec("visit-exchange"),
        ),
        trials=5,
        max_rounds=lambda n: int(200 * math.log2(max(n, 2))),
        claim_ids=("thm1",),
    )


def _clique_cycle_size(num_cliques: int) -> int:
    # Clique size grows logarithmically with the total size so that the degree
    # assumption d = Omega(log n) holds along the sweep.
    total_target = num_cliques * max(8, int(2 * math.log2(max(num_cliques, 2))))
    return max(8, int(2 * math.log2(max(total_target, 2))))


@with_case_spec(
    "clique_cycle",
    lambda size, seed: {"num_cliques": size, "clique_size": _clique_cycle_size(size)},
)
def _build_clique_cycle_case(num_cliques: int, seed: int) -> GraphCase:
    clique_size = _clique_cycle_size(num_cliques)
    graph = clique_cycle(num_cliques, clique_size)
    return GraphCase(
        graph=graph,
        source=0,
        size_parameter=num_cliques,
        metadata={"clique_size": clique_size, "degree": clique_size + 1},
    )


def thm1_clique_cycle_experiment() -> ExperimentConfig:
    """Theorem 1 on a slow regular family (cycle of cliques, diameter-bound)."""
    return ExperimentConfig(
        experiment_id="thm1-regular-slow",
        title="Push vs visit-exchange on a cycle of cliques (Theorem 1, slow regime)",
        paper_reference="Theorem 1; the paper's path-of-d-cliques remark",
        description=(
            "A cycle of cliques joined by perfect matchings is regular with "
            "degree Theta(log n) and has broadcast time Theta(#cliques) for "
            "every protocol (the rumor travels hop by hop). Theorem 1 predicts "
            "that push and visit-exchange remain within constant factors of "
            "each other even in this polynomial-time regime."
        ),
        graph_builder=_build_clique_cycle_case,
        sizes=(8, 16, 32, 64),
        protocols=(
            ProtocolSpec("push"),
            ProtocolSpec("push-pull"),
            ProtocolSpec("visit-exchange"),
        ),
        trials=5,
        max_rounds=lambda k: int(400 * k),
        claim_ids=("thm1",),
        notes="The size parameter is the number of cliques on the cycle.",
    )


def thm23_meetx_experiment() -> ExperimentConfig:
    """Theorem 23: T_visitx <= T_meetx + O(log n) on regular graphs."""
    return ExperimentConfig(
        experiment_id="thm23-meetx-regular",
        title="Visit-exchange vs meet-exchange on random regular graphs (Theorem 23)",
        paper_reference="Theorem 23",
        description=(
            "On regular graphs of at least logarithmic degree, once all agents "
            "are informed (the meet-exchange completion event) visit-exchange "
            "needs only O(log n) further rounds to cover every vertex, so "
            "T_visitx is at most T_meetx plus an additive logarithm."
        ),
        graph_builder=_build_random_regular_case,
        sizes=(128, 256, 512, 1024),
        protocols=(
            ProtocolSpec("visit-exchange"),
            ProtocolSpec("meet-exchange"),
        ),
        trials=5,
        max_rounds=lambda n: int(400 * math.log2(max(n, 2))),
        claim_ids=("thm23",),
    )


def lower_bound_experiment() -> ExperimentConfig:
    """Theorems 24 and 25: Omega(log n) lower bounds for the agent protocols."""
    return ExperimentConfig(
        experiment_id="thm24-25-lower",
        title="Logarithmic lower bounds on regular graphs (Theorems 24 and 25)",
        paper_reference="Theorems 24 and 25",
        description=(
            "On d-regular graphs with d = Omega(log n) and O(n) agents, both "
            "visit-exchange and meet-exchange need Omega(log n) rounds: some "
            "vertices receive no agent visit at all (and some agents meet "
            "nobody) during the first c log n rounds."
        ),
        graph_builder=_build_random_regular_case,
        sizes=(256, 512, 1024, 2048),
        protocols=(
            ProtocolSpec("visit-exchange"),
            ProtocolSpec("meet-exchange"),
        ),
        trials=5,
        max_rounds=lambda n: int(400 * math.log2(max(n, 2))),
        claim_ids=("thm24", "thm25"),
    )


@with_case_spec("hypercube", lambda size, seed: {"dimension": size})
def _build_hypercube_case(dimension: int, seed: int) -> GraphCase:
    graph = hypercube(dimension)
    return GraphCase(
        graph=graph,
        source=0,
        size_parameter=dimension,
        metadata={"degree": dimension},
    )


def thm1_hypercube_experiment() -> ExperimentConfig:
    """Theorem 1 on hypercubes (degree exactly log2 n, structured topology)."""
    return ExperimentConfig(
        experiment_id="thm1-regular-hypercube",
        title="Push vs visit-exchange on hypercubes (Theorem 1, structured family)",
        paper_reference="Theorem 1 (Theorems 10 and 19)",
        description=(
            "The d-dimensional hypercube is d-regular with d = log2 n, sitting "
            "exactly at the boundary of the theorem's degree assumption; both "
            "protocols should need Theta(log n) rounds and track each other."
        ),
        graph_builder=_build_hypercube_case,
        sizes=(7, 8, 9, 10, 11),
        protocols=(
            ProtocolSpec("push"),
            ProtocolSpec("visit-exchange"),
        ),
        trials=5,
        max_rounds=lambda d: int(400 * d),
        claim_ids=("thm1",),
        notes="The size parameter is the hypercube dimension (n = 2^d).",
    )


register("thm1-regular-random", thm1_random_regular_experiment)
register("thm1-regular-slow", thm1_clique_cycle_experiment)
register("thm1-regular-hypercube", thm1_hypercube_experiment)
register("thm23-meetx-regular", thm23_meetx_experiment)
register("thm24-25-lower", lower_bound_experiment)
