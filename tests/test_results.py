"""Tests for result records (repro.core.results)."""

from __future__ import annotations

import json
import math

import pytest

from repro.core.results import RoundRecord, RunResult, TrialSet


def make_result(
    broadcast_time=7,
    completed=True,
    protocol="push",
    num_vertices=10,
    **overrides,
):
    payload = dict(
        protocol=protocol,
        graph_name="toy",
        num_vertices=num_vertices,
        num_edges=9,
        source=0,
        broadcast_time=broadcast_time,
        rounds_executed=broadcast_time or 5,
        completed=completed,
    )
    payload.update(overrides)
    return RunResult(**payload)


class TestRunResult:
    def test_completed_requires_broadcast_time(self):
        with pytest.raises(ValueError):
            make_result(broadcast_time=None, completed=True)

    def test_incomplete_must_not_have_broadcast_time(self):
        with pytest.raises(ValueError):
            make_result(broadcast_time=5, completed=False)

    def test_incomplete_result_is_valid(self):
        result = make_result(broadcast_time=None, completed=False)
        assert not result.completed
        assert result.broadcast_time is None

    def test_normalized_broadcast_time(self):
        result = make_result(broadcast_time=20, num_vertices=16)
        assert result.normalized_broadcast_time == pytest.approx(20 / 4.0)

    def test_normalized_none_when_incomplete(self):
        result = make_result(broadcast_time=None, completed=False)
        assert result.normalized_broadcast_time is None

    def test_round_trip_dict(self):
        result = make_result(metadata={"alpha": 1.0})
        clone = RunResult.from_dict(result.to_dict())
        assert clone == result

    def test_to_json_is_valid_json(self):
        text = make_result().to_json()
        assert json.loads(text)["protocol"] == "push"


class TestRoundRecord:
    def test_defaults(self):
        record = RoundRecord(round_index=3, informed_vertices=5)
        assert record.informed_agents == 0
        assert record.extra == {}


class TestTrialSet:
    def test_add_and_len(self):
        trials = TrialSet(protocol="push", graph_name="toy", num_vertices=10)
        trials.add(make_result())
        trials.add(make_result(broadcast_time=9))
        assert len(trials) == 2

    def test_protocol_mismatch_rejected(self):
        trials = TrialSet(protocol="push", graph_name="toy", num_vertices=10)
        with pytest.raises(ValueError):
            trials.add(make_result(protocol="pull"))

    def test_vertex_count_mismatch_rejected(self):
        trials = TrialSet(protocol="push", graph_name="toy", num_vertices=10)
        with pytest.raises(ValueError):
            trials.add(make_result(num_vertices=20))

    def test_broadcast_time_statistics(self):
        trials = TrialSet.from_results(
            [make_result(broadcast_time=t) for t in (4, 6, 8)]
        )
        assert trials.broadcast_times() == [4, 6, 8]
        assert trials.mean_broadcast_time() == pytest.approx(6.0)
        assert trials.min_broadcast_time() == 4
        assert trials.max_broadcast_time() == 8

    def test_completion_rate_with_failures(self):
        trials = TrialSet(protocol="push", graph_name="toy", num_vertices=10)
        trials.add(make_result())
        trials.add(make_result(broadcast_time=None, completed=False))
        assert trials.completion_rate == pytest.approx(0.5)
        assert len(trials.completed_results) == 1

    def test_empty_statistics(self):
        trials = TrialSet(protocol="push", graph_name="toy", num_vertices=10)
        assert trials.mean_broadcast_time() is None
        assert trials.max_broadcast_time() is None
        assert trials.completion_rate == 0.0

    def test_from_results_rejects_empty(self):
        with pytest.raises(ValueError):
            TrialSet.from_results([])

    def test_to_dict_round_trips_counts(self):
        trials = TrialSet.from_results([make_result(), make_result(broadcast_time=3)])
        payload = trials.to_dict()
        assert payload["protocol"] == "push"
        assert len(payload["results"]) == 2
