"""Content-addressed result store and resumable sweep orchestration.

Every (graph, protocol, seeds, backend) cell in this package is a pure
function of its spec, so finished cells are cached *exactly*: the store maps
a canonical cell key (:mod:`repro.store.keys`) to a compressed artifact
holding the full :class:`~repro.core.results.TrialSet`
(:mod:`repro.store.artifacts`), sweeps journal their progress for resume and
garbage-collection anchoring (:mod:`repro.store.journal`), and
:mod:`repro.store.orchestrator` resolves (spec, case) pairs into the cell
plans the experiment runner executes and the reporting layer looks up.

Storage is pluggable (:mod:`repro.store.backends`): the same
:class:`ResultStore` facade runs over a local directory
(:class:`~repro.store.backends.LocalBackend`) or over the read-only HTTP
service of :mod:`repro.store.service` (``repro store serve``) through
:class:`~repro.store.backends.RemoteBackend`, which read-through-caches
every fetched object locally so a warm central store serves many laptops
and CI runs while each object crosses the network at most once.

Enable it with ``store=`` on :func:`repro.experiments.runner.run_trial_set`
/ :func:`~repro.experiments.runner.run_experiment`, the ``--store`` CLI flag
or the ``REPRO_STORE`` environment variable (a directory path or an
``http(s)://host:port`` service URL); manage it with
``repro store serve|ls|info|gc|export``.
"""

from .artifacts import (
    STORE_ENV_VAR,
    ResultStore,
    StoreCorruptionError,
    StoreError,
    resolve_store,
)
from .backends import (
    CACHE_ENV_VAR,
    LocalBackend,
    RemoteBackend,
    StoreBackend,
    resolve_backend,
)
from .journal import SweepJournal, sweep_id
from .keys import (
    SEMANTICS_VERSION,
    STORE_FORMAT_VERSION,
    canonical_json,
    cell_key,
    dynamics_spec,
    graph_fingerprint,
    trial_cell_payload,
)
from .orchestrator import CellPlan, resolve_cell, sweep_payload
from .service import StoreService, serve

__all__ = [
    "CACHE_ENV_VAR",
    "CellPlan",
    "LocalBackend",
    "RemoteBackend",
    "ResultStore",
    "SEMANTICS_VERSION",
    "STORE_ENV_VAR",
    "STORE_FORMAT_VERSION",
    "StoreBackend",
    "StoreCorruptionError",
    "StoreError",
    "StoreService",
    "SweepJournal",
    "canonical_json",
    "cell_key",
    "dynamics_spec",
    "graph_fingerprint",
    "resolve_backend",
    "resolve_cell",
    "resolve_store",
    "serve",
    "sweep_id",
    "sweep_payload",
    "trial_cell_payload",
]
