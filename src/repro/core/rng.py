"""Deterministic random-number management for simulations.

Every stochastic component in this package draws from a
:class:`numpy.random.Generator`.  Experiments need reproducibility across
processes and across trials, so instead of passing raw integer seeds around we
use numpy's ``SeedSequence`` spawning discipline: a single experiment seed
deterministically derives an independent stream for every (trial, component)
pair.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Union

import numpy as np

__all__ = ["RngFactory", "make_rng", "spawn_rngs", "derive_seed"]

SeedLike = Union[int, None, np.random.SeedSequence, np.random.Generator]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from any seed-like object.

    Passing an existing generator returns it unchanged, which lets library
    functions accept either a seed or a generator without caring which.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent generators from one seed."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's own bit stream.
        children = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(child)) for child in children]
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def derive_seed(base_seed: int, *components: Union[int, str]) -> int:
    """Deterministically derive a child seed from a base seed and labels.

    The derivation hashes the component labels into entropy for a
    ``SeedSequence`` so that, e.g., trial 7 of experiment "fig1a-star" always
    receives the same stream regardless of execution order.  String components
    are hashed with SHA-256 (not Python's built-in ``hash``, which is salted
    per process), so the derived seed is stable across runs and machines.
    """
    entropy = [int(base_seed) & 0xFFFFFFFF]
    for component in components:
        if isinstance(component, str):
            digest = hashlib.sha256(component.encode("utf-8")).digest()
            entropy.append(int.from_bytes(digest[:4], "little"))
        else:
            entropy.append(int(component) & 0xFFFFFFFF)
    sequence = np.random.SeedSequence(entropy)
    return int(sequence.generate_state(1, dtype=np.uint64)[0] & 0x7FFFFFFFFFFFFFFF)


@dataclass
class RngFactory:
    """Named, reproducible generator factory for an experiment run.

    Each distinct ``(name, index)`` request yields an independent stream that
    is stable across runs with the same base seed.  The factory records which
    streams were requested, which makes it easy to assert in tests that two
    code paths did not accidentally share randomness.
    """

    base_seed: int
    _issued: Dict[str, int] = field(default_factory=dict)

    def generator(self, name: str, index: int = 0) -> np.random.Generator:
        """Return the generator for stream ``name``/``index``."""
        key = f"{name}#{index}"
        self._issued[key] = self._issued.get(key, 0) + 1
        return make_rng(derive_seed(self.base_seed, name, index))

    def generators(self, name: str, count: int) -> List[np.random.Generator]:
        """Return ``count`` generators for consecutively indexed streams."""
        return [self.generator(name, index) for index in range(count)]

    @property
    def issued_streams(self) -> Dict[str, int]:
        """Mapping from stream key to the number of times it was requested."""
        return dict(self._issued)

    def duplicated_streams(self) -> List[str]:
        """Return stream keys that were requested more than once."""
        return [key for key, count in self._issued.items() if count > 1]
