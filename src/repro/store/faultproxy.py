"""A fault-injecting HTTP proxy for hardening tests and the CI sweep farm.

``FaultProxy`` sits between store clients and a ``repro store serve`` hub
and misbehaves *on purpose*, with seeded randomness so every failure
sequence is reproducible:

* **500s** — answer with a transient server error instead of forwarding
  (exercises the retry/backoff loop);
* **delays** — sleep before forwarding (exercises timeouts and heartbeat
  renewal under latency);
* **drops** — close the connection without answering, either before the
  request reaches the hub or after the hub already applied it (the *after*
  case is the ambiguous-failure path that makes idempotency mandatory:
  the client must retry a request whose first copy already succeeded);
* **truncations** — forward the request, then send the response with its
  full declared ``Content-Length`` but only half the body (exercises the
  structural length checks of the wire frame and the SHA-256 tripwires).

Faults apply to forwarded *requests*, so one proxied sweep sees every
failure mode on every route — publishes, leases, object fetches.  The
proxy is transparent otherwise: method, body and the headers that matter
(``Authorization``, ``Content-Type``) pass through verbatim.

Run standalone for CI (``python -m repro.store.faultproxy --upstream
http://127.0.0.1:8080 --error-rate 0.1 ...``) or in-process in tests via
the context manager, mirroring :class:`~repro.store.service.StoreService`.
"""

from __future__ import annotations

import argparse
import random
import threading
import urllib.error
import urllib.request
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Tuple

__all__ = ["FaultProxy", "FaultSpec", "main"]

#: Headers forwarded verbatim in each direction.
_REQUEST_HEADERS = ("Authorization", "Content-Type")


@dataclass(frozen=True)
class FaultSpec:
    """Per-request fault probabilities (independent draws, seeded).

    At most one fault fires per request, drawn in order error → delay →
    drop → truncate; ``drop_after`` picks (per drop) whether the connection
    dies before or after the request reached the hub.
    """

    error_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = 0.05
    drop_rate: float = 0.0
    truncate_rate: float = 0.0
    seed: int = 0


class _FaultHTTPServer(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(self, address: Tuple[str, int], upstream: str, spec: FaultSpec) -> None:
        super().__init__(address, _FaultRequestHandler)
        self.upstream = upstream.rstrip("/")
        self.spec = spec
        self._rng = random.Random(spec.seed)
        self._rng_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self.stats = {"forwarded": 0, "errors": 0, "delays": 0, "drops": 0, "truncations": 0}

    def draw(self) -> Tuple[str, bool]:
        """Pick this request's fault: ``(kind, drop_after_forwarding)``."""
        with self._rng_lock:
            roll = self._rng.random
            if roll() < self.spec.error_rate:
                return "error", False
            if roll() < self.spec.delay_rate:
                return "delay", False
            if roll() < self.spec.drop_rate:
                return "drop", roll() < 0.5
            if roll() < self.spec.truncate_rate:
                return "truncate", False
            return "none", False

    def count(self, what: str) -> None:
        with self._stats_lock:
            self.stats[what] = self.stats.get(what, 0) + 1


class _FaultRequestHandler(BaseHTTPRequestHandler):
    """Forward one request to the upstream hub, possibly sabotaged."""

    server_version = "repro-faultproxy"
    protocol_version = "HTTP/1.1"

    def _forward(self) -> Optional[Tuple[int, bytes, str]]:
        """Send the request upstream; returns (status, body, content type)."""
        length = int(self.headers.get("Content-Length", 0) or 0)
        body = self.rfile.read(length) if length else None
        headers = {
            name: self.headers[name] for name in _REQUEST_HEADERS if self.headers.get(name)
        }
        request = urllib.request.Request(
            self.server.upstream + self.path, data=body, headers=headers, method=self.command
        )
        try:
            with urllib.request.urlopen(request, timeout=60.0) as response:
                return (
                    response.status,
                    response.read(),
                    response.headers.get("Content-Type", "application/octet-stream"),
                )
        except urllib.error.HTTPError as exc:
            return (
                exc.code,
                exc.read(),
                exc.headers.get("Content-Type", "application/json"),
            )
        except (urllib.error.URLError, OSError, TimeoutError):
            return None  # upstream down: surfaces as a 502 below

    def _respond(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _handle(self) -> None:
        import time

        fault, drop_after = self.server.draw()
        if fault == "error":
            # Injected *before* forwarding: the hub never sees the request,
            # so a retried idempotent request is exactly re-sendable.
            self.server.count("errors")
            self.close_connection = True
            self._respond(500, b'{"error": "injected fault"}', "application/json")
            return
        if fault == "delay":
            self.server.count("delays")
            time.sleep(self.server.spec.delay_seconds)
        if fault == "drop" and not drop_after:
            # Connection dies before the hub sees anything.
            self.server.count("drops")
            self.close_connection = True
            return
        forwarded = self._forward()
        self.server.count("forwarded")
        if fault == "drop" and drop_after:
            # The ambiguous case: the hub already applied the request, the
            # client never learns it.  Idempotent retries must converge.
            self.server.count("drops")
            self.close_connection = True
            return
        if forwarded is None:
            self.close_connection = True
            self._respond(502, b'{"error": "upstream unreachable"}', "application/json")
            return
        status, body, content_type = forwarded
        if fault == "truncate" and len(body) > 1:
            # Declared full length, half the bytes: the client's structural
            # and checksum tripwires must both be able to catch this.
            self.server.count("truncations")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body[: len(body) // 2])
            self.close_connection = True
            return
        self._respond(status, body, content_type)

    do_GET = do_PUT = do_POST = do_DELETE = do_PATCH = _handle

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # the proxy is test scaffolding; stay quiet


class FaultProxy:
    """A startable fault-injection proxy in front of one upstream hub."""

    def __init__(
        self,
        upstream: str,
        *,
        spec: FaultSpec = FaultSpec(),
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.server = _FaultHTTPServer((host, port), upstream, spec)
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self.server.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def stats(self) -> dict:
        with self.server._stats_lock:
            return dict(self.server.stats)

    def start(self) -> "FaultProxy":
        if self._thread is None:
            self._thread = threading.Thread(
                target=lambda: self.server.serve_forever(poll_interval=0.05),
                name="repro-faultproxy",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "FaultProxy":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def main(argv: Optional[list] = None) -> int:
    """CLI entry point: ``python -m repro.store.faultproxy --upstream ...``."""
    parser = argparse.ArgumentParser(description="fault-injecting store proxy")
    parser.add_argument("--upstream", required=True, help="hub URL to forward to")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8081)
    parser.add_argument("--error-rate", type=float, default=0.0)
    parser.add_argument("--delay-rate", type=float, default=0.0)
    parser.add_argument("--delay-seconds", type=float, default=0.05)
    parser.add_argument("--drop-rate", type=float, default=0.0)
    parser.add_argument("--truncate-rate", type=float, default=0.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    spec = FaultSpec(
        error_rate=args.error_rate,
        delay_rate=args.delay_rate,
        delay_seconds=args.delay_seconds,
        drop_rate=args.drop_rate,
        truncate_rate=args.truncate_rate,
        seed=args.seed,
    )
    proxy = FaultProxy(args.upstream, spec=spec, host=args.host, port=args.port)
    print(f"fault proxy on {proxy.url} -> {args.upstream} ({spec})", flush=True)
    try:
        proxy.server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        proxy.server.server_close()
        print(f"fault proxy stats: {proxy.stats}", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
