"""Concentration inequalities used throughout the paper's proofs.

The appendix of the paper collects the bounds its arguments rely on:
multiplicative Chernoff bounds for sums of independent 0/1 variables
(Theorem 26), a tail bound for sums of i.i.d. geometric variables (Lemma 27)
and a stochastic-domination composition lemma (Lemma 28).  This module
provides the same bounds as plain functions so the tests can check the
simulators' empirical tails against them, plus binomial-tail helpers used by
the t-visit-exchange congestion argument of Section 5.
"""

from __future__ import annotations

import math

__all__ = [
    "chernoff_upper_multiplicative",
    "chernoff_upper_heavy",
    "chernoff_lower_multiplicative",
    "geometric_sum_tail",
    "binomial_tail_upper",
    "expected_geometric_sum",
]


def chernoff_upper_multiplicative(mean: float, delta: float) -> float:
    """Theorem 26(a): ``P[X >= (1 + delta) mu] <= exp(-mu delta^2 / 3)`` for 0 < delta <= 1."""
    if mean < 0:
        raise ValueError("mean must be non-negative")
    if not 0 < delta <= 1:
        raise ValueError("delta must lie in (0, 1]")
    return float(min(1.0, math.exp(-mean * delta * delta / 3.0)))


def chernoff_upper_heavy(mean: float, factor: float) -> float:
    """Theorem 26(b): ``P[X >= beta mu] <= 2^{-beta mu}`` for ``beta >= 2e``."""
    if mean < 0:
        raise ValueError("mean must be non-negative")
    if factor < 2 * math.e:
        raise ValueError("factor must be at least 2e")
    return float(min(1.0, 2.0 ** (-factor * mean)))


def chernoff_lower_multiplicative(mean: float, delta: float) -> float:
    """Theorem 26(c): ``P[X <= (1 - delta) mu] <= exp(-mu delta^2 / 2)`` for 0 < delta < 1."""
    if mean < 0:
        raise ValueError("mean must be non-negative")
    if not 0 < delta < 1:
        raise ValueError("delta must lie in (0, 1)")
    return float(min(1.0, math.exp(-mean * delta * delta / 2.0)))


def expected_geometric_sum(count: int, success_probability: float) -> float:
    """Expectation of a sum of ``count`` i.i.d. Geometric(p) variables: ``count / p``."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if not 0 < success_probability <= 1:
        raise ValueError("success probability must lie in (0, 1]")
    return count / success_probability


def geometric_sum_tail(
    count: int, success_probability: float, threshold: float
) -> float:
    """Lemma 27: ``P[F >= k] <= exp(-k p / 8)`` for ``k >= 2 * E[F]``.

    ``F`` is a sum of ``count`` i.i.d. geometric variables with parameter ``p``.
    For thresholds below ``2 E[F]`` the bound does not apply and 1.0 is
    returned (a trivially valid bound).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if not 0 < success_probability <= 1:
        raise ValueError("success probability must lie in (0, 1]")
    mean = expected_geometric_sum(count, success_probability)
    if threshold < 2 * mean:
        return 1.0
    return float(min(1.0, math.exp(-threshold * success_probability / 8.0)))


def binomial_tail_upper(trials: int, probability: float, threshold: int) -> float:
    """Crude upper bound ``P[Bin(n, p) >= k] <= (e n p / k)^k`` used in Lemma 17.

    The proof of Lemma 17 bounds the number of agents visiting a vertex of a
    tweaked visit-exchange round by ``(e gamma / i)^i``; this helper exposes
    the same binomial-to-power bound for the tests of the congestion analysis.
    """
    if trials < 0:
        raise ValueError("trials must be non-negative")
    if not 0 <= probability <= 1:
        raise ValueError("probability must lie in [0, 1]")
    if threshold <= 0:
        return 1.0
    mean = trials * probability
    if mean == 0:
        return 0.0 if threshold > 0 else 1.0
    return float(min(1.0, (math.e * mean / threshold) ** threshold))
