"""Structural validation helpers for graphs used in experiments.

All protocols in the paper assume a connected undirected graph; the regular
graph theorems additionally need ``d = Omega(log n)``.  The helpers here turn
those assumptions into explicit, testable checks so experiments fail loudly on
an invalid substrate rather than producing silently meaningless numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from .graph import Graph, GraphError

__all__ = [
    "GraphReport",
    "inspect_graph",
    "require_connected",
    "require_regular",
    "require_degree_at_least_log",
    "degree_histogram",
]


@dataclass(frozen=True)
class GraphReport:
    """Summary of the structural properties relevant to the paper's theorems."""

    name: str
    num_vertices: int
    num_edges: int
    min_degree: int
    max_degree: int
    mean_degree: float
    is_connected: bool
    is_regular: bool
    is_bipartite: bool
    meets_log_degree: bool

    def describe(self) -> str:
        """Return a one-line human readable summary."""
        flags = []
        if self.is_regular:
            flags.append(f"{self.min_degree}-regular")
        if self.is_bipartite:
            flags.append("bipartite")
        if self.meets_log_degree:
            flags.append("d>=log n")
        flag_text = ", ".join(flags) if flags else "irregular"
        return (
            f"{self.name}: n={self.num_vertices}, m={self.num_edges}, "
            f"deg in [{self.min_degree}, {self.max_degree}] "
            f"(mean {self.mean_degree:.2f}), connected={self.is_connected} [{flag_text}]"
        )


def inspect_graph(graph: Graph) -> GraphReport:
    """Compute a :class:`GraphReport` for ``graph``."""
    degrees = graph.degrees
    n = graph.num_vertices
    min_degree = int(degrees.min())
    return GraphReport(
        name=graph.name,
        num_vertices=n,
        num_edges=graph.num_edges,
        min_degree=min_degree,
        max_degree=int(degrees.max()),
        mean_degree=float(degrees.mean()),
        is_connected=graph.is_connected(),
        is_regular=graph.is_regular(),
        is_bipartite=graph.is_bipartite(),
        meets_log_degree=min_degree >= math.log(max(n, 2)),
    )


def require_connected(graph: Graph) -> Graph:
    """Return ``graph`` unchanged or raise if it is not connected."""
    if not graph.is_connected():
        raise GraphError(f"graph {graph.name!r} is not connected")
    return graph


def require_regular(graph: Graph) -> int:
    """Return the common degree ``d`` or raise if the graph is not regular."""
    if not graph.is_regular():
        raise GraphError(f"graph {graph.name!r} is not regular")
    return graph.regularity_degree()


def require_degree_at_least_log(graph: Graph, *, factor: float = 1.0) -> Graph:
    """Check the ``d >= factor * ln n`` assumption used by Theorems 10/19/23."""
    threshold = factor * math.log(max(graph.num_vertices, 2))
    min_degree = int(graph.degrees.min())
    if min_degree < threshold:
        raise GraphError(
            f"graph {graph.name!r} has minimum degree {min_degree} < "
            f"{threshold:.2f} required by the logarithmic-degree assumption"
        )
    return graph


def degree_histogram(graph: Graph) -> List[int]:
    """Return ``hist`` where ``hist[d]`` counts vertices of degree ``d``."""
    degrees = graph.degrees
    hist = np.bincount(degrees.astype(np.int64))
    return [int(x) for x in hist]
