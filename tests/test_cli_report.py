"""Tests for the CLI report command and run-all (slower CLI paths)."""

from __future__ import annotations

from pathlib import Path


from repro.cli.main import main


class TestReportCommand:
    def test_report_written_to_file(self, tmp_path: Path, capsys):
        output = tmp_path / "report.md"
        # A very small scale keeps this test cheap while still exercising the
        # full pipeline (every registered experiment + coupling + fairness).
        exit_code = main(
            ["report", "--scale", "0.1", "--trials", "1", "--output", str(output)]
        )
        assert exit_code == 0
        text = output.read_text()
        assert text.startswith("# Experiment report")
        assert "### `fig1a-star`" in text
        assert "### `coupling-congestion`" in text
        assert "### `fairness`" in text
        assert "wrote" in capsys.readouterr().out

    def test_report_to_stdout(self, capsys):
        exit_code = main(["report", "--scale", "0.08", "--trials", "1"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "# Experiment report" in out
        assert "thm24-25-lower" in out


class TestRunAllCommand:
    def test_run_all_prints_every_experiment_table(self, capsys):
        exit_code = main(["run-all", "--scale", "0.08", "--trials", "1"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Star graph" in out
        assert "Double star" in out
        assert "random regular graphs (Theorem 1)" in out
