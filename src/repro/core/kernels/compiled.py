"""Compiled per-trial protocol runners (the ``backend="compiled"`` family).

The batched numpy kernels amortize Python dispatch across trials but still
execute O(1) *array operations* of width n (or agents) per round.  At the
million-node tier a different shape wins: one tight scalar loop per trial
over only the active boundary — the informed frontier, the uninformed list,
the agent population — compiled by numba when it is installed
(``pip install repro[accel]``).

Everything here is written in the numba-compatible subset of Python/numpy and
works identically *without* numba: :func:`maybe_jit` is the identity when the
import fails, leaving a slow but exact pure-Python reference.  That is what
makes the backend testable in environments without the extra, and it pins the
semantics — the ``accel`` CI job asserts the jitted functions are
bit-identical to their ``.py_func`` originals.

Stream family
-------------
The runners draw from a splitmix64 stream seeded per trial through
``np.random.SeedSequence`` (see :func:`trial_state`), and consume one draw
per *active* position per round — draws are frontier-shaped, unlike the
batched kernels' fixed per-vertex streams.  Results therefore match the
other backends statistically (CI overlap), not sample-for-sample, exactly
like the batched/sequential relationship; a compiled cell is a distinct
point in the result store's key space because the resolved backend is part
of the cell payload.

All 64-bit arithmetic is kept in ``np.uint64`` with explicit-width shift
constants so the jitted and pure-Python executions wrap identically; the
pure-Python driver runs under ``np.errstate(over="ignore")`` since numpy
warns on (intended, modular) scalar overflow.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "HAVE_NUMBA",
    "NUMBA_VERSION",
    "maybe_jit",
    "trial_state",
    "COMPILED_PROTOCOLS",
]

try:  # pragma: no cover - exercised only when the [accel] extra is installed
    import numba

    HAVE_NUMBA = True
    NUMBA_VERSION = numba.__version__
except ImportError:
    numba = None
    HAVE_NUMBA = False
    NUMBA_VERSION = None


def maybe_jit(func):
    """``numba.njit(cache=True)`` when numba is available, identity otherwise.

    The original Python function stays reachable as ``.py_func`` on the
    jitted dispatcher (numba's own attribute), which the equivalence tests
    use to compare compiled against interpreted execution.
    """
    if HAVE_NUMBA:
        return numba.njit(cache=True, nogil=True)(func)
    return func


#: Protocols with a compiled runner — the full registry.
COMPILED_PROTOCOLS = frozenset(
    {
        "push",
        "pull",
        "push-pull",
        "visit-exchange",
        "meet-exchange",
        "hybrid-ppull-visitx",
    }
)


def trial_state(seed) -> np.ndarray:
    """Length-1 ``uint64`` splitmix64 state for one trial.

    Accepts an int-like or a ``SeedSequence`` (generators carry hidden state
    and are rejected by the driver); the state word comes from the
    SeedSequence expansion so nearby integer seeds still yield decorrelated
    streams.
    """
    if not isinstance(seed, np.random.SeedSequence):
        seed = np.random.SeedSequence(int(seed))
    return seed.generate_state(1, np.uint64).copy()


# Explicitly typed constants: numba freezes them as uint64, and the
# pure-Python path stays in uint64 scalar arithmetic (NEP 50), so both
# executions wrap modulo 2**64 identically.
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_S27 = np.uint64(27)
_S30 = np.uint64(30)
_S31 = np.uint64(31)
_S32 = np.uint64(32)
_S63 = np.uint64(63)


@maybe_jit
def _next_u64(state):
    """One splitmix64 output; advances ``state`` (length-1 uint64 array)."""
    state[0] = state[0] + _GOLDEN
    z = state[0]
    z = (z ^ (z >> _S30)) * _MIX1
    z = (z ^ (z >> _S27)) * _MIX2
    return z ^ (z >> _S31)


@maybe_jit
def _pick(state, bound):
    """Uniform offset in ``[0, bound)`` by 32-bit fixed-point multiply-shift.

    Same truncation scheme as the batched samplers (top 32 bits times the
    bound, shifted), so the bias bound — ``bound * 2**-32`` — matches the
    batched 32-bit precision tier.
    """
    hi = np.int64(_next_u64(state) >> _S32)
    return (hi * bound) >> 32


@maybe_jit
def _place_agents(state, slot_sources, num_agents, one_per_vertex, n):
    """Initial agent positions: stationary via directed-slot sampling."""
    pos = np.empty(num_agents, np.int64)
    if one_per_vertex:
        for a in range(num_agents):
            pos[a] = a
    else:
        num_slots = slot_sources.shape[0]
        for a in range(num_agents):
            pos[a] = slot_sources[_pick(state, num_slots)]
    return pos


@maybe_jit
def _walk_step(state, indptr, indices, pos, num_agents, lazy):
    """Advance every agent one step (lazy: extra coin, stay on heads)."""
    for a in range(num_agents):
        u = pos[a]
        v = indices[indptr[u] + _pick(state, indptr[u + 1] - indptr[u])]
        if lazy:
            if (_next_u64(state) >> _S63) == np.uint64(1):
                v = u
        pos[a] = v


@maybe_jit
def _run_push(indptr, indices, source, max_rounds, state, vhist):
    n = indptr.shape[0] - 1
    informed = np.zeros(n, np.bool_)
    uninf_nbr = np.empty(n, np.int64)
    for v in range(n):
        uninf_nbr[v] = indptr[v + 1] - indptr[v]
    informed[source] = True
    for j in range(indptr[source], indptr[source + 1]):
        uninf_nbr[indices[j]] -= 1
    frontier = np.empty(n, np.int64)
    newly = np.empty(n, np.int64)
    fsize = 0
    if uninf_nbr[source] > 0:
        frontier[0] = source
        fsize = 1
    count = 1
    messages = 0
    t = 0
    rec = vhist.shape[0] > 0
    if rec:
        vhist[0] = count
    while count < n and t < max_rounds:
        t += 1
        messages += count
        nn = 0
        for i in range(fsize):
            u = frontier[i]
            v = indices[indptr[u] + _pick(state, indptr[u + 1] - indptr[u])]
            if not informed[v]:
                informed[v] = True
                count += 1
                newly[nn] = v
                nn += 1
        for i in range(nn):
            v = newly[i]
            for j in range(indptr[v], indptr[v + 1]):
                uninf_nbr[indices[j]] -= 1
        live = 0
        for i in range(fsize):
            if uninf_nbr[frontier[i]] > 0:
                frontier[live] = frontier[i]
                live += 1
        for i in range(nn):
            if uninf_nbr[newly[i]] > 0:
                frontier[live] = newly[i]
                live += 1
        fsize = live
        if rec:
            vhist[t] = count
    return (t if count >= n else -1), t, messages


@maybe_jit
def _run_pull(indptr, indices, source, max_rounds, state, vhist):
    n = indptr.shape[0] - 1
    informed = np.zeros(n, np.bool_)
    informed[source] = True
    uninformed = np.empty(n, np.int64)
    usize = 0
    for v in range(n):
        if v != source:
            uninformed[usize] = v
            usize += 1
    got = np.empty(n, np.bool_)
    count = 1
    messages = 0
    t = 0
    rec = vhist.shape[0] > 0
    if rec:
        vhist[0] = count
    while count < n and t < max_rounds:
        t += 1
        messages += usize
        # Two passes keep the informed test on the pre-round state: decide
        # for every puller first, apply afterwards.
        for i in range(usize):
            u = uninformed[i]
            v = indices[indptr[u] + _pick(state, indptr[u + 1] - indptr[u])]
            got[i] = informed[v]
        live = 0
        for i in range(usize):
            if got[i]:
                informed[uninformed[i]] = True
                count += 1
            else:
                uninformed[live] = uninformed[i]
                live += 1
        usize = live
        if rec:
            vhist[t] = count
    return (t if count >= n else -1), t, messages


@maybe_jit
def _run_push_pull(indptr, indices, source, max_rounds, state, vhist):
    n = indptr.shape[0] - 1
    informed = np.zeros(n, np.bool_)
    informed[source] = True
    uninf_nbr = np.empty(n, np.int64)
    for v in range(n):
        uninf_nbr[v] = indptr[v + 1] - indptr[v]
    for j in range(indptr[source], indptr[source + 1]):
        uninf_nbr[indices[j]] -= 1
    frontier = np.empty(n, np.int64)
    newly = np.empty(n, np.int64)
    candidates = np.empty(2 * n, np.int64)
    fsize = 0
    if uninf_nbr[source] > 0:
        frontier[0] = source
        fsize = 1
    uninformed = np.empty(n, np.int64)
    usize = 0
    for v in range(n):
        if v != source:
            uninformed[usize] = v
            usize += 1
    count = 1
    messages = 0
    t = 0
    rec = vhist.shape[0] > 0
    if rec:
        vhist[0] = count
    while count < n and t < max_rounds:
        t += 1
        messages += n
        # Collect both directions against the pre-round state (push draws
        # first, then pull draws — the stream order is part of the backend's
        # semantics), then apply with the informed flag deduplicating.
        nc = 0
        for i in range(fsize):
            u = frontier[i]
            v = indices[indptr[u] + _pick(state, indptr[u + 1] - indptr[u])]
            if not informed[v]:
                candidates[nc] = v
                nc += 1
        for i in range(usize):
            u = uninformed[i]
            v = indices[indptr[u] + _pick(state, indptr[u + 1] - indptr[u])]
            if informed[v]:
                candidates[nc] = u
                nc += 1
        nn = 0
        for i in range(nc):
            v = candidates[i]
            if not informed[v]:
                informed[v] = True
                count += 1
                newly[nn] = v
                nn += 1
        for i in range(nn):
            v = newly[i]
            for j in range(indptr[v], indptr[v + 1]):
                uninf_nbr[indices[j]] -= 1
        live = 0
        for i in range(usize):
            if not informed[uninformed[i]]:
                uninformed[live] = uninformed[i]
                live += 1
        usize = live
        live = 0
        for i in range(fsize):
            if uninf_nbr[frontier[i]] > 0:
                frontier[live] = frontier[i]
                live += 1
        for i in range(nn):
            if uninf_nbr[newly[i]] > 0:
                frontier[live] = newly[i]
                live += 1
        fsize = live
        if rec:
            vhist[t] = count
    return (t if count >= n else -1), t, messages


@maybe_jit
def _run_visit_exchange(
    indptr,
    indices,
    source,
    max_rounds,
    state,
    slot_sources,
    num_agents,
    one_per_vertex,
    lazy,
    vhist,
    ahist,
):
    n = indptr.shape[0] - 1
    pos = _place_agents(state, slot_sources, num_agents, one_per_vertex, n)
    vertex_informed = np.zeros(n, np.bool_)
    vertex_informed[source] = True
    agent_informed = np.zeros(num_agents, np.bool_)
    acount = 0
    for a in range(num_agents):
        if pos[a] == source:
            agent_informed[a] = True
            acount += 1
    vcount = 1
    t = 0
    rec = vhist.shape[0] > 0
    if rec:
        vhist[0] = vcount
        ahist[0] = acount
    while vcount < n and t < max_rounds:
        t += 1
        _walk_step(state, indptr, indices, pos, num_agents, lazy)
        # Carriers (informed in a previous round) inform their vertex; then
        # uninformed agents learn from any now-informed vertex.  Agents
        # flipped in the second loop are never re-read within the round, so
        # in-place updates preserve the "no chaining" rule.
        for a in range(num_agents):
            if agent_informed[a]:
                v = pos[a]
                if not vertex_informed[v]:
                    vertex_informed[v] = True
                    vcount += 1
        for a in range(num_agents):
            if not agent_informed[a] and vertex_informed[pos[a]]:
                agent_informed[a] = True
                acount += 1
        if rec:
            vhist[t] = vcount
            ahist[t] = acount
    return (t if vcount >= n else -1), t, 0


@maybe_jit
def _run_meet_exchange(
    indptr,
    indices,
    source,
    max_rounds,
    state,
    slot_sources,
    num_agents,
    one_per_vertex,
    lazy,
    ahist,
):
    n = indptr.shape[0] - 1
    pos = _place_agents(state, slot_sources, num_agents, one_per_vertex, n)
    # inf_round[a]: round in which agent a was informed (-1 = never); an
    # agent spreads only when inf_round < current round ("no chaining").
    inf_round = np.full(num_agents, -1, np.int64)
    acount = 0
    for a in range(num_agents):
        if pos[a] == source:
            inf_round[a] = 0
            acount += 1
    source_still_informs = acount == 0
    # Carrier-presence stamp per vertex: vmark[v] == t means a carrier is on
    # v this round — a round-indexed reset-free meeting map.
    vmark = np.full(n, -1, np.int64)
    t = 0
    rec = ahist.shape[0] > 0
    if rec:
        ahist[0] = acount
    while acount < num_agents and t < max_rounds:
        t += 1
        _walk_step(state, indptr, indices, pos, num_agents, lazy)
        if source_still_informs:
            visited = False
            for a in range(num_agents):
                if pos[a] == source and inf_round[a] < 0:
                    inf_round[a] = t
                    acount += 1
                    visited = True
                # An already-informed agent visiting the source also
                # retires it, matching the kernel's "first visit" rule.
                elif pos[a] == source:
                    visited = True
            if visited:
                source_still_informs = False
        for a in range(num_agents):
            if 0 <= inf_round[a] and inf_round[a] < t:
                vmark[pos[a]] = t
        for a in range(num_agents):
            if inf_round[a] < 0 and vmark[pos[a]] == t:
                inf_round[a] = t
                acount += 1
        if rec:
            ahist[t] = acount
    completed = acount >= num_agents
    return (t if completed else -1), t, 0, source_still_informs


@maybe_jit
def _run_hybrid(
    indptr,
    indices,
    source,
    max_rounds,
    state,
    slot_sources,
    num_agents,
    lazy,
    vhist,
    ahist,
):
    n = indptr.shape[0] - 1
    pos = _place_agents(state, slot_sources, num_agents, False, n)
    vertex_informed = np.zeros(n, np.bool_)
    vertex_informed[source] = True
    agent_informed = np.zeros(num_agents, np.bool_)
    acount = 0
    for a in range(num_agents):
        if pos[a] == source:
            agent_informed[a] = True
            acount += 1
    uninf_nbr = np.empty(n, np.int64)
    for v in range(n):
        uninf_nbr[v] = indptr[v + 1] - indptr[v]
    for j in range(indptr[source], indptr[source + 1]):
        uninf_nbr[indices[j]] -= 1
    frontier = np.empty(n, np.int64)
    newly = np.empty(n, np.int64)
    candidates = np.empty(2 * n, np.int64)
    fsize = 0
    if uninf_nbr[source] > 0:
        frontier[0] = source
        fsize = 1
    uninformed = np.empty(n, np.int64)
    usize = 0
    for v in range(n):
        if v != source:
            uninformed[usize] = v
            usize += 1
    vcount = 1
    messages = 0
    t = 0
    rec = vhist.shape[0] > 0
    if rec:
        vhist[0] = vcount
        ahist[0] = acount
    while vcount < n and t < max_rounds:
        t += 1
        messages += n
        # Push-pull half (pre-round state, push draws then pull draws).
        nc = 0
        for i in range(fsize):
            u = frontier[i]
            v = indices[indptr[u] + _pick(state, indptr[u + 1] - indptr[u])]
            if not vertex_informed[v]:
                candidates[nc] = v
                nc += 1
        for i in range(usize):
            u = uninformed[i]
            v = indices[indptr[u] + _pick(state, indptr[u + 1] - indptr[u])]
            if vertex_informed[v]:
                candidates[nc] = u
                nc += 1
        nn = 0
        for i in range(nc):
            v = candidates[i]
            if not vertex_informed[v]:
                vertex_informed[v] = True
                vcount += 1
                newly[nn] = v
                nn += 1
        # Visit-exchange half over the shared vertex set.
        _walk_step(state, indptr, indices, pos, num_agents, lazy)
        for a in range(num_agents):
            if agent_informed[a]:
                v = pos[a]
                if not vertex_informed[v]:
                    vertex_informed[v] = True
                    vcount += 1
                    newly[nn] = v
                    nn += 1
        for a in range(num_agents):
            if not agent_informed[a] and vertex_informed[pos[a]]:
                agent_informed[a] = True
                acount += 1
        # Frontier/uninformed maintenance over both halves' newly informed.
        for i in range(nn):
            v = newly[i]
            for j in range(indptr[v], indptr[v + 1]):
                uninf_nbr[indices[j]] -= 1
        live = 0
        for i in range(usize):
            if not vertex_informed[uninformed[i]]:
                uninformed[live] = uninformed[i]
                live += 1
        usize = live
        live = 0
        for i in range(fsize):
            if uninf_nbr[frontier[i]] > 0:
                frontier[live] = frontier[i]
                live += 1
        for i in range(nn):
            if uninf_nbr[newly[i]] > 0:
                frontier[live] = newly[i]
                live += 1
        fsize = live
        if rec:
            vhist[t] = vcount
            ahist[t] = acount
    return (t if vcount >= n else -1), t, messages


#: Runner registry used by the driver (:func:`repro.core.batch.run_compiled`).
RUNNERS = {
    "push": _run_push,
    "pull": _run_pull,
    "push-pull": _run_push_pull,
    "visit-exchange": _run_visit_exchange,
    "meet-exchange": _run_meet_exchange,
    "hybrid-ppull-visitx": _run_hybrid,
}
