"""Tests for the dynamic-population extension (repro.extensions.dynamic_agents)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import simulate
from repro.extensions import DynamicVisitExchange
from repro.graphs import GraphError, complete_graph, double_star, random_regular_graph


class TestValidation:
    def test_bad_rates_rejected(self):
        with pytest.raises(ValueError):
            DynamicVisitExchange(death_rate=1.0)
        with pytest.raises(ValueError):
            DynamicVisitExchange(failure_fraction=1.5)
        with pytest.raises(ValueError):
            DynamicVisitExchange(agent_density=0)

    def test_out_of_range_source_rejected(self):
        with pytest.raises(GraphError):
            DynamicVisitExchange().run(complete_graph(10), 99, seed=0)


class TestZeroChurnMatchesStaticProtocol:
    def test_no_deaths_no_births_behaves_like_visit_exchange(self):
        graph = double_star(100)
        dynamic = DynamicVisitExchange(death_rate=0.0, birth_rate=0.0)
        dynamic_times = []
        static_times = []
        for seed in range(5):
            result = dynamic.run(graph, 2, seed=seed)
            assert result.completed
            assert result.total_births == 0
            assert result.total_deaths == 0
            assert result.min_population == result.initial_agents
            dynamic_times.append(result.broadcast_time)
            static_times.append(
                simulate("visit-exchange", graph, source=2, seed=50 + seed).broadcast_time
            )
        assert 0.4 * np.mean(static_times) < np.mean(dynamic_times) < 2.5 * np.mean(static_times)


class TestChurn:
    def test_population_stays_near_initial_with_balanced_churn(self, rng):
        graph = random_regular_graph(100, 10, rng)
        result = DynamicVisitExchange(death_rate=0.05).run(
            graph, 0, seed=3, max_rounds=200
        )
        assert result.total_deaths > 0
        assert result.total_births > 0
        assert 0.5 * result.initial_agents < result.mean_population < 1.5 * result.initial_agents

    def test_broadcast_still_completes_under_churn(self, rng):
        graph = random_regular_graph(128, 12, rng)
        result = DynamicVisitExchange(death_rate=0.05).run(graph, 0, seed=4)
        assert result.completed
        # Still roughly logarithmic: far below anything linear in n.
        assert result.broadcast_time < 128

    def test_modest_churn_costs_only_a_constant_factor(self, rng):
        graph = random_regular_graph(128, 12, rng)
        static_times = [
            DynamicVisitExchange(death_rate=0.0, birth_rate=0.0)
            .run(graph, 0, seed=s)
            .broadcast_time
            for s in range(4)
        ]
        churn_times = [
            DynamicVisitExchange(death_rate=0.05).run(graph, 0, seed=s).broadcast_time
            for s in range(4)
        ]
        assert np.mean(churn_times) < 4 * np.mean(static_times) + 10

    def test_histories_have_matching_lengths(self, rng):
        graph = random_regular_graph(64, 8, rng)
        result = DynamicVisitExchange(death_rate=0.02).run(graph, 0, seed=5)
        assert len(result.population_history) == len(result.informed_vertex_history)
        assert len(result.population_history) == result.rounds_executed + 1


class TestFailureInjection:
    def test_mass_failure_kills_agents_but_broadcast_recovers(self, rng):
        graph = random_regular_graph(128, 12, rng)
        result = DynamicVisitExchange(
            death_rate=0.02, failure_round=3, failure_fraction=0.8
        ).run(graph, 0, seed=6)
        # The failure is visible in the population history...
        population_before = result.population_history[2]
        population_after = result.population_history[3]
        assert population_after < 0.5 * population_before
        # ...but births replenish the population and the broadcast completes.
        assert result.completed
        assert result.population_history[-1] > population_after

    def test_failure_without_births_still_completes_if_some_agents_survive(self, rng):
        graph = complete_graph(64)
        result = DynamicVisitExchange(
            death_rate=0.0, birth_rate=0.0, failure_round=2, failure_fraction=0.9
        ).run(graph, 0, seed=7)
        assert result.completed
        assert result.min_population >= 1
