"""Graph substrate: the CSR graph type and every topology used by the paper.

The paper evaluates its protocols on a handful of carefully chosen families
(Figure 1) plus general d-regular graphs.  Each family has its own module with
the construction, the vertex-role helpers the experiments need (e.g. which
vertex is the star center or the tree root), and a docstring restating the
paper's claims for it.
"""

from .graph import Graph, GraphError
from .builders import (
    builder_spec,
    builder_version,
    register_builder,
    registered_builders,
    with_case_spec,
)
from .dynamic import (
    BernoulliEdgeFailures,
    ComposedSchedule,
    MarkovEdgeChurn,
    NodeCrashes,
    PeriodicLinkFlapping,
    RoundActivity,
    StaticSchedule,
    TopologySchedule,
    resolve_dynamics,
)
from .star import star
from .double_star import double_star
from .heavy_binary_tree import heavy_binary_tree
from .siamese_tree import siamese_heavy_binary_tree
from .cycle_stars_cliques import (
    CycleStarsLayout,
    cycle_of_stars_of_cliques,
    cycle_stars_layout,
)
from .regular import (
    circulant_graph,
    clique_cycle,
    clique_path,
    complete_graph,
    cycle_graph,
    hypercube,
    random_regular_graph,
    torus_grid,
)
from .random_graphs import (
    connected_erdos_renyi,
    erdos_renyi,
    preferential_attachment,
)
from .validation import (
    GraphReport,
    degree_histogram,
    inspect_graph,
    require_connected,
    require_degree_at_least_log,
    require_regular,
)

__all__ = [
    "Graph",
    "GraphError",
    "register_builder",
    "builder_version",
    "builder_spec",
    "registered_builders",
    "with_case_spec",
    "TopologySchedule",
    "RoundActivity",
    "StaticSchedule",
    "BernoulliEdgeFailures",
    "PeriodicLinkFlapping",
    "NodeCrashes",
    "MarkovEdgeChurn",
    "ComposedSchedule",
    "resolve_dynamics",
    "star",
    "double_star",
    "heavy_binary_tree",
    "siamese_heavy_binary_tree",
    "CycleStarsLayout",
    "cycle_of_stars_of_cliques",
    "cycle_stars_layout",
    "complete_graph",
    "cycle_graph",
    "hypercube",
    "torus_grid",
    "random_regular_graph",
    "clique_path",
    "clique_cycle",
    "circulant_graph",
    "erdos_renyi",
    "connected_erdos_renyi",
    "preferential_attachment",
    "GraphReport",
    "inspect_graph",
    "require_connected",
    "require_regular",
    "require_degree_at_least_log",
    "degree_histogram",
]
