"""The scenario corpus: real-world and generative topologies, one spec API.

This package widens the reproduction beyond the paper's hand-built graph
families, in three layers:

* :mod:`~repro.scenarios.ingest` — parse edge-list/CSV/Matrix Market files
  into CSR graphs with strict duplicate/self-loop handling and a versioned,
  content-addressed ``file`` builder;
* :mod:`~repro.scenarios.generators` — vectorized power-law
  (configuration-model), stochastic-block-model and random-geometric
  families, registered with the builder registry at 2^20 scale;
* :mod:`~repro.scenarios.spec` / :mod:`~repro.scenarios.corpus` — the
  unified :func:`resolve_scenario` entry point and the YAML/JSON corpus
  manifest format that composes graph source × protocol × dynamics ×
  multi-rumor contention into one store-backed resumable sweep
  (``repro corpus run|status|report``).

:func:`resolve_dynamics` here is the canonical spelling of the dynamics
resolver (``repro.graphs.dynamic.resolve_dynamics`` is a deprecated shim),
and :func:`resolve_store` is re-exported so scenario-driven code needs one
import surface for all three resolvers.
"""

from .corpus import (
    Corpus,
    CorpusRunSummary,
    ScenarioRunSummary,
    corpus_report,
    corpus_status,
    load_corpus,
    register_corpus,
    run_corpus,
)
from .generators import (
    powerlaw_configuration,
    random_geometric,
    stochastic_block_model,
)
from .ingest import IngestError, file_fingerprint, ingest_graph, sniff_format
from .spec import (
    ScenarioError,
    ScenarioSpec,
    graph_source_kinds,
    resolve_dynamics,
    resolve_graph_spec,
    resolve_scenario,
    resolve_store,
)

__all__ = [
    "Corpus",
    "CorpusRunSummary",
    "IngestError",
    "ScenarioError",
    "ScenarioRunSummary",
    "ScenarioSpec",
    "corpus_report",
    "corpus_status",
    "file_fingerprint",
    "graph_source_kinds",
    "ingest_graph",
    "load_corpus",
    "powerlaw_configuration",
    "random_geometric",
    "register_corpus",
    "resolve_dynamics",
    "resolve_graph_spec",
    "resolve_scenario",
    "resolve_store",
    "run_corpus",
    "sniff_format",
    "stochastic_block_model",
]
