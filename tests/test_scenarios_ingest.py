"""Tests for graph ingestion (repro.scenarios.ingest)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.scenarios import IngestError, file_fingerprint, ingest_graph, sniff_format
from repro.scenarios.ingest import BUILDER_VERSION, file_builder_params
from repro.store.keys import graph_fingerprint


def edge_set(graph):
    """The undirected edge set as canonical (lo, hi) tuples."""
    return {tuple(sorted(e)) for e in graph.edges()}


class TestEdgeListFormat:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "toy.edges"
        path.write_text("# a comment\n0 1\n1 2\n2 3\n3 0\n")
        graph = ingest_graph(path)
        assert graph.num_vertices == 4
        assert edge_set(graph) == {(0, 1), (1, 2), (2, 3), (0, 3)}
        assert graph.name == "toy"

    def test_extra_columns_ignored(self, tmp_path):
        path = tmp_path / "weighted.edges"
        path.write_text("0 1 0.5 1999\n1 2 0.25 2001\n")
        graph = ingest_graph(path)
        assert edge_set(graph) == {(0, 1), (1, 2)}

    def test_string_labels_relabeled_lexicographically(self, tmp_path):
        path = tmp_path / "named.edges"
        path.write_text("carol alice\nbob carol\n")
        graph = ingest_graph(path)
        # alice=0, bob=1, carol=2 by sorted label order.
        assert graph.num_vertices == 3
        assert edge_set(graph) == {(0, 2), (1, 2)}

    def test_numeric_labels_sorted_numerically(self, tmp_path):
        path = tmp_path / "sparse-ids.edges"
        path.write_text("10 2\n2 100\n")
        graph = ingest_graph(path)
        # 2=0, 10=1, 100=2 — numeric, not lexicographic ("10" < "2").
        assert edge_set(graph) == {(0, 1), (0, 2)}

    def test_order_independent_fingerprint(self, tmp_path):
        a = tmp_path / "a.edges"
        b = tmp_path / "b.edges"
        a.write_text("0 1\n1 2\n2 3\n")
        b.write_text("2 3\n# reordered listing, reversed pairs\n2 1\n1 0\n")
        assert graph_fingerprint(ingest_graph(a)) == graph_fingerprint(ingest_graph(b))
        # ... while the *input* identity (byte hash) honestly differs.
        assert file_fingerprint(a) != file_fingerprint(b)


class TestCsvFormat:
    def test_round_trip_with_header(self, tmp_path):
        path = tmp_path / "net.csv"
        path.write_text("source,target,weight\n0,1,3\n1,2,5\n")
        graph = ingest_graph(path)
        assert edge_set(graph) == {(0, 1), (1, 2)}

    def test_headerless_csv(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("0,1\n1,2\n")
        assert edge_set(ingest_graph(path)) == {(0, 1), (1, 2)}

    def test_header_detection_needs_both_fields(self, tmp_path):
        # "from,7" is data whose first label happens to be a header token.
        path = tmp_path / "tricky.csv"
        path.write_text("from,7\n7,8\n")
        graph = ingest_graph(path)
        assert graph.num_vertices == 3


class TestMatrixMarketFormat:
    def test_symmetric_round_trip(self, tmp_path):
        path = tmp_path / "toy.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "% comment\n4 4 3\n2 1\n3 2\n4 3\n"
        )
        graph = ingest_graph(path)
        assert graph.num_vertices == 4
        assert edge_set(graph) == {(0, 1), (1, 2), (2, 3)}

    def test_general_with_isolated_vertex(self, tmp_path):
        # Declared dimension 5 keeps vertex 4 even though no edge touches it.
        path = tmp_path / "iso.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n5 5 2\n1 2 1.0\n2 3 1.0\n"
        )
        graph = ingest_graph(path)
        assert graph.num_vertices == 5
        assert edge_set(graph) == {(0, 1), (1, 2)}

    def test_general_both_directions_is_duplicate(self, tmp_path):
        path = tmp_path / "dup.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 2 1.0\n2 1 1.0\n"
        )
        with pytest.raises(IngestError, match="duplicate edge"):
            ingest_graph(path)

    def test_rejects_non_square_and_bad_counts(self, tmp_path):
        rect = tmp_path / "rect.mtx"
        rect.write_text("%%MatrixMarket matrix coordinate real general\n3 4 1\n1 2 1\n")
        with pytest.raises(IngestError, match="square"):
            ingest_graph(rect)
        short = tmp_path / "short.mtx"
        short.write_text("%%MatrixMarket matrix coordinate real general\n3 3 2\n1 2 1\n")
        with pytest.raises(IngestError, match="declared 2 entries"):
            ingest_graph(short)


class TestStrictness:
    def test_self_loop_rejected_with_location(self, tmp_path):
        path = tmp_path / "loopy.edges"
        path.write_text("0 1\n2 2\n")
        with pytest.raises(IngestError) as excinfo:
            ingest_graph(path)
        message = str(excinfo.value)
        assert "line 2" in message and "self-loop" in message

    def test_duplicate_rejected_including_reversed(self, tmp_path):
        path = tmp_path / "dup.edges"
        path.write_text("0 1\n1 2\n1 0\n")
        with pytest.raises(IngestError) as excinfo:
            ingest_graph(path)
        message = str(excinfo.value)
        assert "duplicate edge (0, 1)" in message
        assert "lines 1, 3" in message

    def test_canonicalize_cleans_instead(self, tmp_path):
        path = tmp_path / "messy.edges"
        path.write_text("0 1\n1 1\n1 0\n1 2\n")
        with pytest.raises(IngestError):
            ingest_graph(path)
        graph = ingest_graph(path, canonicalize=True)
        assert edge_set(graph) == {(0, 1), (1, 2)}

    def test_empty_input_rejected(self, tmp_path):
        path = tmp_path / "empty.edges"
        path.write_text("# nothing but comments\n")
        with pytest.raises(IngestError, match="no edges"):
            ingest_graph(path)

    def test_missing_file_and_unknown_format(self, tmp_path):
        with pytest.raises(IngestError, match="no such file"):
            ingest_graph(tmp_path / "absent.edges")
        path = tmp_path / "x.edges"
        path.write_text("0 1\n")
        with pytest.raises(IngestError, match="unknown ingest format"):
            ingest_graph(path, format="graphml")


class TestBuilderIdentity:
    def test_sniff_format(self, tmp_path):
        assert sniff_format(tmp_path / "a.mtx") == "mtx"
        assert sniff_format(tmp_path / "a.mm") == "mtx"
        assert sniff_format(tmp_path / "a.csv") == "csv"
        banner = tmp_path / "banner.txt"
        banner.write_text("%%MatrixMarket matrix coordinate real general\n1 1 0\n")
        assert sniff_format(banner) == "mtx"
        plain = tmp_path / "plain.txt"
        plain.write_text("0 1\n")
        assert sniff_format(plain) == "edges"

    def test_params_are_content_addressed(self, tmp_path):
        a = tmp_path / "a.edges"
        a.write_text("0 1\n1 2\n")
        params = file_builder_params(a)
        assert set(params) == {"sha256", "format", "canonicalize"}
        assert params["format"] == "edges"
        # Moving the file does not change its identity...
        moved = tmp_path / "sub" / "renamed.edges"
        moved.parent.mkdir()
        moved.write_bytes(a.read_bytes())
        assert file_builder_params(moved) == params
        # ...while editing a byte, or flipping canonicalize, does.
        a.write_text("0 1\n1 2\n2 3\n")
        assert file_builder_params(a)["sha256"] != params["sha256"]
        assert file_builder_params(moved, canonicalize=True) != params

    def test_file_family_is_registered(self):
        from repro.graphs.builders import builder_spec

        spec = builder_spec("file", {"sha256": "ab", "format": "edges"})
        assert spec["family"] == "file"
        assert spec["version"] == BUILDER_VERSION

    def test_ingested_graph_is_csr_valid(self, tmp_path):
        path = tmp_path / "tri.edges"
        path.write_text("0 1\n1 2\n0 2\n")
        graph = ingest_graph(path)
        degrees = np.diff(graph.indptr)
        assert degrees.tolist() == [2, 2, 2]
        assert graph.num_edges == 3
