"""Ablation experiments for the design choices called out in DESIGN.md.

The paper's model leaves a few knobs whose effect is worth quantifying even
though the theorems are insensitive to them:

* **agent density** ``alpha = |A| / n`` (the theorems only require a linear
  number of agents; halving or doubling the density should shift the constants
  but not the growth rate),
* **initial placement** (stationary i.i.d. vs exactly one agent per vertex —
  the remark after Lemma 11 says the regular-graph results hold for both), and
* **laziness** of the walks (required for meet-exchange on bipartite graphs,
  otherwise a constant-factor slowdown).
"""

from __future__ import annotations

import math

import numpy as np

from ..graphs.builders import with_case_spec
from ..graphs.regular import random_regular_graph
from ..graphs.star import star
from .config import ExperimentConfig, GraphCase, ProtocolSpec
from .registry import register
from .regular_graphs import regular_degree_for

__all__ = [
    "agent_density_experiment",
    "initial_placement_experiment",
    "laziness_experiment",
]


@with_case_spec(
    "random_regular_graph",
    lambda size, seed: {
        "num_vertices": size,
        "degree": regular_degree_for(size),
        "seed": seed,
    },
)
def _build_random_regular_case(num_vertices: int, seed: int) -> GraphCase:
    degree = regular_degree_for(num_vertices)
    rng = np.random.default_rng(seed)
    graph = random_regular_graph(num_vertices, degree, rng)
    return GraphCase(graph=graph, source=0, size_parameter=num_vertices, metadata={"degree": degree})


def agent_density_experiment() -> ExperimentConfig:
    """Visit-exchange broadcast time as a function of the agent density alpha."""
    return ExperimentConfig(
        experiment_id="ablation-agent-density",
        title="Ablation: agent density alpha for visit-exchange",
        paper_reference="Section 1 (linear number of agents); open problems",
        description=(
            "Visit-exchange on random regular graphs with alpha in {0.5, 1, 2}. "
            "Any constant density yields the same logarithmic growth; only the "
            "constant factor changes (fewer agents, slower constants)."
        ),
        graph_builder=_build_random_regular_case,
        sizes=(256, 512, 1024),
        protocols=(
            ProtocolSpec("visit-exchange", kwargs={"agent_density": 0.5}, label="visitx-alpha-0.5"),
            ProtocolSpec("visit-exchange", kwargs={"agent_density": 1.0}, label="visitx-alpha-1"),
            ProtocolSpec("visit-exchange", kwargs={"agent_density": 2.0}, label="visitx-alpha-2"),
        ),
        trials=5,
        max_rounds=lambda n: int(400 * math.log2(max(n, 2))),
    )


def initial_placement_experiment() -> ExperimentConfig:
    """Stationary placement vs one agent per vertex (remark after Lemma 11)."""
    return ExperimentConfig(
        experiment_id="ablation-initial-placement",
        title="Ablation: stationary vs one-agent-per-vertex initial placement",
        paper_reference="Remark after Lemma 11",
        description=(
            "On regular graphs the stationary distribution is uniform, so the "
            "two initialisations should be statistically indistinguishable; "
            "the experiment confirms the broadcast-time distributions match."
        ),
        graph_builder=_build_random_regular_case,
        sizes=(256, 512, 1024),
        protocols=(
            ProtocolSpec("visit-exchange", label="visitx-stationary"),
            ProtocolSpec(
                "visit-exchange",
                kwargs={"one_agent_per_vertex": True},
                label="visitx-one-per-vertex",
            ),
        ),
        trials=5,
        max_rounds=lambda n: int(400 * math.log2(max(n, 2))),
    )


@with_case_spec("star", lambda size, seed: {"num_leaves": size})
def _build_star_case(num_leaves: int, seed: int) -> GraphCase:
    return GraphCase(graph=star(num_leaves), source=1, size_parameter=num_leaves)


def laziness_experiment() -> ExperimentConfig:
    """Lazy vs non-lazy walks for visit-exchange on a bipartite graph.

    Visit-exchange terminates either way (vertices store the rumor), so the
    star lets us isolate the constant-factor cost of laziness; meet-exchange
    is run lazily only, since without laziness it may never finish on a
    bipartite graph.
    """
    return ExperimentConfig(
        experiment_id="ablation-laziness",
        title="Ablation: lazy vs non-lazy random walks on the star",
        paper_reference="Section 3 (lazy walks on bipartite graphs)",
        description=(
            "Lazy walks halve the expected progress per round, so visit-"
            "exchange with lazy walks should be roughly twice as slow, while "
            "remaining logarithmic."
        ),
        graph_builder=_build_star_case,
        sizes=(256, 512, 1024),
        protocols=(
            ProtocolSpec("visit-exchange", label="visitx-simple"),
            ProtocolSpec("visit-exchange", kwargs={"lazy": True}, label="visitx-lazy"),
            ProtocolSpec("meet-exchange", kwargs={"lazy": True}, label="meetx-lazy"),
        ),
        trials=5,
        max_rounds=lambda n: int(40 * n),
    )


register("ablation-agent-density", agent_density_experiment)
register("ablation-initial-placement", initial_placement_experiment)
register("ablation-laziness", laziness_experiment)
