"""Tests for experiment configuration structures (repro.experiments.config)."""

from __future__ import annotations

import pytest

from repro.experiments.config import (
    ExperimentConfig,
    GraphCase,
    ProtocolSpec,
    scaled_sizes,
)
from repro.graphs import star


def simple_builder(size, seed):
    return GraphCase(graph=star(size), source=0, size_parameter=size)


def make_config(**overrides):
    payload = dict(
        experiment_id="toy",
        title="Toy",
        paper_reference="none",
        description="toy experiment",
        graph_builder=simple_builder,
        sizes=(8, 16),
        protocols=(ProtocolSpec("push"), ProtocolSpec("push-pull")),
        trials=2,
    )
    payload.update(overrides)
    return ExperimentConfig(**payload)


class TestGraphCase:
    def test_num_vertices_delegates_to_graph(self):
        case = simple_builder(10, 0)
        assert case.num_vertices == 11
        assert case.size_parameter == 10
        assert case.metadata == {}


class TestProtocolSpec:
    def test_display_label_defaults_to_name(self):
        assert ProtocolSpec("push").display_label == "push"

    def test_explicit_label(self):
        spec = ProtocolSpec("visit-exchange", kwargs={"agent_density": 2.0}, label="vx2")
        assert spec.display_label == "vx2"
        assert spec.kwargs == {"agent_density": 2.0}


class TestExperimentConfig:
    def test_valid_config_builds_cases(self):
        config = make_config()
        case = config.build_case(8, 0)
        assert case.num_vertices == 9

    def test_round_budget_none_by_default(self):
        assert make_config().round_budget(8) is None

    def test_round_budget_callable(self):
        config = make_config(max_rounds=lambda n: 10 * n)
        assert config.round_budget(8) == 80

    def test_empty_sizes_rejected(self):
        with pytest.raises(ValueError):
            make_config(sizes=())

    def test_empty_protocols_rejected(self):
        with pytest.raises(ValueError):
            make_config(protocols=())

    def test_zero_trials_rejected(self):
        with pytest.raises(ValueError):
            make_config(trials=0)

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            make_config(protocols=(ProtocolSpec("push"), ProtocolSpec("push")))


class TestScaledSizes:
    def test_half_scale(self):
        assert scaled_sizes((100, 200, 400), 0.5) == (50, 100, 200)

    def test_minimum_enforced(self):
        assert scaled_sizes((4, 8), 0.1, minimum=3) == (3, 4)

    def test_strictly_increasing(self):
        scaled = scaled_sizes((10, 11, 12), 0.1)
        assert scaled[0] < scaled[1] < scaled[2]

    def test_identity_scale(self):
        assert scaled_sizes((5, 10), 1.0) == (5, 10)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            scaled_sizes((5,), 0.0)
