"""Pluggable storage backends for the content-addressed result store.

:class:`~repro.store.backends.base.StoreBackend` is the transport interface
(read/write/list/delete of objects + sidecars, sweep-journal lines) behind
:class:`~repro.store.ResultStore`; the two implementations are the
local-directory layout (:class:`LocalBackend`) and the HTTP client with a
read-through local cache (:class:`RemoteBackend`) that pairs with the
``repro store serve`` service of :mod:`repro.store.service`.

:func:`resolve_backend` maps a user-facing store designator — a filesystem
path or an ``http(s)://`` service URL, exactly the two forms ``REPRO_STORE``
accepts — onto the right backend.
"""

from __future__ import annotations

from typing import Any, Optional

from .base import (
    KEY_HEX_LENGTH,
    OBJECT_FRAME_MAGIC,
    StoreBackend,
    check_key,
    decode_object_frame,
    encode_object_frame,
)
from .local import LocalBackend
from .remote import CACHE_ENV_VAR, RemoteBackend, default_cache_root, is_store_url

__all__ = [
    "CACHE_ENV_VAR",
    "KEY_HEX_LENGTH",
    "LocalBackend",
    "OBJECT_FRAME_MAGIC",
    "RemoteBackend",
    "StoreBackend",
    "check_key",
    "decode_object_frame",
    "default_cache_root",
    "encode_object_frame",
    "is_store_url",
    "resolve_backend",
]


def resolve_backend(designator: Any, *, cache: Optional[Any] = None) -> StoreBackend:
    """Turn a store designator (path or service URL) into a backend.

    ``cache`` only applies to URL designators and overrides where the remote
    backend's read-through cache lives (default: a per-URL directory under
    the user cache dir, or ``$REPRO_STORE_CACHE``).
    """
    if isinstance(designator, StoreBackend):
        return designator
    if is_store_url(designator):
        return RemoteBackend(designator, cache=cache)
    return LocalBackend(designator)
