"""Dependency-free metrics primitives with Prometheus text rendering.

The registry holds three metric kinds — :class:`Counter`, :class:`Gauge` and
:class:`Histogram` — each optionally labeled.  A labeled metric is a family of
independent series keyed by the tuple of label values; every series carries
its own lock, so concurrent increments from the HTTP service's handler
threads never race.  :meth:`MetricsRegistry.render` emits the Prometheus text
exposition format (version 0.0.4), which is what the store service's
``GET /metrics`` endpoint serves.

Two registries matter in practice:

* the **process-global default registry** (:func:`default_registry`), used by
  client-side code — :class:`~repro.store.backends.remote.RemoteBackend`
  retry accounting, worker fleet counters — whose values reach a hub only
  when a worker pushes a snapshot over the authenticated write path;
* a **per-server registry** owned by each ``_StoreHTTPServer``, so that two
  services in one process (a common shape in the tests) never see each
  other's request counts.

Metric values are deliberately outside every store key: telemetry must never
change what is computed, only record it.  ``REPRO_METRICS=0`` turns off the
optional background collection (client retry counters, worker fleet pushes);
the primitives themselves keep working so the service's request accounting —
which predates this module — is unconditional.
"""

from __future__ import annotations

import math
import os
import threading
from bisect import bisect_left
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "default_registry",
    "metrics_enabled",
    "METRICS_ENV_VAR",
]

METRICS_ENV_VAR = "REPRO_METRICS"

#: Distinct label-value combinations one metric may hold.  Beyond the cap,
#: new combinations collapse into the reserved ``<other>`` series so a
#: runaway label (worker names, junk routes) cannot grow the registry — and
#: the ``/metrics`` response — without bound.
DEFAULT_MAX_SERIES = 512

#: Reserved label value absorbing series beyond :data:`DEFAULT_MAX_SERIES`.
OVERFLOW_LABEL = "<other>"

#: Default histogram buckets, in seconds: tuned for request/phase latencies
#: from sub-millisecond cache hits up to multi-second kernel runs.
DEFAULT_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class MetricError(ValueError):
    """Invalid metric registration or label usage."""


def metrics_enabled() -> bool:
    """Whether optional background metric collection is on.

    ``REPRO_METRICS=0`` (or ``false``/``off``) disables client-side counters
    and the worker fleet-health push; the store service's request accounting
    ignores this switch because ``request_counts`` predates telemetry and is
    part of its public contract.
    """
    value = os.environ.get(METRICS_ENV_VAR, "").strip().lower()
    return value not in ("0", "false", "off")


def _check_name(name: str) -> None:
    if not name or not (name[0].isalpha() or name[0] == "_"):
        raise MetricError(f"invalid metric or label name: {name!r}")
    for char in name:
        if not (char.isalnum() or char in "_:"):
            raise MetricError(f"invalid metric or label name: {name!r}")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


class CounterSeries:
    """One monotonically increasing series of a :class:`Counter`."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError("counters only go up; use a gauge for deltas")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class GaugeSeries:
    """One settable series of a :class:`Gauge`."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class HistogramSeries:
    """One bucketed series of a :class:`Histogram`.

    Buckets store per-bucket (non-cumulative) counts; the cumulative ``le``
    form Prometheus expects is produced at render time.
    """

    __slots__ = ("_lock", "buckets", "_counts", "_sum", "_count")

    def __init__(self, buckets: Sequence[float]) -> None:
        self._lock = threading.Lock()
        self.buckets = tuple(buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # last slot is +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> Tuple[List[int], float, int]:
        with self._lock:
            return list(self._counts), self._sum, self._count

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum


class _Metric:
    """Shared machinery: label handling, cardinality guard, series map."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        *,
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> None:
        _check_name(name)
        self.name = name
        self.help = help
        self.label_names = tuple(labels)
        for label in self.label_names:
            _check_name(label)
        self.max_series = max_series
        self._lock = threading.Lock()
        self._series: Dict[Tuple[str, ...], object] = {}

    def _make_series(self):
        raise NotImplementedError

    def labels(self, **labels):
        """The series for one label-value combination (created on first use)."""
        if set(labels) != set(self.label_names):
            raise MetricError(
                f"metric {self.name} takes labels {list(self.label_names)}, "
                f"got {sorted(labels)}"
            )
        values = tuple(str(labels[name]) for name in self.label_names)
        return self._series_for(values)

    def _series_for(self, values: Tuple[str, ...]):
        with self._lock:
            series = self._series.get(values)
            if series is None:
                if len(self._series) >= self.max_series:
                    values = (OVERFLOW_LABEL,) * len(self.label_names)
                    series = self._series.get(values)
                if series is None:
                    series = self._make_series()
                    self._series[values] = series
            return series

    def _unlabeled(self):
        if self.label_names:
            raise MetricError(
                f"metric {self.name} needs labels {list(self.label_names)}"
            )
        return self._series_for(())

    def series_items(self) -> List[Tuple[Tuple[str, ...], object]]:
        """Snapshot of ``(label_values, series)`` pairs, insertion-ordered."""
        with self._lock:
            return list(self._series.items())

    def _render_labels(self, values: Tuple[str, ...], extra: str = "") -> str:
        parts = [
            f'{name}="{_escape_label_value(value)}"'
            for name, value in zip(self.label_names, values)
        ]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""

    def render(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for values, series in self.series_items():
            lines.extend(self._render_series(values, series))
        return lines

    def _render_series(self, values, series) -> List[str]:
        return [f"{self.name}{self._render_labels(values)} {_format_value(series.value)}"]


class Counter(_Metric):
    kind = "counter"

    def _make_series(self) -> CounterSeries:
        return CounterSeries()

    def inc(self, amount: float = 1.0) -> None:
        self._unlabeled().inc(amount)

    @property
    def value(self) -> float:
        """Sum over every series (the single series when unlabeled)."""
        return sum(series.value for _, series in self.series_items())


class Gauge(_Metric):
    kind = "gauge"

    def _make_series(self) -> GaugeSeries:
        return GaugeSeries()

    def set(self, value: float) -> None:
        self._unlabeled().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._unlabeled().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._unlabeled().dec(amount)

    @property
    def value(self) -> float:
        return sum(series.value for _, series in self.series_items())


class Histogram(_Metric):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> None:
        super().__init__(name, help, labels, max_series=max_series)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise MetricError("histograms need at least one bucket bound")

    def _make_series(self) -> HistogramSeries:
        return HistogramSeries(self.buckets)

    def observe(self, value: float) -> None:
        self._unlabeled().observe(value)

    def _render_series(self, values, series) -> List[str]:
        counts, total, count = series.snapshot()
        lines = []
        cumulative = 0
        for bound, bucket_count in zip(self.buckets, counts):
            cumulative += bucket_count
            extra = f'le="{_format_value(bound)}"'
            lines.append(
                f"{self.name}_bucket{self._render_labels(values, extra)} {cumulative}"
            )
        inf_label = 'le="+Inf"'
        lines.append(
            f"{self.name}_bucket{self._render_labels(values, inf_label)} {count}"
        )
        lines.append(
            f"{self.name}_sum{self._render_labels(values)} {_format_value(total)}"
        )
        lines.append(f"{self.name}_count{self._render_labels(values)} {count}")
        return lines


class MetricsRegistry:
    """A named collection of metrics with get-or-create registration."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, labels, **kwargs):
        labels = tuple(labels)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.label_names != labels:
                    raise MetricError(
                        f"metric {name} already registered as {existing.kind} "
                        f"with labels {list(existing.label_names)}"
                    )
                return existing
            metric = cls(name, help, labels, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        *,
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labels, max_series=max_series)

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        *,
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels, max_series=max_series)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labels, buckets=buckets, max_series=max_series
        )

    def collect(self) -> List[_Metric]:
        with self._lock:
            return sorted(self._metrics.values(), key=lambda metric: metric.name)

    def counter_value(self, name: str) -> float:
        """Current total of a counter, ``0.0`` when it was never registered.

        Reading through this accessor never creates the metric, so callers
        can take baselines and deltas without polluting the registry.
        """
        with self._lock:
            metric = self._metrics.get(name)
        if metric is None:
            return 0.0
        return float(metric.value)

    def render(self) -> str:
        """Prometheus text exposition (version 0.0.4) of every metric."""
        lines: List[str] = []
        for metric in self.collect():
            lines.extend(metric.render())
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> Dict[str, float]:
        """Flat ``{series_name: value}`` view for JSON payloads.

        Histograms contribute ``<name>_count`` and ``<name>_sum`` entries;
        labeled series append a ``{k=v,...}`` suffix.
        """
        flat: Dict[str, float] = {}
        for metric in self.collect():
            for values, series in metric.series_items():
                suffix = ""
                if values:
                    pairs = ",".join(
                        f"{k}={v}" for k, v in zip(metric.label_names, values)
                    )
                    suffix = "{" + pairs + "}"
                if isinstance(series, HistogramSeries):
                    _, total, count = series.snapshot()
                    flat[f"{metric.name}_count{suffix}"] = float(count)
                    flat[f"{metric.name}_sum{suffix}"] = total
                else:
                    flat[f"{metric.name}{suffix}"] = float(series.value)
        return flat


_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global registry used by client-side instrumentation."""
    return _DEFAULT_REGISTRY
