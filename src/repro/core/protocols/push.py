"""The PUSH rumor-spreading protocol (Section 3 of the paper).

In round zero the source becomes informed.  In each round ``t >= 1`` every
vertex that was informed *in a previous round* samples a uniformly random
neighbor and sends it the rumor; an uninformed recipient becomes informed in
this round (and therefore starts pushing only from the next round).

``T_push`` is the first round by which all vertices are informed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...graphs.graph import Graph
from ..engine import RoundProtocol
from ..rng import make_rng

__all__ = ["PushProtocol"]


class PushProtocol(RoundProtocol):
    """Vectorized implementation of PUSH.

    All vertices informed before the current round push simultaneously; the
    per-round work is one vectorized neighbor sample over the informed set.
    """

    name = "push"

    def __init__(self) -> None:
        self._graph: Optional[Graph] = None
        self._informed: Optional[np.ndarray] = None
        self._informed_count = 0
        self._messages = 0

    def initialize(self, graph: Graph, source: int, rng) -> None:
        self._graph = graph
        self._informed = np.zeros(graph.num_vertices, dtype=bool)
        self._informed[source] = True
        self._informed_count = 1
        self._messages = 0

    def execute_round(self, round_index: int, rng) -> None:
        graph = self._graph
        informed = self._informed
        assert graph is not None and informed is not None
        rng = make_rng(rng)

        senders = np.flatnonzero(informed)
        if senders.size == 0:
            return
        targets = graph.sample_neighbors(senders, rng)
        self._messages += int(senders.size)

        hits = ~informed[targets]
        if not np.any(hits):
            return
        newly = np.unique(targets[hits])
        informed[newly] = True
        self._informed_count += int(newly.size)
        if self.observers:
            # Report each newly informed vertex with the first sender that hit
            # it (matching the former sequential scan over senders).
            hit_targets = targets[hits]
            _, first = np.unique(hit_targets, return_index=True)
            self.observers.on_edges_used(senders[hits][first], hit_targets[first])

    def is_complete(self) -> bool:
        assert self._graph is not None
        return self._informed_count >= self._graph.num_vertices

    def informed_vertex_count(self) -> int:
        return self._informed_count

    def messages_sent(self) -> int:
        return self._messages

    def informed_mask(self) -> np.ndarray:
        """Return a copy of the per-vertex informed mask (for tests/analysis)."""
        assert self._informed is not None
        return self._informed.copy()
