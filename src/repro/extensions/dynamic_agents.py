"""Visit-exchange with a dynamic, failure-prone agent population.

The paper's open-problems section (Section 9) observes that the agent-based
protocols are probably not as failure-robust as rumor spreading — agents can
get lost on faulty nodes or links — and suggests that "the protocols could
tolerate some number of lost agents, if a dynamic set of agents were used,
where agents age with time and die, while new agents are born at a
proportional rate."

This module implements exactly that dynamic population for the visit-exchange
mechanics so the suggestion can be evaluated empirically:

* every round, each agent independently dies with probability ``death_rate``;
* new agents are born at vertices sampled from the stationary distribution, at
  a rate chosen so the expected population stays at its initial size
  (``birth_rate`` can also be set explicitly);
* newborn agents start uninformed; they pick the rumor up from informed
  vertices exactly like ordinary agents;
* optionally, a one-off *failure event* kills a fraction of the population at
  a chosen round (to measure recovery).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.rng import make_rng
from ..graphs.graph import Graph, GraphError

__all__ = ["DynamicAgentsResult", "DynamicVisitExchange"]


@dataclass
class DynamicAgentsResult:
    """Outcome of one dynamic-population visit-exchange run."""

    graph_name: str
    num_vertices: int
    initial_agents: int
    broadcast_time: Optional[int]
    completed: bool
    rounds_executed: int
    population_history: List[int]
    informed_vertex_history: List[int]
    total_births: int
    total_deaths: int

    @property
    def min_population(self) -> int:
        """Smallest population size observed during the run."""
        return int(min(self.population_history))

    @property
    def mean_population(self) -> float:
        """Average population size over the run."""
        return float(np.mean(self.population_history))


class DynamicVisitExchange:
    """Visit-exchange whose agent population churns over time.

    Parameters
    ----------
    agent_density:
        Initial population: ``round(agent_density * n)`` agents from the
        stationary distribution.
    death_rate:
        Per-agent, per-round probability of disappearing.
    birth_rate:
        Expected number of new agents per round.  ``None`` (default) balances
        deaths: ``death_rate * initial_population``.
    failure_round / failure_fraction:
        Optional one-off failure: at ``failure_round``, a uniformly random
        ``failure_fraction`` of the current population is removed.
    lazy:
        Use lazy walks.
    """

    def __init__(
        self,
        *,
        agent_density: float = 1.0,
        death_rate: float = 0.01,
        birth_rate: Optional[float] = None,
        failure_round: Optional[int] = None,
        failure_fraction: float = 0.0,
        lazy: bool = False,
    ) -> None:
        if not 0.0 <= death_rate < 1.0:
            raise ValueError("death_rate must lie in [0, 1)")
        if not 0.0 <= failure_fraction <= 1.0:
            raise ValueError("failure_fraction must lie in [0, 1]")
        if agent_density <= 0:
            raise ValueError("agent_density must be positive")
        self.agent_density = float(agent_density)
        self.death_rate = float(death_rate)
        self.birth_rate = birth_rate
        self.failure_round = failure_round
        self.failure_fraction = float(failure_fraction)
        self.lazy = bool(lazy)

    def run(
        self,
        graph: Graph,
        source: int,
        *,
        seed=None,
        max_rounds: Optional[int] = None,
    ) -> DynamicAgentsResult:
        """Run until all vertices are informed or the round budget is exhausted."""
        if not (0 <= source < graph.num_vertices):
            raise GraphError("source vertex out of range")
        if not graph.is_connected():
            raise GraphError("visit-exchange is defined on connected graphs")

        rng = make_rng(seed)
        n = graph.num_vertices
        initial = max(1, int(round(self.agent_density * n)))
        stationary = graph.stationary_distribution()

        positions = rng.choice(n, size=initial, p=stationary).astype(np.int64)
        informed_agents = np.zeros(initial, dtype=bool)
        vertex_informed = np.zeros(n, dtype=bool)
        vertex_informed[source] = True
        informed_agents[positions == source] = True

        births_per_round = (
            float(self.birth_rate)
            if self.birth_rate is not None
            else self.death_rate * initial
        )
        budget = int(max_rounds) if max_rounds is not None else max(1024, 400 * n)

        population_history = [int(positions.size)]
        informed_history = [int(np.count_nonzero(vertex_informed))]
        total_births = 0
        total_deaths = 0

        broadcast_time: Optional[int] = (
            0 if int(np.count_nonzero(vertex_informed)) == n else None
        )
        round_index = 0
        while broadcast_time is None and round_index < budget:
            round_index += 1

            # --- churn: deaths (including the optional one-off failure) -----
            if positions.size:
                survive = rng.random(positions.size) >= self.death_rate
                if self.failure_round is not None and round_index == self.failure_round:
                    failure_survivors = rng.random(positions.size) >= self.failure_fraction
                    survive &= failure_survivors
                total_deaths += int(np.count_nonzero(~survive))
                positions = positions[survive]
                informed_agents = informed_agents[survive]

            # --- churn: births ------------------------------------------------
            num_births = int(rng.poisson(births_per_round)) if births_per_round > 0 else 0
            if num_births:
                born_at = rng.choice(n, size=num_births, p=stationary).astype(np.int64)
                positions = np.concatenate([positions, born_at])
                informed_agents = np.concatenate(
                    [informed_agents, np.zeros(num_births, dtype=bool)]
                )
                total_births += num_births

            # --- walk step ------------------------------------------------------
            if positions.size:
                informed_before = informed_agents.copy()
                new_positions = graph.sample_neighbors(positions, rng)
                if self.lazy:
                    stay = rng.random(positions.size) < 0.5
                    new_positions = np.where(stay, positions, new_positions)
                positions = new_positions.astype(np.int64, copy=False)

                # Informed agents inform the vertices they visit.
                informing = positions[informed_before]
                if informing.size:
                    vertex_informed[informing] = True
                # Agents learn from informed vertices.
                informed_agents |= vertex_informed[positions]

            population_history.append(int(positions.size))
            informed_count = int(np.count_nonzero(vertex_informed))
            informed_history.append(informed_count)
            if informed_count == n:
                broadcast_time = round_index

        return DynamicAgentsResult(
            graph_name=graph.name,
            num_vertices=n,
            initial_agents=initial,
            broadcast_time=broadcast_time,
            completed=broadcast_time is not None,
            rounds_executed=round_index,
            population_history=population_history,
            informed_vertex_history=informed_history,
            total_births=total_births,
            total_deaths=total_deaths,
        )
