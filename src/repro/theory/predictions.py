"""Asymptotic predictions of the paper, one entry per claim.

Each claim of the evaluation (Lemmas 2, 3, 4, 8, 9 and Theorems 1, 23, 24, 25)
is encoded as a :class:`Prediction`: which protocol, which graph family, and
the growth function ``f(n)`` such that the broadcast time is ``Theta/O/Omega``
of ``f(n)``.  The experiment harness uses these records both to annotate the
generated reports and to check measured growth exponents against the expected
shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List

__all__ = [
    "BoundKind",
    "Prediction",
    "PAPER_PREDICTIONS",
    "predictions_for",
    "growth_value",
    "GROWTH_FUNCTIONS",
]


class BoundKind(str, Enum):
    """Whether the paper's bound is an upper bound, lower bound, or tight."""

    UPPER = "O"
    LOWER = "Omega"
    TIGHT = "Theta"


#: Named growth functions used by the predictions and the fitting code.
GROWTH_FUNCTIONS: Dict[str, Callable[[float], float]] = {
    "1": lambda n: 1.0,
    "log n": lambda n: math.log(max(n, 2.0)),
    "n": lambda n: float(n),
    "n log n": lambda n: n * math.log(max(n, 2.0)),
    "n^(1/3)": lambda n: n ** (1.0 / 3.0),
    "n^(2/3)": lambda n: n ** (2.0 / 3.0),
    "n^(2/3) log n": lambda n: (n ** (2.0 / 3.0)) * math.log(max(n, 2.0)),
    "sqrt(n)": lambda n: math.sqrt(n),
    "n^2": lambda n: float(n) ** 2,
}


def growth_value(name: str, n: float) -> float:
    """Evaluate the named growth function at ``n``."""
    try:
        return GROWTH_FUNCTIONS[name](float(n))
    except KeyError as exc:
        known = ", ".join(sorted(GROWTH_FUNCTIONS))
        raise ValueError(f"unknown growth function {name!r}; known: {known}") from exc


@dataclass(frozen=True)
class Prediction:
    """A single asymptotic claim from the paper.

    Attributes
    ----------
    claim_id:
        Stable identifier, e.g. ``"lemma2a"``.
    source:
        Paper reference (lemma/theorem and figure).
    family:
        Graph-family key (matches the experiment registry), e.g. ``"star"``.
    protocol:
        Protocol registry name.
    kind:
        Whether the growth function is an upper bound, lower bound or tight.
    growth:
        Name of the growth function in :data:`GROWTH_FUNCTIONS`.
    notes:
        Short free-text context (source restrictions, lazy walks, ...).
    """

    claim_id: str
    source: str
    family: str
    protocol: str
    kind: BoundKind
    growth: str
    notes: str = ""

    def evaluate(self, n: float) -> float:
        """Evaluate the growth function at ``n`` (no constant factor)."""
        return growth_value(self.growth, n)

    def describe(self) -> str:
        """One-line human readable statement of the claim."""
        return (
            f"[{self.claim_id}] {self.source}: T_{self.protocol} = "
            f"{self.kind.value}({self.growth}) on {self.family}"
            + (f" ({self.notes})" if self.notes else "")
        )


#: Every asymptotic claim of the paper's evaluation, in paper order.
PAPER_PREDICTIONS: List[Prediction] = [
    # --- Lemma 2, star graph, Fig 1(a) ---------------------------------------
    Prediction("lemma2a", "Lemma 2(a), Fig 1(a)", "star", "push", BoundKind.LOWER, "n log n",
               "coupon collector at the center"),
    Prediction("lemma2b", "Lemma 2(b), Fig 1(a)", "star", "push-pull", BoundKind.UPPER, "1",
               "at most 2 rounds"),
    Prediction("lemma2c", "Lemma 2(c), Fig 1(a)", "star", "visit-exchange", BoundKind.UPPER, "log n"),
    Prediction("lemma2d", "Lemma 2(d), Fig 1(a)", "star", "meet-exchange", BoundKind.UPPER, "log n",
               "lazy walks (bipartite graph)"),
    # --- Lemma 3, double star, Fig 1(b) ---------------------------------------
    Prediction("lemma3a", "Lemma 3(a), Fig 1(b)", "double-star", "push-pull", BoundKind.LOWER, "n",
               "bridge edge sampled with probability O(1/n)"),
    Prediction("lemma3b", "Lemma 3(b), Fig 1(b)", "double-star", "visit-exchange", BoundKind.UPPER, "log n"),
    Prediction("lemma3c", "Lemma 3(c), Fig 1(b)", "double-star", "meet-exchange", BoundKind.UPPER, "log n",
               "lazy walks (bipartite graph)"),
    # --- Lemma 4, heavy binary tree, Fig 1(c) ---------------------------------
    Prediction("lemma4a", "Lemma 4(a), Fig 1(c)", "heavy-binary-tree", "push", BoundKind.UPPER, "log n"),
    Prediction("lemma4b", "Lemma 4(b), Fig 1(c)", "heavy-binary-tree", "visit-exchange", BoundKind.LOWER, "n",
               "no agent reaches the root for Omega(n) rounds"),
    Prediction("lemma4c", "Lemma 4(c), Fig 1(c)", "heavy-binary-tree", "meet-exchange", BoundKind.UPPER, "log n",
               "source must be a leaf"),
    # --- Lemma 8, siamese heavy binary trees, Fig 1(d) --------------------------
    Prediction("lemma8a", "Lemma 8(a), Fig 1(d)", "siamese-heavy-tree", "push", BoundKind.UPPER, "log n"),
    Prediction("lemma8b", "Lemma 8(b), Fig 1(d)", "siamese-heavy-tree", "visit-exchange", BoundKind.LOWER, "n"),
    Prediction("lemma8c", "Lemma 8(c), Fig 1(d)", "siamese-heavy-tree", "meet-exchange", BoundKind.LOWER, "n",
               "information must cross the shared root"),
    # --- Lemma 9, cycle of stars of cliques, Fig 1(e) ---------------------------
    Prediction("lemma9a", "Lemma 9(a), Fig 1(e)", "cycle-stars-cliques", "visit-exchange", BoundKind.UPPER, "n^(2/3)"),
    Prediction("lemma9b", "Lemma 9(b), Fig 1(e)", "cycle-stars-cliques", "meet-exchange", BoundKind.LOWER, "n^(2/3) log n"),
    # --- Theorem 1 / 10 / 19, regular graphs -----------------------------------
    Prediction("thm1", "Theorem 1 (Thms 10 & 19)", "regular", "push", BoundKind.TIGHT, "1",
               "T_push = Theta(T_visitx): the protocols' ratio is bounded by constants"),
    # --- Theorem 23, regular graphs ---------------------------------------------
    Prediction("thm23", "Theorem 23", "regular", "visit-exchange", BoundKind.UPPER, "1",
               "T_visitx <= T_meetx + O(log n) on regular graphs"),
    # --- Theorems 24 & 25, logarithmic lower bounds ------------------------------
    Prediction("thm24", "Theorem 24", "regular", "visit-exchange", BoundKind.LOWER, "log n"),
    Prediction("thm25", "Theorem 25", "regular", "meet-exchange", BoundKind.LOWER, "log n"),
]


def predictions_for(*, family: str = None, protocol: str = None) -> List[Prediction]:
    """Filter the paper's predictions by graph family and/or protocol."""
    selected = []
    for prediction in PAPER_PREDICTIONS:
        if family is not None and prediction.family != family:
            continue
        if protocol is not None and prediction.protocol != protocol:
            continue
        selected.append(prediction)
    return selected
