"""Content-addressed artifact store for cached :class:`TrialSet` records.

Layout (everything under one root directory)::

    <root>/
      objects/<k0k1>/<key>.npz    compressed per-trial arrays
      objects/<k0k1>/<key>.json   sidecar: metadata + integrity checksum
      sweeps/<sweep_id>.jsonl     append-only sweep journals (see journal.py)

``<key>`` is the 64-hex-digit cell key of :mod:`repro.store.keys`; objects
are sharded by the first two hex digits to keep directory listings sane at
scale.  The NPZ member holds the numeric per-trial data (broadcast times,
completion flags, message counts, ragged per-round histories in
flat-plus-lengths form); the JSON sidecar holds everything else (protocol,
graph name, backend, per-trial metadata and edge-traversal dicts) plus the
SHA-256 of the NPZ bytes.

Writes are atomic (write to a temp file in the same directory, then
``os.replace``) and ordered NPZ-before-sidecar, so the sidecar's existence
is the commit marker: a reader never observes a half-written object, and a
crash mid-write leaves at worst an orphaned temp/NPZ file for ``gc`` to
sweep.  Reads verify the sidecar's checksum against the NPZ bytes and raise
:class:`StoreCorruptionError` on any mismatch — a corrupt cache must fail
loudly, never silently feed wrong numbers into a figure.
"""

from __future__ import annotations

import io
import json
import os
import shutil
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.results import RunResult, TrialSet
from .keys import STORE_FORMAT_VERSION

__all__ = [
    "STORE_ENV_VAR",
    "ResultStore",
    "StoreCorruptionError",
    "StoreError",
    "resolve_store",
]

#: Environment variable that enables the store by default when set to a path.
STORE_ENV_VAR = "REPRO_STORE"

_KEY_HEX_LENGTH = 64


class StoreError(RuntimeError):
    """Base class for result-store failures."""


class StoreCorruptionError(StoreError):
    """An on-disk artifact failed its integrity check."""


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (same-directory temp + replace)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
    try:
        tmp.write_bytes(data)
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on a failed replace
            tmp.unlink()


def _sha256(data: bytes) -> str:
    import hashlib

    return hashlib.sha256(data).hexdigest()


def _flatten_histories(histories: Sequence[Sequence[int]]) -> Tuple[np.ndarray, np.ndarray]:
    """Encode a ragged list of int lists as (flat values, per-trial lengths)."""
    lengths = np.asarray([len(h) for h in histories], dtype=np.int64)
    if int(lengths.sum()) == 0:
        return np.empty(0, dtype=np.int64), lengths
    flat = np.concatenate([np.asarray(h, dtype=np.int64) for h in histories if len(h)])
    return flat, lengths


def _unflatten_histories(flat: np.ndarray, lengths: np.ndarray) -> List[List[int]]:
    """Invert :func:`_flatten_histories`."""
    offsets = np.zeros(lengths.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    return [
        [int(v) for v in flat[offsets[i]:offsets[i + 1]]] for i in range(lengths.size)
    ]


class ResultStore:
    """A content-addressed store of trial-set artifacts rooted at a directory.

    The store is safe for concurrent writers (the process-parallel cell
    scheduler persists from worker processes): writes are atomic renames and
    two writers racing on the same key write identical bytes by construction.
    Instances are cheap and picklable — only the root path crosses process
    boundaries.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    @property
    def objects_dir(self) -> Path:
        """Directory holding the content-addressed objects."""
        return self.root / "objects"

    @property
    def sweeps_dir(self) -> Path:
        """Directory holding the per-sweep journals."""
        return self.root / "sweeps"

    def _check_key(self, key: str) -> str:
        key = str(key)
        if len(key) != _KEY_HEX_LENGTH or any(c not in "0123456789abcdef" for c in key):
            raise StoreError(f"malformed cell key {key!r}")
        return key

    def object_paths(self, key: str) -> Tuple[Path, Path]:
        """``(npz_path, sidecar_path)`` of a key (whether or not it exists)."""
        key = self._check_key(key)
        shard = self.objects_dir / key[:2]
        return shard / f"{key}.npz", shard / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        _npz, sidecar = self.object_paths(key)
        return sidecar.exists()

    # ------------------------------------------------------------------
    # put / get
    # ------------------------------------------------------------------
    def put_trial_set(
        self,
        key: str,
        trial_set: TrialSet,
        *,
        cell: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Persist a trial set under ``key``; returns the sidecar path.

        ``cell`` is the key payload (see
        :func:`repro.store.keys.trial_cell_payload`); storing it alongside
        the data makes every object self-describing (``repro store info``).
        Re-putting an existing key simply overwrites it with identical
        content — puts are idempotent.
        """
        npz_path, sidecar_path = self.object_paths(key)
        payload = trial_set.to_dict()
        results = payload.pop("results")

        vertex_flat, vertex_lengths = _flatten_histories(
            [r["informed_vertex_history"] for r in results]
        )
        agent_flat, agent_lengths = _flatten_histories(
            [r["informed_agent_history"] for r in results]
        )
        arrays = {
            "broadcast_time": np.asarray(
                [-1 if r["broadcast_time"] is None else r["broadcast_time"] for r in results],
                dtype=np.int64,
            ),
            "completed": np.asarray([r["completed"] for r in results], dtype=bool),
            "rounds_executed": np.asarray(
                [r["rounds_executed"] for r in results], dtype=np.int64
            ),
            "messages_sent": np.asarray(
                [r["messages_sent"] for r in results], dtype=np.int64
            ),
            "num_agents": np.asarray([r["num_agents"] for r in results], dtype=np.int64),
            "source": np.asarray([r["source"] for r in results], dtype=np.int64),
            "num_edges": np.asarray([r["num_edges"] for r in results], dtype=np.int64),
            "vertex_history_flat": vertex_flat,
            "vertex_history_lengths": vertex_lengths,
            "agent_history_flat": agent_flat,
            "agent_history_lengths": agent_lengths,
        }
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **arrays)
        npz_bytes = buffer.getvalue()

        rest = [
            {
                "protocol": r["protocol"],
                "graph_name": r["graph_name"],
                "num_vertices": r["num_vertices"],
                "edge_traversals": r["edge_traversals"],
                "metadata": r["metadata"],
            }
            for r in results
        ]
        sidecar = {
            "format": STORE_FORMAT_VERSION,
            "key": key,
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
            "npz_sha256": _sha256(npz_bytes),
            "cell": cell,
            "trial_set": payload,  # protocol / graph_name / num_vertices / backend
            "results": rest,
        }
        # NPZ first, sidecar last: the sidecar commits the object.
        _atomic_write_bytes(npz_path, npz_bytes)
        _atomic_write_bytes(
            sidecar_path, json.dumps(sidecar, sort_keys=True).encode("utf-8")
        )
        return sidecar_path

    def read_sidecar(self, key: str) -> Optional[Dict[str, Any]]:
        """Parsed sidecar of a key, or None if the object is absent."""
        _npz, sidecar_path = self.object_paths(key)
        try:
            text = sidecar_path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        try:
            sidecar = json.loads(text)
        except json.JSONDecodeError as exc:
            raise StoreCorruptionError(
                f"store object {key} has an unparsable sidecar: {exc}"
            ) from exc
        return sidecar

    def get_trial_set(self, key: str) -> Optional[TrialSet]:
        """Load the trial set stored under ``key`` (None if absent).

        The NPZ bytes are checked against the sidecar's SHA-256 before being
        parsed; any mismatch, missing member or trial-count inconsistency
        raises :class:`StoreCorruptionError`.
        """
        sidecar = self.read_sidecar(key)
        if sidecar is None:
            return None
        if sidecar.get("format") != STORE_FORMAT_VERSION:
            raise StoreCorruptionError(
                f"store object {key} has format {sidecar.get('format')!r}; "
                f"this build reads format {STORE_FORMAT_VERSION} "
                "(run 'repro store gc --all' to drop stale objects)"
            )
        npz_path, sidecar_path = self.object_paths(key)
        try:
            npz_bytes = npz_path.read_bytes()
        except FileNotFoundError as exc:
            if not sidecar_path.exists():
                # A concurrent gc deleted the whole object between our
                # sidecar read and the NPZ read: that is a plain cache miss,
                # not corruption.
                return None
            raise StoreCorruptionError(
                f"store object {key} lost its NPZ payload ({npz_path})"
            ) from exc
        if _sha256(npz_bytes) != sidecar.get("npz_sha256"):
            raise StoreCorruptionError(
                f"store object {key} failed its integrity check: NPZ bytes do "
                "not match the sidecar checksum"
            )
        try:
            with np.load(io.BytesIO(npz_bytes), allow_pickle=False) as npz:
                arrays = {name: npz[name] for name in npz.files}
            vertex_histories = _unflatten_histories(
                arrays["vertex_history_flat"], arrays["vertex_history_lengths"]
            )
            agent_histories = _unflatten_histories(
                arrays["agent_history_flat"], arrays["agent_history_lengths"]
            )
            rest = sidecar["results"]
            trials = len(rest)
            if any(arrays[name].shape[0] != trials for name in (
                "broadcast_time", "completed", "rounds_executed",
                "messages_sent", "num_agents", "source", "num_edges",
            )):
                raise KeyError("per-trial array lengths disagree with sidecar")
            results = []
            for t in range(trials):
                done = bool(arrays["completed"][t])
                results.append(
                    {
                        "protocol": rest[t]["protocol"],
                        "graph_name": rest[t]["graph_name"],
                        "num_vertices": rest[t]["num_vertices"],
                        "num_edges": int(arrays["num_edges"][t]),
                        "source": int(arrays["source"][t]),
                        "broadcast_time": int(arrays["broadcast_time"][t]) if done else None,
                        "rounds_executed": int(arrays["rounds_executed"][t]),
                        "completed": done,
                        "num_agents": int(arrays["num_agents"][t]),
                        "informed_vertex_history": vertex_histories[t],
                        "informed_agent_history": agent_histories[t],
                        "messages_sent": int(arrays["messages_sent"][t]),
                        "edge_traversals": rest[t]["edge_traversals"],
                        "metadata": rest[t]["metadata"],
                    }
                )
            payload = dict(sidecar["trial_set"])
            payload["results"] = results
            return TrialSet.from_dict(payload)
        except StoreCorruptionError:
            raise
        except (KeyError, ValueError, TypeError, OSError) as exc:
            raise StoreCorruptionError(
                f"store object {key} could not be decoded: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # query / management
    # ------------------------------------------------------------------
    def keys(self) -> Iterator[str]:
        """All committed object keys (sidecar present), in sorted order."""
        if not self.objects_dir.is_dir():
            return iter(())
        found = sorted(
            path.stem
            for path in self.objects_dir.glob("??/*.json")
            if len(path.stem) == _KEY_HEX_LENGTH
        )
        return iter(found)

    def entries(self) -> List[Dict[str, Any]]:
        """One summary row per object — the ``repro store ls`` view.

        An object with an unreadable sidecar is reported as a ``"corrupt"``
        row rather than raised: the inspection surface must stay usable
        precisely when the store has a damaged object to show.
        """
        rows = []
        for key in self.keys():
            npz_path, _ = self.object_paths(key)
            try:
                sidecar = self.read_sidecar(key)
            except StoreCorruptionError:
                rows.append(
                    {
                        "key": key,
                        "protocol": "<corrupt sidecar>",
                        "graph": None,
                        "n": None,
                        "trials": 0,
                        "backend": None,
                        "max_rounds": None,
                        "bytes": npz_path.stat().st_size if npz_path.exists() else 0,
                        "created_at": None,
                    }
                )
                continue
            if sidecar is None:  # pragma: no cover - raced deletion
                continue
            trial_set = sidecar.get("trial_set", {})
            cell = sidecar.get("cell") or {}
            rows.append(
                {
                    "key": key,
                    "protocol": trial_set.get("protocol"),
                    "graph": trial_set.get("graph_name"),
                    "n": trial_set.get("num_vertices"),
                    "trials": len(sidecar.get("results", [])),
                    "backend": trial_set.get("backend"),
                    "max_rounds": cell.get("max_rounds"),
                    "bytes": npz_path.stat().st_size if npz_path.exists() else 0,
                    "created_at": sidecar.get("created_at"),
                }
            )
        return rows

    def referenced_keys(self) -> set:
        """Keys referenced by any sweep journal under ``sweeps/``."""
        referenced = set()
        if not self.sweeps_dir.is_dir():
            return referenced
        for journal in sorted(self.sweeps_dir.glob("*.jsonl")):
            for line in journal.read_text(encoding="utf-8").splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue  # a torn tail line from an interrupted run
                key = event.get("key")
                if isinstance(key, str):
                    referenced.add(key)
        return referenced

    def gc(
        self,
        *,
        keep_referenced: bool = True,
        older_than_days: float = 0.0,
        dry_run: bool = False,
    ) -> List[str]:
        """Delete unreferenced objects; returns the keys removed.

        By default an object survives if any sweep journal references it
        (``keep_referenced``) or if it is younger than ``older_than_days``.
        Temp files abandoned by crashed writers are swept too, but only once
        they are over an hour old: a young temp file may belong to a live
        writer about to ``os.replace`` it, and unlinking it mid-flight would
        crash that writer's sweep.  With ``keep_referenced=False`` every
        object older than the cutoff goes — combined with
        ``older_than_days=0`` that empties the store.
        """
        referenced = self.referenced_keys() if keep_referenced else set()
        cutoff = time.time() - older_than_days * 86400.0
        removed = []
        for key in self.keys():
            if key in referenced:
                continue
            npz_path, sidecar_path = self.object_paths(key)
            mtime = sidecar_path.stat().st_mtime
            if mtime > cutoff:
                continue
            removed.append(key)
            if not dry_run:
                # Sidecar first: the object is uncommitted from the moment
                # the marker disappears.
                sidecar_path.unlink(missing_ok=True)
                npz_path.unlink(missing_ok=True)
        if not dry_run and self.objects_dir.is_dir():
            stale_before = time.time() - 3600.0
            # Crashed-writer debris: abandoned temp files, and NPZ payloads
            # whose sidecar (the commit marker) never landed.  Both are
            # swept only once they are over an hour old — a younger file may
            # belong to a live writer between its two writes, and unlinking
            # it mid-flight would crash that writer's sweep.
            stale_candidates = list(self.objects_dir.glob("??/.*.tmp")) + [
                npz
                for npz in self.objects_dir.glob("??/*.npz")
                if not npz.with_suffix(".json").exists()
            ]
            for debris in stale_candidates:
                try:
                    if debris.stat().st_mtime < stale_before:
                        debris.unlink(missing_ok=True)
                except FileNotFoundError:  # pragma: no cover - raced writer
                    pass
        return removed

    def export(self, destination: Union[str, Path], keys: Optional[Sequence[str]] = None) -> int:
        """Copy objects (and journals) into another store root; returns a count.

        With ``keys=None`` the whole store is exported.  The destination can
        then be used as a ``--store`` root directly — e.g. to seed a CI cache
        or share results with a colleague.
        """
        destination_store = ResultStore(destination)
        selected = list(keys) if keys is not None else list(self.keys())
        copied = 0
        for key in selected:
            src_npz, src_sidecar = self.object_paths(key)
            if not src_sidecar.exists():
                raise StoreError(f"cannot export missing key {key}")
            dst_npz, dst_sidecar = destination_store.object_paths(key)
            # Atomic data-before-marker, as in put_trial_set: the destination
            # may be a live shared store with concurrent readers, so neither
            # file may ever be observable half-written.
            _atomic_write_bytes(dst_npz, src_npz.read_bytes())
            _atomic_write_bytes(dst_sidecar, src_sidecar.read_bytes())
            copied += 1
        if keys is None and self.sweeps_dir.is_dir():
            destination_store.sweeps_dir.mkdir(parents=True, exist_ok=True)
            for journal in self.sweeps_dir.glob("*.jsonl"):
                shutil.copy2(journal, destination_store.sweeps_dir / journal.name)
        return copied


def resolve_store(store: Any) -> Optional[ResultStore]:
    """Normalize a ``store=`` argument into a :class:`ResultStore` or None.

    ``None`` consults the :data:`REPRO_STORE <STORE_ENV_VAR>` environment
    variable (a non-empty value enables the store at that path — how CI runs
    the whole suite store-backed); ``False`` disables the store
    unconditionally; a string/path opens a store at that root; an existing
    :class:`ResultStore` passes through.
    """
    if store is None:
        env = os.environ.get(STORE_ENV_VAR, "").strip()
        return ResultStore(env) if env else None
    if store is False:
        return None
    if isinstance(store, ResultStore):
        return store
    return ResultStore(store)
