"""The Section-5 coupling between PUSH and VISIT-EXCHANGE.

The paper's main technical tool is a coupling of the two processes: for every
vertex ``u`` there is a single shared list of uniformly random neighbor choices
``w_u(1), w_u(2), ...``.  In the coupled PUSH process, ``w_u(i)`` is the
neighbor that ``u`` samples in its ``i``-th round after becoming informed.  In
the coupled VISIT-EXCHANGE process, the agent performing the ``i``-th visit to
``u`` *after ``u`` became informed* moves to ``w_u(i)`` on its next step
(visits in the same round are ordered by agent id; all other steps remain
uniformly random and independent).

On top of the coupled run this module computes the quantities the proof of
Theorem 10 is built from:

* the *C-counters* ``C_u(t)`` of Section 5.3 (Equation 4), and
* the congestion ``Q`` of the information path (Lemma 14 shows
  ``C_u(t)`` equals the congestion of a canonical walk).

Lemma 13 (``tau_u <= C_u(t_u)``) then becomes an exact, machine-checkable
invariant of the coupled run, and the experiments verify empirically that
``max_u C_u(t_u) / T_visitx`` stays bounded by a constant on regular graphs —
the heart of Theorem 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..graphs.graph import Graph, GraphError
from .agents import AgentSystem, default_agent_count
from .rng import make_rng

__all__ = ["NeighborChoices", "CoupledRunResult", "CoupledPushVisitExchange"]


class NeighborChoices:
    """Lazily generated shared neighbor-choice lists ``w_u(i)``.

    Both coupled processes read from the same instance, which is exactly what
    makes them coupled: the ``i``-th choice of vertex ``u`` is generated on
    first access and returned verbatim on every later access.
    """

    def __init__(self, graph: Graph, rng: np.random.Generator) -> None:
        self._graph = graph
        self._rng = make_rng(rng)
        self._choices: Dict[int, List[int]] = {}

    def choice(self, vertex: int, index: int) -> int:
        """Return ``w_vertex(index)`` (1-based index, as in the paper)."""
        if index < 1:
            raise ValueError("choice indices are 1-based")
        bucket = self._choices.setdefault(int(vertex), [])
        while len(bucket) < index:
            bucket.append(int(self._graph.sample_neighbor(int(vertex), self._rng)))
        return bucket[index - 1]

    def issued(self, vertex: int) -> int:
        """Number of choices generated so far for ``vertex``."""
        return len(self._choices.get(int(vertex), []))


@dataclass
class CoupledRunResult:
    """Everything measured on one coupled run.

    Attributes
    ----------
    push_inform_round:
        ``tau_u`` for every vertex (round at which PUSH informs it).
    visitx_inform_round:
        ``t_u`` for every vertex (round at which VISIT-EXCHANGE informs it).
    c_counter_at_inform:
        ``C_u(t_u)`` for every vertex.
    push_broadcast_time / visitx_broadcast_time:
        ``T_push`` and ``T_visitx`` of the coupled processes.
    """

    num_vertices: int
    num_agents: int
    push_inform_round: np.ndarray
    visitx_inform_round: np.ndarray
    c_counter_at_inform: np.ndarray
    push_broadcast_time: int
    visitx_broadcast_time: int

    def lemma13_holds(self) -> bool:
        """Check Lemma 13: ``tau_u <= C_u(t_u)`` for every vertex."""
        return bool(np.all(self.push_inform_round <= self.c_counter_at_inform))

    def lemma13_violations(self) -> List[int]:
        """Vertices (if any) violating Lemma 13 — must be empty."""
        mask = self.push_inform_round > self.c_counter_at_inform
        return [int(v) for v in np.flatnonzero(mask)]

    def max_congestion(self) -> int:
        """``max_u C_u(t_u)`` — an upper bound on T_push by Lemma 13."""
        return int(self.c_counter_at_inform.max())

    def congestion_ratio(self) -> float:
        """``max_u C_u(t_u) / T_visitx`` — bounded by a constant per Theorem 10."""
        return self.max_congestion() / max(self.visitx_broadcast_time, 1)

    def broadcast_time_ratio(self) -> float:
        """``T_push / T_visitx`` for the coupled pair."""
        return self.push_broadcast_time / max(self.visitx_broadcast_time, 1)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (the per-vertex arrays as int lists)."""
        return {
            "num_vertices": int(self.num_vertices),
            "num_agents": int(self.num_agents),
            "push_inform_round": [int(v) for v in self.push_inform_round],
            "visitx_inform_round": [int(v) for v in self.visitx_inform_round],
            "c_counter_at_inform": [int(v) for v in self.c_counter_at_inform],
            "push_broadcast_time": int(self.push_broadcast_time),
            "visitx_broadcast_time": int(self.visitx_broadcast_time),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CoupledRunResult":
        """Invert :meth:`to_dict` exactly (all quantities are integers)."""
        return cls(
            num_vertices=int(payload["num_vertices"]),
            num_agents=int(payload["num_agents"]),
            push_inform_round=np.asarray(payload["push_inform_round"], dtype=np.int64),
            visitx_inform_round=np.asarray(payload["visitx_inform_round"], dtype=np.int64),
            c_counter_at_inform=np.asarray(payload["c_counter_at_inform"], dtype=np.int64),
            push_broadcast_time=int(payload["push_broadcast_time"]),
            visitx_broadcast_time=int(payload["visitx_broadcast_time"]),
        )


class CoupledPushVisitExchange:
    """Run PUSH and VISIT-EXCHANGE under the Section-5.1 coupling.

    Parameters
    ----------
    agent_density:
        ``alpha`` with ``|A| = round(alpha * n)``.
    num_agents:
        Explicit agent count overriding ``agent_density``.
    one_agent_per_vertex:
        Use the alternative initial placement (one agent per vertex).
    """

    def __init__(
        self,
        *,
        agent_density: float = 1.0,
        num_agents: Optional[int] = None,
        one_agent_per_vertex: bool = False,
    ) -> None:
        self.agent_density = float(agent_density)
        self.explicit_num_agents = num_agents
        self.one_agent_per_vertex = bool(one_agent_per_vertex)

    # ------------------------------------------------------------------
    def run(
        self,
        graph: Graph,
        source: int,
        seed=None,
        *,
        max_rounds: Optional[int] = None,
    ) -> CoupledRunResult:
        """Execute the coupled processes until both have completed."""
        if not graph.is_connected():
            raise GraphError("the coupling is defined on connected graphs")
        if not (0 <= source < graph.num_vertices):
            raise GraphError("source vertex out of range")

        rng = make_rng(seed)
        choices = NeighborChoices(graph, rng)
        budget = (
            int(max_rounds)
            if max_rounds is not None
            else max(256, 200 * graph.num_vertices)
        )

        visitx = self._run_visit_exchange(graph, source, choices, rng, budget)
        push = self._run_push(graph, source, choices, budget)

        return CoupledRunResult(
            num_vertices=graph.num_vertices,
            num_agents=visitx["num_agents"],
            push_inform_round=push["inform_round"],
            visitx_inform_round=visitx["inform_round"],
            c_counter_at_inform=visitx["c_counter"],
            push_broadcast_time=push["broadcast_time"],
            visitx_broadcast_time=visitx["broadcast_time"],
        )

    # ------------------------------------------------------------------
    def _run_visit_exchange(
        self,
        graph: Graph,
        source: int,
        choices: NeighborChoices,
        rng: np.random.Generator,
        budget: int,
    ) -> dict:
        """Coupled VISIT-EXCHANGE: departures from informed vertices follow w_u(i)."""
        n = graph.num_vertices
        if self.one_agent_per_vertex:
            agents = AgentSystem.one_per_vertex(graph)
        else:
            count = (
                int(self.explicit_num_agents)
                if self.explicit_num_agents is not None
                else default_agent_count(graph, self.agent_density)
            )
            agents = AgentSystem.from_stationary(graph, count, rng)

        inform_round = np.full(n, -1, dtype=np.int64)
        inform_round[source] = 0
        c_counter = np.zeros(n, dtype=np.int64)
        c_at_inform = np.zeros(n, dtype=np.int64)
        # Number of coupled choices already consumed per vertex.
        consumed = np.zeros(n, dtype=np.int64)
        informed_vertices = 1

        agents.inform_agents(agents.agents_at(source))

        broadcast_time = 0 if informed_vertices == n else None
        round_index = 0
        while broadcast_time is None and round_index < budget:
            round_index += 1
            previous_positions = agents.positions.copy()
            informed_before_step = agents.informed.copy()
            occupancy_before = agents.occupancy()

            # --- move agents: coupled from informed vertices, uniform otherwise.
            new_positions = np.empty_like(agents.positions)
            order = np.argsort(previous_positions, kind="stable")
            for agent in order.tolist():
                here = int(previous_positions[agent])
                if inform_round[here] >= 0 and inform_round[here] <= round_index - 1:
                    consumed[here] += 1
                    new_positions[agent] = choices.choice(here, int(consumed[here]))
                else:
                    new_positions[agent] = graph.sample_neighbor(here, rng)
            agents.positions = new_positions

            # --- C-counter update for vertices informed before this round.
            previously_informed = inform_round >= 0
            c_counter[previously_informed] += occupancy_before[previously_informed]

            # --- vertex informing by previously informed agents.
            informing_positions = agents.positions[informed_before_step]
            newly_informed_vertices = np.unique(
                informing_positions[inform_round[informing_positions] < 0]
            )
            for vertex in newly_informed_vertices.tolist():
                inform_round[vertex] = round_index
                # S_u: neighbors from which an informed agent just arrived.
                arrivals = informed_before_step & (agents.positions == vertex)
                origins = np.unique(previous_positions[arrivals])
                valid = [
                    int(v)
                    for v in origins.tolist()
                    if 0 <= inform_round[int(v)] < round_index
                ]
                if valid:
                    c_counter[vertex] = int(min(c_counter[v] for v in valid))
                c_at_inform[vertex] = c_counter[vertex]
                informed_vertices += 1

            # --- agents learn from informed vertices.
            agents.informed |= inform_round[agents.positions] >= 0

            if informed_vertices == n:
                broadcast_time = round_index

        if broadcast_time is None:
            raise RuntimeError(
                "coupled visit-exchange did not finish within the round budget"
            )
        c_at_inform[source] = 0
        return {
            "inform_round": inform_round,
            "c_counter": c_at_inform,
            "broadcast_time": broadcast_time,
            "num_agents": agents.num_agents,
        }

    # ------------------------------------------------------------------
    def _run_push(
        self, graph: Graph, source: int, choices: NeighborChoices, budget: int
    ) -> dict:
        """Coupled PUSH: vertex u's i-th sample after being informed is w_u(i)."""
        n = graph.num_vertices
        inform_round = np.full(n, -1, dtype=np.int64)
        inform_round[source] = 0
        informed = 1

        round_index = 0
        # The coupled push must be allowed more rounds than visit-exchange used;
        # Theorem 10 only promises a constant-factor relation.
        push_budget = max(budget, 64) * 4
        while informed < n and round_index < push_budget:
            round_index += 1
            senders = np.flatnonzero((inform_round >= 0) & (inform_round < round_index))
            for sender in senders.tolist():
                index = round_index - int(inform_round[sender])
                target = choices.choice(sender, index)
                if inform_round[target] < 0:
                    inform_round[target] = round_index
                    informed += 1
        if informed < n:
            raise RuntimeError("coupled push did not finish within the round budget")
        return {"inform_round": inform_round, "broadcast_time": round_index}
