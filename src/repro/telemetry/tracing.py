"""Trace spans: append-only JSONL phase timings gated on ``REPRO_TRACE``.

``span("phase", **attrs)`` is a context manager.  While ``REPRO_TRACE`` is
unset it returns a process-wide no-op singleton — no allocation, no I/O, no
record — so instrumented hot paths (the kernel round loop, store reads) cost
one environment lookup.  When ``REPRO_TRACE`` names a directory, every span
appends one JSON line to ``trace-<pid>.jsonl`` there on exit::

    {"ph": "X", "name": "kernel.rounds", "ts": 12.481, "dur": 0.932,
     "wall": 1754500000.1, "pid": 4242, "tid": 140.., "depth": 1,
     "parent": "cell.execute", "attrs": {"protocol": "push", "n": 16384}}

``ts``/``dur`` come from :func:`time.monotonic` (robust against clock steps);
``wall`` is :func:`time.time` at span entry so files from different processes
can be aligned.  ``trace_event`` records instantaneous events (``"ph": "i"``)
— the kernel round loop uses it for strided informed-count/frontier samples.

Spans never feed back into computation: no store key, seed, or trajectory
depends on whether tracing is on.  The reader half of the module
(:func:`read_events`, :func:`summarize_events`, :func:`chrome_trace`) backs
``repro trace summary`` and ``repro trace export --chrome``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence

__all__ = [
    "TRACE_ENV_VAR",
    "span",
    "trace_event",
    "trace_enabled",
    "trace_files",
    "read_events",
    "summarize_events",
    "chrome_trace",
]

TRACE_ENV_VAR = "REPRO_TRACE"


def trace_enabled() -> bool:
    """Whether spans currently record (``REPRO_TRACE`` names a directory)."""
    return bool(os.environ.get(TRACE_ENV_VAR, "").strip())


class _NullSpan:
    """Singleton no-op: the disabled-mode fast path allocates nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _TraceWriter:
    """Lazily opened append-only JSONL sink, one file per process.

    The pid is re-checked on every write so forked workers (the process-pool
    scheduler) each land in their own ``trace-<pid>.jsonl`` instead of
    interleaving writes into an inherited handle.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._handle = None
        self._pid: Optional[int] = None
        self._dir: Optional[str] = None

    def write(self, record: Dict[str, Any]) -> None:
        directory = os.environ.get(TRACE_ENV_VAR, "").strip()
        if not directory:
            return
        line = json.dumps(record, separators=(",", ":"), sort_keys=True, default=str)
        with self._lock:
            pid = os.getpid()
            if self._handle is None or self._pid != pid or self._dir != directory:
                if self._handle is not None:
                    try:
                        self._handle.close()
                    except OSError:
                        pass
                path = Path(directory)
                try:
                    path.mkdir(parents=True, exist_ok=True)
                    self._handle = open(
                        path / f"trace-{pid}.jsonl", "a", encoding="utf-8"
                    )
                except OSError:
                    self._handle = None
                    self._pid = self._dir = None
                    return  # tracing is best-effort: never fail the traced work
                self._pid, self._dir = pid, directory
            try:
                self._handle.write(line + "\n")
                self._handle.flush()
            except (OSError, ValueError):
                pass


_WRITER = _TraceWriter()
_STACK = threading.local()


def _stack() -> List[str]:
    names = getattr(_STACK, "names", None)
    if names is None:
        names = _STACK.names = []
    return names


class _Span:
    """An enabled span: records name, nesting, and monotonic duration."""

    __slots__ = ("name", "attrs", "_start", "_wall", "_depth", "_parent")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        names = _stack()
        self._depth = len(names)
        self._parent = names[-1] if names else None
        names.append(self.name)
        self._wall = time.time()
        self._start = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.monotonic() - self._start
        names = _stack()
        if names and names[-1] == self.name:
            names.pop()
        record: Dict[str, Any] = {
            "ph": "X",
            "name": self.name,
            "ts": round(self._start, 6),
            "dur": round(duration, 6),
            "wall": round(self._wall, 6),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "depth": self._depth,
        }
        if self._parent is not None:
            record["parent"] = self._parent
        if exc_type is not None:
            record["error"] = exc_type.__name__
        if self.attrs:
            record["attrs"] = self.attrs
        _WRITER.write(record)
        return False


def span(name: str, **attrs: Any):
    """A context manager timing one phase; a shared no-op when disabled."""
    if not os.environ.get(TRACE_ENV_VAR, "").strip():
        return _NULL_SPAN
    return _Span(name, attrs)


def trace_event(name: str, **attrs: Any) -> None:
    """Record one instantaneous event (no duration); no-op when disabled."""
    if not os.environ.get(TRACE_ENV_VAR, "").strip():
        return
    record: Dict[str, Any] = {
        "ph": "i",
        "name": name,
        "ts": round(time.monotonic(), 6),
        "wall": round(time.time(), 6),
        "pid": os.getpid(),
        "tid": threading.get_ident(),
    }
    if attrs:
        record["attrs"] = attrs
    _WRITER.write(record)


# ----------------------------------------------------------------------
# readers: back the `repro trace` CLI
# ----------------------------------------------------------------------


def trace_files(target: str) -> List[Path]:
    """The JSONL files behind *target*: the file itself, or ``dir/*.jsonl``."""
    path = Path(target)
    if path.is_dir():
        return sorted(path.glob("*.jsonl"))
    return [path]


def read_events(paths: Iterable[Path]) -> List[Dict[str, Any]]:
    """Parse trace records from *paths*, skipping malformed lines.

    Torn final lines are expected — the writer appends while readers may run
    concurrently — so anything that does not parse to a dict is dropped.
    """
    events: List[Dict[str, Any]] = []
    for path in paths:
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "name" in record:
                events.append(record)
    return events


def summarize_events(events: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Aggregate spans into per-phase rows, heaviest total wall time first.

    Instantaneous events (``"ph": "i"``) are counted but contribute no time.
    """
    phases: Dict[str, Dict[str, Any]] = {}
    for event in events:
        name = str(event.get("name"))
        row = phases.setdefault(
            name,
            {
                "phase": name,
                "count": 0,
                "events": 0,
                "total_seconds": 0.0,
                "min_seconds": None,
                "max_seconds": 0.0,
            },
        )
        if event.get("ph") == "i":
            row["events"] += 1
            continue
        try:
            duration = float(event.get("dur", 0.0))
        except (TypeError, ValueError):
            continue
        row["count"] += 1
        row["total_seconds"] += duration
        row["max_seconds"] = max(row["max_seconds"], duration)
        if row["min_seconds"] is None or duration < row["min_seconds"]:
            row["min_seconds"] = duration
    rows = []
    for row in phases.values():
        count = row["count"]
        row["mean_seconds"] = row["total_seconds"] / count if count else 0.0
        if row["min_seconds"] is None:
            row["min_seconds"] = 0.0
        rows.append(row)
    rows.sort(key=lambda r: (-r["total_seconds"], r["phase"]))
    return rows


def chrome_trace(events: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Chrome ``chrome://tracing`` / Perfetto trace-event list.

    Timestamps use the recorded wall clock (microseconds) so spans from
    different processes line up on one timeline.
    """
    out: List[Dict[str, Any]] = []
    for event in events:
        try:
            wall = float(event.get("wall", event.get("ts", 0.0)))
        except (TypeError, ValueError):
            continue
        entry: Dict[str, Any] = {
            "name": event.get("name", "?"),
            "ph": "i" if event.get("ph") == "i" else "X",
            "ts": int(wall * 1e6),
            "pid": event.get("pid", 0),
            "tid": event.get("tid", 0),
        }
        if entry["ph"] == "X":
            try:
                entry["dur"] = max(0, int(float(event.get("dur", 0.0)) * 1e6))
            except (TypeError, ValueError):
                entry["dur"] = 0
        else:
            entry["s"] = "t"  # instant-event scope: thread
        attrs = event.get("attrs")
        if isinstance(attrs, dict) and attrs:
            entry["args"] = attrs
        out.append(entry)
    out.sort(key=lambda entry: entry["ts"])
    return out
