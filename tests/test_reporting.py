"""Tests for report generation (repro.experiments.reporting)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    experiment_markdown_section,
    experiment_table,
    get_experiment,
    run_coupling_experiment,
    run_experiment,
    run_fairness_experiment,
)
from repro.experiments.reporting import (
    claims_for_experiment,
    coupling_markdown_section,
    fairness_markdown_section,
)


@pytest.fixture(scope="module")
def small_fig1a_result():
    config = get_experiment("fig1a-star")
    return run_experiment(config, base_seed=0, sizes=(16, 32), trials=2)


class TestExperimentTable:
    def test_plain_table_contains_sizes_and_protocols(self, small_fig1a_result):
        text = experiment_table(small_fig1a_result)
        assert "16" in text and "32" in text
        assert "push" in text and "visit-exchange" in text

    def test_markdown_table_pipe_format(self, small_fig1a_result):
        text = experiment_table(small_fig1a_result, markdown=True)
        assert text.startswith("| size | n |")
        assert text.count("\n") >= 3


class TestMarkdownSection:
    def test_section_structure(self, small_fig1a_result):
        text = experiment_markdown_section(small_fig1a_result)
        assert text.startswith("### `fig1a-star`")
        assert "Paper claims checked:" in text
        assert "Measured growth:" in text
        assert "| size | n |" in text

    def test_claims_listed(self, small_fig1a_result):
        claims = claims_for_experiment(small_fig1a_result)
        assert {c.claim_id for c in claims} == {"lemma2a", "lemma2b", "lemma2c", "lemma2d"}

    def test_notes_included_when_present(self, small_fig1a_result):
        assert "Notes:" in experiment_markdown_section(small_fig1a_result)


class TestSpecialSections:
    def test_coupling_section(self):
        result = run_coupling_experiment(sizes=(32,), runs_per_size=1, base_seed=0)
        text = coupling_markdown_section(result)
        assert "coupling-congestion" in text
        assert "Lemma 13" in text
        assert "| n |" in text

    def test_fairness_section(self):
        result = run_fairness_experiment(size=48, walk_rounds=40, push_pull_trials=1)
        text = fairness_markdown_section(result)
        assert "fairness" in text
        assert "gini" in text.lower()
