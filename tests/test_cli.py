"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli.main import build_parser, main


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_parses_options(self):
        args = build_parser().parse_args(
            ["run", "fig1a-star", "--seed", "3", "--trials", "2", "--scale", "0.5"]
        )
        assert args.experiment_id == "fig1a-star"
        assert args.seed == 3
        assert args.trials == 2
        assert args.scale == 0.5

    def test_simulate_command_parses(self):
        args = build_parser().parse_args(
            ["simulate", "push", "star", "100", "--source", "2"]
        )
        assert args.protocol == "push"
        assert args.family == "star"
        assert args.size == 100

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "gossip-9000", "star", "10"])


class TestCommands:
    def test_list_outputs_experiment_ids(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig1a-star" in output
        assert "thm1-regular-random" in output

    def test_simulate_star(self, capsys):
        assert main(["simulate", "push-pull", "star", "30", "--source", "1"]) == 0
        output = capsys.readouterr().out
        assert "broadcast time" in output

    def test_simulate_visit_exchange_reports_agents(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "visit-exchange",
                    "double-star",
                    "40",
                    "--source",
                    "2",
                    "--agent-density",
                    "2.0",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "agents = 80" in output

    def test_simulate_every_family_builds(self, capsys):
        families_and_sizes = [
            ("star", "20"),
            ("double-star", "20"),
            ("heavy-binary-tree", "15"),
            ("siamese-heavy-tree", "15"),
            ("cycle-stars-cliques", "3"),
            ("complete", "12"),
            ("hypercube", "4"),
            ("random-regular", "16"),
        ]
        for family, size in families_and_sizes:
            assert main(["simulate", "push-pull", family, size]) == 0

    def test_run_scaled_experiment(self, capsys):
        assert (
            main(["run", "fig1a-star", "--scale", "0.1", "--trials", "1"]) == 0
        )
        output = capsys.readouterr().out
        assert "Star graph" in output

    def test_run_markdown_mode(self, capsys):
        assert (
            main(
                ["run", "fig1b-double-star", "--scale", "0.1", "--trials", "1", "--markdown"]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert output.startswith("### `fig1b-double-star`")

    def test_run_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "unknown-experiment"])
