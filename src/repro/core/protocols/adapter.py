"""Adapter driving a batched protocol kernel as a sequential RoundProtocol.

The vectorized kernels in :mod:`repro.core.kernels` are the single source of
truth for every protocol's round transition.  This module provides the bridge
to the round-based :class:`~repro.core.engine.Engine`: an adapter instantiates
its kernel with a **single trial** and maps the ``RoundProtocol`` life cycle
(``initialize`` / ``execute_round`` / ``is_complete`` / accessors) onto the
kernel's batch interface with ``k = 1``.

RNG compatibility: the engine hands ``initialize`` a
:class:`numpy.random.Generator`; the adapter passes that very generator to the
kernel as trial 0's stream (``batch_generator`` passes generators through
unchanged), so a run remains a pure, reproducible function of its seed.  The
*sequence* of draws differs from the pre-kernel sequential implementations, so
results across versions agree statistically, not sample-for-sample — the same
contract the batched backend always had.

Observer support: when the engine attaches a truthy observer group, the
adapter registers it as trial 0's group and the kernel reports informing
edges through the ``on_edges_used`` batch hook; the engine itself delivers
``on_run_start`` / ``on_round_end`` / ``on_run_end`` exactly as before.

Dynamic topology: a ``dynamics=`` keyword (any spec accepted by
:func:`repro.graphs.dynamic.resolve_dynamics`) is peeled off the kernel
kwargs and attached to the kernel before ``initialize``.  The schedule's
masks are a pure function of the round number, so the sequential adapter and
the batched driver see the same topology round for round.
"""

from __future__ import annotations

from ...graphs.dynamic import _resolve_dynamics
from ..engine import RoundProtocol
from ..rng import make_rng

__all__ = ["KernelProtocolAdapter"]


class KernelProtocolAdapter(RoundProtocol):
    """Drive a :class:`~repro.core.kernels.base.BatchKernel` with one trial."""

    #: Kernel class instantiated per run; set by subclasses.
    kernel_class = None

    def __init__(self, **kernel_kwargs) -> None:
        self._dynamics = _resolve_dynamics(kernel_kwargs.pop("dynamics", None))
        self._kernel_kwargs = dict(kernel_kwargs)
        self._kernel = None

    @property
    def kernel(self):
        """The live kernel of the current run (after ``initialize``)."""
        assert self._kernel is not None, "protocol not initialized"
        return self._kernel

    def initialize(self, graph, source, rng) -> None:
        kernel = self.kernel_class(**self._kernel_kwargs)
        # The sequential accessors (``informed[0]`` etc.) read the dense
        # per-vertex state, and a one-trial run gains nothing from frontier
        # bookkeeping, so the adapter always drives the dense tier.
        kernel.frontier_mode = "dense"
        if self.observers:
            # The engine delivers the run/round hooks; the kernel only needs
            # the group for its edge-reporting slow path.
            kernel.trial_observers = [self.observers]
        if self._dynamics is not None:
            kernel.dynamics = self._dynamics
        kernel.initialize(graph, int(source), [make_rng(rng)])
        self._kernel = kernel

    def execute_round(self, round_index: int, rng) -> None:
        # All randomness flows from the generator captured at initialize
        # (the same object the engine passes here), so the per-round ``rng``
        # argument needs no separate handling.
        self.kernel.step(1)

    def is_complete(self) -> bool:
        return bool(self.kernel.complete_rows(1)[0])

    def informed_vertex_count(self) -> int:
        return int(self.kernel.informed_vertex_counts(1)[0])

    def informed_agent_count(self) -> int:
        return int(self.kernel.informed_agent_counts(1)[0])

    def num_agents(self) -> int:
        return int(self.kernel.num_agents())

    def messages_sent(self) -> int:
        return int(self.kernel.messages_by_trial()[0])

    def extra_metadata(self) -> dict:
        return dict(self.kernel.trial_metadata(0))
