"""Benchmark / reproduction of Figure 1(d): siamese heavy binary trees (Lemma 8).

Paper claims reproduced here:
* ``T_push = O(log n)`` w.h.p.,
* ``E[T_visitx] = Omega(n)`` and ``E[T_meetx] = Omega(n)`` — information can
  only cross between the two halves through the rarely-visited shared root.
"""

from __future__ import annotations

import math

import pytest

from _helpers import mean_broadcast_time
from repro.experiments import get_experiment, run_experiment
from repro.graphs.siamese_tree import left_leaves, siamese_heavy_binary_tree

TREE_SIZE = 255


@pytest.fixture(scope="module")
def graph():
    return siamese_heavy_binary_tree(TREE_SIZE)


@pytest.fixture(scope="module")
def source(graph):
    return left_leaves(graph)[0]


class TestTimings:
    def test_push_single_run(self, benchmark, graph, source):
        benchmark.pedantic(
            lambda: mean_broadcast_time("push", graph, source=source, trials=1),
            rounds=3,
            iterations=1,
        )

    def test_visit_exchange_single_run(self, benchmark, graph, source):
        benchmark.pedantic(
            lambda: mean_broadcast_time("visit-exchange", graph, source=source, trials=1),
            rounds=2,
            iterations=1,
        )

    def test_meet_exchange_single_run(self, benchmark, graph, source):
        benchmark.pedantic(
            lambda: mean_broadcast_time(
                "meet-exchange", graph, source=source, trials=1, max_rounds=500000
            ),
            rounds=2,
            iterations=1,
        )


class TestShape:
    def test_lemma8_orderings(self, benchmark, graph, source):
        times = {}

        def measure():
            times["push"] = mean_broadcast_time("push", graph, source=source, trials=30)
            times["visit-exchange"] = mean_broadcast_time(
                "visit-exchange", graph, source=source, trials=30
            )
            times["meet-exchange"] = mean_broadcast_time(
                "meet-exchange", graph, source=source, trials=30, max_rounds=500000
            )
            return times

        benchmark.pedantic(measure, rounds=1, iterations=1)
        # The agent protocols' Omega(n) lower bounds have small constants
        # (first root visit after ~n/16 rounds) and sizeable variance — the
        # meet-exchange time in particular is heavy-tailed, so it gets 30
        # (batched, cheap) trials.  The point-size assertions use conservative
        # factors; the linear *growth* is checked by the sweep test below and
        # by the registered experiment.
        assert times["push"] < 8 * math.log2(graph.num_vertices)
        assert times["visit-exchange"] > 4 * times["push"]
        assert times["meet-exchange"] > 2 * times["push"]

    def test_registered_experiment_runs_at_reduced_scale(self, benchmark):
        config = get_experiment("fig1d-siamese")

        def sweep():
            return run_experiment(config, base_seed=0, sizes=(63, 127), trials=2)

        result = benchmark.pedantic(sweep, rounds=1, iterations=1)
        _sizes, push = result.series("push")
        _sizes2, visitx = result.series("visit-exchange")
        assert push[-1] < visitx[-1]
