"""Graph ingestion: edge-list / CSV / Matrix Market files → CSR graphs.

Real-world topologies (road networks, commute graphs, social snapshots)
arrive as text files; this module parses them into :class:`repro.graphs.Graph`
instances so ingested scenarios flow through exactly the same
content-addressed machinery as the generative families.  The contract that
makes that sound:

* **Structural fingerprints.**  The ingested graph is fingerprinted by
  :func:`repro.store.keys.graph_fingerprint` over its *parsed* CSR arrays
  (semantics v2), never over the raw bytes — two files listing the same
  edges in different orders produce the same graph, the same fingerprint
  and therefore the same store cells.
* **Loud canonicalization.**  For that order-independence to hold, the
  parser must not silently interpret defects: duplicate edges (including a
  pair listed in both directions) and self-loops raise :class:`IngestError`
  naming the file, the line and the offending pair.  Passing
  ``canonicalize=True`` instead drops self-loops and collapses duplicates —
  and that choice is recorded in the builder spec, so a canonicalized and a
  strict ingest of the same file are distinct builder params (even though a
  clean file yields the same graph either way).
* **A versioned ``file`` builder.**  The family registers
  ``("file", BUILDER_VERSION)`` where the version covers the *parser*:
  any change to format sniffing, label relabeling, or canonicalization
  semantics must bump it, invalidating manifest-trusted warm starts.  The
  builder params identify the input by its content hash
  (:func:`file_fingerprint`), not its path, so moving a fixture does not
  invalidate its cells.

Formats (sniffed from the suffix, or forced via ``format=``):

``edges``
    Whitespace-separated pairs, one edge per line; ``#``/``%`` comments;
    extra columns (weights, timestamps) are ignored.
``csv``
    Comma-separated pairs; an optional header row whose first two fields
    are recognized names (``source,target``, ``from,to``, ...) is skipped;
    extra columns ignored.
``mtx``
    Matrix Market ``coordinate`` format, 1-based indices.  ``symmetric``
    entries are undirected edges as-is; ``general`` entries are direction-
    canonicalized first (so ``i j`` plus ``j i`` is a duplicate).  The
    declared dimension is kept, preserving isolated vertices.

Vertex labels in ``edges``/``csv`` files are opaque tokens, relabeled to
``0..k-1`` by sorted order — numeric when every label parses as an
integer, lexicographic otherwise — so the contiguous ids are a pure
function of the label *set*, not of file order.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..graphs.builders import register_builder
from ..graphs.graph import Graph, GraphError

__all__ = [
    "BUILDER_VERSION",
    "IngestError",
    "file_fingerprint",
    "ingest_graph",
    "sniff_format",
]

#: Version of the ``file`` builder family.  Covers the parser: bump on any
#: change to format sniffing, relabeling, or canonicalization semantics.
BUILDER_VERSION = 1
register_builder("file", BUILDER_VERSION)

_FORMATS = ("edges", "csv", "mtx")

#: Header names recognized (case-insensitively) in a CSV first row.
_CSV_HEADER_TOKENS = {
    "source", "target", "src", "dst", "from", "to",
    "u", "v", "node1", "node2", "id1", "id2",
}


class IngestError(GraphError):
    """An input file cannot be parsed into a valid simple undirected graph."""


def file_fingerprint(path) -> str:
    """SHA-256 hex digest of a file's raw bytes.

    This is the *input* identity used in ``file`` builder specs (cheap: no
    parse, no construction) — distinct from the structural fingerprint of
    the parsed graph, which is what store cell keys hash.
    """
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def sniff_format(path) -> str:
    """Guess the file format from its suffix, falling back to content.

    ``.mtx``/``.mm`` → ``mtx``; ``.csv`` → ``csv``; a leading
    ``%%MatrixMarket`` banner → ``mtx``; anything else → ``edges``.
    """
    suffix = Path(path).suffix.lower()
    if suffix in (".mtx", ".mm"):
        return "mtx"
    if suffix == ".csv":
        return "csv"
    try:
        with open(path, "rb") as handle:
            head = handle.read(64)
    except OSError:
        return "edges"
    if head.startswith(b"%%MatrixMarket"):
        return "mtx"
    return "edges"


def _data_lines(path) -> List[Tuple[int, str]]:
    """Non-empty, non-comment lines with their 1-based line numbers."""
    lines: List[Tuple[int, str]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, raw in enumerate(handle, start=1):
            text = raw.strip()
            if not text or text.startswith("#") or text.startswith("%"):
                continue
            lines.append((number, text))
    return lines


def _relabel(
    raw_pairs: List[Tuple[str, str]],
) -> Tuple[int, List[Tuple[int, int]]]:
    """Map opaque labels to 0..k-1 by sorted order (numeric when possible)."""
    labels = {label for pair in raw_pairs for label in pair}
    try:
        ordered = sorted(labels, key=int)
    except ValueError:
        ordered = sorted(labels)
    index = {label: i for i, label in enumerate(ordered)}
    return len(ordered), [(index[a], index[b]) for a, b in raw_pairs]


def _parse_pairs(path, *, delimiter: Optional[str], skip_header: bool):
    """Shared edge-list/CSV parse: (line, label-pair) tuples."""
    lines = _data_lines(path)
    if skip_header and lines:
        _, first = lines[0]
        fields = [f.strip().lower() for f in first.split(delimiter)]
        if len(fields) >= 2 and fields[0] in _CSV_HEADER_TOKENS and fields[1] in _CSV_HEADER_TOKENS:
            lines = lines[1:]
    pairs: List[Tuple[int, Tuple[str, str]]] = []
    for number, text in lines:
        fields = [f.strip() for f in text.split(delimiter)]
        fields = [f for f in fields if f]
        if len(fields) < 2:
            raise IngestError(
                f"{path}: line {number}: expected at least two fields, got {text!r}"
            )
        pairs.append((number, (fields[0], fields[1])))
    return pairs


def _parse_mtx(path):
    """Matrix Market coordinate parse → (num_vertices, line/pair tuples)."""
    with open(path, "r", encoding="utf-8") as handle:
        header = handle.readline()
    tokens = header.strip().lower().split()
    if len(tokens) < 5 or tokens[0] != "%%matrixmarket" or tokens[1] != "matrix":
        raise IngestError(f"{path}: missing %%MatrixMarket matrix banner")
    layout, symmetry = tokens[2], tokens[4]
    if layout != "coordinate":
        raise IngestError(
            f"{path}: only 'coordinate' Matrix Market layout is supported, got {layout!r}"
        )
    if symmetry not in ("general", "symmetric"):
        raise IngestError(
            f"{path}: unsupported Matrix Market symmetry {symmetry!r} "
            "(expected 'general' or 'symmetric')"
        )
    lines = _data_lines(path)
    if not lines:
        raise IngestError(f"{path}: missing Matrix Market size line")
    number, size_line = lines[0]
    fields = size_line.split()
    if len(fields) < 3:
        raise IngestError(f"{path}: line {number}: malformed size line {size_line!r}")
    try:
        rows, cols, nnz = int(fields[0]), int(fields[1]), int(fields[2])
    except ValueError:
        raise IngestError(
            f"{path}: line {number}: malformed size line {size_line!r}"
        ) from None
    if rows != cols:
        raise IngestError(
            f"{path}: adjacency matrix must be square, got {rows}x{cols}"
        )
    entries: List[Tuple[int, Tuple[int, int]]] = []
    for number, text in lines[1:]:
        fields = text.split()
        try:
            i, j = int(fields[0]), int(fields[1])
        except (IndexError, ValueError):
            raise IngestError(
                f"{path}: line {number}: malformed coordinate entry {text!r}"
            ) from None
        if not (1 <= i <= rows and 1 <= j <= rows):
            raise IngestError(
                f"{path}: line {number}: index ({i}, {j}) outside declared "
                f"dimension {rows}"
            )
        entries.append((number, (i - 1, j - 1)))
    if len(entries) != nnz:
        raise IngestError(
            f"{path}: declared {nnz} entries but found {len(entries)}"
        )
    return rows, entries


def _check_and_canonicalize(
    path,
    num_vertices: int,
    located_pairs: List[Tuple[int, Tuple[int, int]]],
    *,
    canonicalize: bool,
) -> np.ndarray:
    """Apply the duplicate/self-loop policy and return a clean (m, 2) array.

    Strict mode (the default) raises :class:`IngestError` on the first
    self-loop or duplicate — including a pair listed in both directions —
    naming the file, line and pair.  ``canonicalize=True`` drops self-loops
    and collapses duplicates instead; the caller records that flag in the
    builder spec.
    """
    if not located_pairs:
        raise IngestError(f"{path}: no edges found")
    lines = np.array([number for number, _ in located_pairs], dtype=np.int64)
    us = np.array([pair[0] for _, pair in located_pairs], dtype=np.int64)
    vs = np.array([pair[1] for _, pair in located_pairs], dtype=np.int64)

    loops = us == vs
    if loops.any():
        if not canonicalize:
            at = int(np.flatnonzero(loops)[0])
            raise IngestError(
                f"{path}: line {int(lines[at])}: self-loop on vertex "
                f"{int(us[at])}; pass canonicalize=True to drop self-loops"
            )
        keep = ~loops
        lines, us, vs = lines[keep], us[keep], vs[keep]
        if us.size == 0:
            raise IngestError(f"{path}: no edges left after dropping self-loops")

    lo = np.minimum(us, vs)
    hi = np.maximum(us, vs)
    packed = lo * np.int64(num_vertices) + hi
    unique, first_index, counts = np.unique(
        packed, return_index=True, return_counts=True
    )
    if (counts > 1).any() and not canonicalize:
        dup = unique[counts > 1][0]
        where = np.flatnonzero(packed == dup)
        u, v = int(dup // num_vertices), int(dup % num_vertices)
        raise IngestError(
            f"{path}: duplicate edge ({u}, {v}) at lines "
            f"{', '.join(str(int(lines[i])) for i in where)} (a pair listed "
            "in both directions counts); pass canonicalize=True to collapse "
            "duplicates"
        )
    order = np.sort(first_index)
    return np.stack([lo[order], hi[order]], axis=1)


def ingest_graph(
    path,
    *,
    format: str = "auto",
    canonicalize: bool = False,
    name: Optional[str] = None,
) -> Graph:
    """Parse a graph file into a :class:`~repro.graphs.Graph`.

    ``format`` is one of ``"auto"`` (sniff, see :func:`sniff_format`),
    ``"edges"``, ``"csv"`` or ``"mtx"``.  Strict by default: duplicate
    edges and self-loops raise :class:`IngestError`; ``canonicalize=True``
    cleans them instead (record that flag wherever the ingest identity
    matters — the ``file`` builder spec does).  ``name`` defaults to the
    file's stem.
    """
    path = Path(path)
    fmt = format if format != "auto" else sniff_format(path)
    if fmt not in _FORMATS:
        raise IngestError(
            f"unknown ingest format {format!r}; expected one of "
            f"{', '.join(_FORMATS)} or 'auto'"
        )
    if not path.exists():
        raise IngestError(f"{path}: no such file")

    if fmt == "mtx":
        num_vertices, located = _parse_mtx(path)
    else:
        delimiter = "," if fmt == "csv" else None
        raw = _parse_pairs(path, delimiter=delimiter, skip_header=fmt == "csv")
        num_vertices, pairs = _relabel([pair for _, pair in raw])
        located = [(number, pair) for (number, _), pair in zip(raw, pairs)]
    edges = _check_and_canonicalize(
        path, num_vertices, located, canonicalize=canonicalize
    )
    return Graph(num_vertices, edges, name=name if name is not None else path.stem)


def file_builder_params(
    path, *, format: str = "auto", canonicalize: bool = False
) -> Dict[str, Any]:
    """The ``file`` family's canonical builder params for one input file.

    Content-addressed: the file is identified by its byte hash plus the
    parse options, never its path — so a manifest-trusted warm start
    survives moving the fixture, while editing a single byte of it (or
    flipping ``canonicalize``) honestly invalidates the trust.
    """
    fmt = format if format != "auto" else sniff_format(path)
    return {
        "sha256": file_fingerprint(path),
        "format": fmt,
        "canonicalize": bool(canonicalize),
    }
