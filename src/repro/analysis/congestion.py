"""Analysis of coupled-run congestion (Section 5 of the paper).

The proof of Theorem 10 bounds ``T_push`` by the maximum congestion of
canonical walks in visit-exchange.  The :class:`repro.core.coupling`
machinery produces, for every vertex, the C-counter value ``C_u(t_u)`` at the
moment the vertex is informed; by Lemma 13 this dominates ``tau_u``, and by
Lemma 14 it equals the congestion of a canonical walk.  The summaries here
aggregate those per-vertex quantities over repeated coupled runs so the
benchmark for the ``coupling-congestion`` experiment can report them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..core.coupling import CoupledRunResult

__all__ = ["CongestionSummary", "summarize_coupled_runs"]


@dataclass(frozen=True)
class CongestionSummary:
    """Aggregate view of a collection of coupled push/visit-exchange runs."""

    num_runs: int
    lemma13_violation_count: int
    mean_push_time: float
    mean_visitx_time: float
    mean_broadcast_ratio: float
    max_broadcast_ratio: float
    mean_congestion_ratio: float
    max_congestion_ratio: float

    @property
    def lemma13_always_holds(self) -> bool:
        """True when no run violated ``tau_u <= C_u(t_u)`` for any vertex."""
        return self.lemma13_violation_count == 0

    def describe(self) -> str:
        """One-line human readable rendering."""
        return (
            f"runs={self.num_runs} lemma13_violations={self.lemma13_violation_count} "
            f"T_push/T_visitx mean={self.mean_broadcast_ratio:.2f} "
            f"max={self.max_broadcast_ratio:.2f}; congestion/T_visitx "
            f"mean={self.mean_congestion_ratio:.2f} max={self.max_congestion_ratio:.2f}"
        )


def summarize_coupled_runs(runs: Sequence[CoupledRunResult]) -> CongestionSummary:
    """Aggregate Lemma-13 checks and ratio statistics over coupled runs."""
    if not runs:
        raise ValueError("need at least one coupled run to summarize")
    violations = 0
    push_times: List[float] = []
    visitx_times: List[float] = []
    broadcast_ratios: List[float] = []
    congestion_ratios: List[float] = []
    for run in runs:
        violations += len(run.lemma13_violations())
        push_times.append(float(run.push_broadcast_time))
        visitx_times.append(float(run.visitx_broadcast_time))
        broadcast_ratios.append(run.broadcast_time_ratio())
        congestion_ratios.append(run.congestion_ratio())
    return CongestionSummary(
        num_runs=len(runs),
        lemma13_violation_count=violations,
        mean_push_time=float(np.mean(push_times)),
        mean_visitx_time=float(np.mean(visitx_times)),
        mean_broadcast_ratio=float(np.mean(broadcast_ratios)),
        max_broadcast_ratio=float(np.max(broadcast_ratios)),
        mean_congestion_ratio=float(np.mean(congestion_ratios)),
        max_congestion_ratio=float(np.max(congestion_ratios)),
    )
