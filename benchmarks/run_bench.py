"""Fixed-size benchmark of the batched backend vs. the sequential engine.

Runs 50-trial sweeps at ``n = 1024`` on a random regular graph (the graph
family of the paper's Theorems 1-3) through both trial-execution backends of
:func:`repro.experiments.runner.run_trial_set` — for **all six protocol
kernels** — and writes the wall-clock times and speedups to
``BENCH_batch.json`` at the repository root.  The file is checked in so later
PRs have a perf baseline to regress against::

    PYTHONPATH=src python benchmarks/run_bench.py

Star-graph cells are measured as supplementary data: the batch advantage is
smaller on heavily skewed degree distributions, and recording that honestly
keeps the baseline useful.  The means of both backends are stored alongside
the timings so a statistical regression in either backend is also visible.

A ``workers > 1`` configuration of the process-parallel cell scheduler is
also measured (a heavy-binary-tree visit-exchange sweep, the most expensive
Figure-1 style cells).  Its speedup is recorded for information alongside the
machine's CPU count — on a single-core container it is expectedly ≈ 1× or
below — and does not gate the exit code.  The acceptance criterion stays the
within-cell batching speedup on the original visit-exchange + push-pull pair,
so the number is comparable across baseline refreshes.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.config import (  # noqa: E402
    ExperimentConfig,
    GraphCase,
    ProtocolSpec,
)
from repro.experiments.runner import run_experiment, run_trial_set  # noqa: E402
from repro.graphs import (  # noqa: E402
    cycle_of_stars_of_cliques,
    double_star,
    heavy_binary_tree,
    hypercube,
    random_regular_graph,
    star,
    with_case_spec,
)
from repro.graphs.dynamic import StaticSchedule  # noqa: E402
from repro.graphs.heavy_binary_tree import tree_leaves  # noqa: E402
from repro.store import ResultStore  # noqa: E402

TRIALS = 50
N = 1024
BASE_SEED = 0
REPEATS = 5
WORKERS = 4
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_batch.json"

#: All six registry protocols; the first two are the acceptance pair that the
#: exit criterion (and cross-PR comparability) is pinned to.
PROTOCOLS = (
    "visit-exchange",
    "push-pull",
    "push",
    "pull",
    "meet-exchange",
    "hybrid-ppull-visitx",
)
ACCEPTANCE_PROTOCOLS = ("visit-exchange", "push-pull")


def sweep_cases():
    regular = random_regular_graph(N, 12, np.random.default_rng(0))
    return [GraphCase(graph=regular, source=0, size_parameter=N)]


def extra_cases():
    return [GraphCase(graph=star(N - 1), source=1, size_parameter=N)]


def _build_heavy_tree_case(size: int, seed: int) -> GraphCase:
    graph = heavy_binary_tree(size)
    return GraphCase(graph=graph, source=tree_leaves(graph)[0], size_parameter=size)


WORKERS_CONFIG = ExperimentConfig(
    experiment_id="bench-workers",
    title="Process-parallel cell scheduler benchmark",
    paper_reference="Figure 1(c)-style sweep",
    description=(
        "visit-exchange on heavy binary trees from a leaf source: the most "
        "expensive Figure-1 cells (broadcast time is Omega(n))"
    ),
    graph_builder=_build_heavy_tree_case,
    sizes=(511, 767, 1023, 1279),
    protocols=(ProtocolSpec("visit-exchange"),),
    trials=30,
)


def rss_multiplier(platform_name: str = sys.platform) -> int:
    """``ru_maxrss``-to-bytes factor: the unit is platform-dependent.

    POSIX leaves the unit unspecified; Linux (and the BSDs) report kilobytes
    while macOS reports bytes, so a blanket ``* 1024`` inflates macOS
    readings 1024-fold.
    """
    return 1 if platform_name == "darwin" else 1024


def peak_rss_bytes() -> int:
    """The process' lifetime peak resident set size, in bytes.

    The value is monotone over the process lifetime, so per-cell readings
    record "the peak observed by the time this cell finished" (cells are
    measured cheapest-first within the scale section so the reading is
    meaningful per size).
    """
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * rss_multiplier()


def _total_rounds(trial_set) -> int:
    """Total simulated rounds across all trials of a cell."""
    return sum(int(r.rounds_executed) for r in trial_set.results)


def time_backend(spec, case, backend, dynamics=None, *, trials=TRIALS, repeats=REPEATS):
    """Best-of-``repeats`` wall clock (first call doubles as warm-up)."""
    elapsed = float("inf")
    trial_set = None
    for _ in range(repeats):
        start = time.perf_counter()
        trial_set = run_trial_set(
            spec,
            case,
            trials=trials,
            base_seed=BASE_SEED,
            experiment_id="bench-batch",
            backend=backend,
            dynamics=dynamics,
        )
        elapsed = min(elapsed, time.perf_counter() - start)
    return elapsed, trial_set


def measure_cells(cases):
    cells = []
    for case in cases:
        for protocol in PROTOCOLS:
            spec = ProtocolSpec(protocol)
            seq_time, seq_trials = time_backend(spec, case, "sequential")
            bat_time, bat_trials = time_backend(spec, case, "batched")
            cell = {
                "protocol": protocol,
                "graph": case.graph.name,
                "n": case.graph.num_vertices,
                "trials": TRIALS,
                "sequential_seconds": round(seq_time, 4),
                "batched_seconds": round(bat_time, 4),
                "speedup": round(seq_time / bat_time, 2),
                "sequential_mean_time": seq_trials.mean_broadcast_time(),
                "batched_mean_time": bat_trials.mean_broadcast_time(),
                "sequential_completion_rate": seq_trials.completion_rate,
                "batched_completion_rate": bat_trials.completion_rate,
                "rounds_per_second": round(_total_rounds(bat_trials) / bat_time, 1),
                "peak_rss_bytes": peak_rss_bytes(),
            }
            cells.append(cell)
            print(
                f"{protocol:20s} {case.graph.name:28s} "
                f"seq {seq_time * 1000:8.1f} ms   batch {bat_time * 1000:7.1f} ms   "
                f"speedup {cell['speedup']:5.2f}x"
            )
    return cells


def measure_dynamics(case):
    """Overhead of the dynamic-topology layer on the acceptance pair.

    Four configurations of the batched backend:

    * no dynamics (the reference);
    * a *static all-active* schedule with fully materialized masks — this is
      the acceptance cell.  ``DynamicsRuntime`` detects the all-active round
      and hands the kernels the maskless fast path, so what is measured here
      is the whole static-schedule overhead as a user experiences it (one
      mask expansion + one ``all()`` check per run, identity-cached per
      round), and it must stay < 15% with bit-identical results;
    * a static schedule with a single edge down — the cheapest schedule that
      cannot collapse, so every round pays the real per-sample masking
      gathers.  Recorded as ``masked_overhead`` (informational: it tracks
      the cost of the masking machinery itself, which the collapsed static
      cell deliberately avoids);
    * a Bernoulli failure schedule (informational: adds per-round mask
      generation; its broadcast times legitimately differ).
    """
    graph = case.graph
    all_active = StaticSchedule(
        edge_state=np.ones(graph.num_edges, dtype=bool),
        vertex_state=np.ones(graph.num_vertices, dtype=bool),
    )
    # One arbitrary down edge keeps the masks materialized every round while
    # perturbing the process as little as possible.
    one_down = StaticSchedule(down_edges=[(0, int(graph.neighbors(0)[0]))])
    cells = []
    for protocol in ACCEPTANCE_PROTOCOLS:
        spec = ProtocolSpec(protocol)
        plain_time, plain_trials = time_backend(spec, case, "batched")
        static_time, static_trials = time_backend(
            spec, case, "batched", dynamics=all_active
        )
        masked_time, _ = time_backend(spec, case, "batched", dynamics=one_down)
        bernoulli_time, _ = time_backend(
            spec,
            case,
            "batched",
            dynamics={"kind": "bernoulli-edges", "rate": 0.1, "seed": 5},
        )
        overhead = static_time / plain_time - 1.0
        cell = {
            "protocol": protocol,
            "graph": graph.name,
            "n": graph.num_vertices,
            "trials": TRIALS,
            "plain_seconds": round(plain_time, 4),
            "static_masked_seconds": round(static_time, 4),
            "one_edge_down_seconds": round(masked_time, 4),
            "bernoulli_seconds": round(bernoulli_time, 4),
            "static_overhead": round(overhead, 4),
            "masked_overhead": round(masked_time / plain_time - 1.0, 4),
            "static_results_identical": (
                plain_trials.broadcast_times() == static_trials.broadcast_times()
            ),
            "rounds_per_second": round(_total_rounds(plain_trials) / plain_time, 1),
            "peak_rss_bytes": peak_rss_bytes(),
        }
        cells.append(cell)
        print(
            f"{protocol:20s} {'dynamics overhead':28s} "
            f"plain {plain_time * 1000:7.1f} ms   static "
            f"{static_time * 1000:7.1f} ms ({overhead * 100:+5.1f}%)   masked "
            f"{masked_time * 1000:7.1f} ms ({cell['masked_overhead'] * 100:+5.1f}%)   "
            f"bernoulli {bernoulli_time * 1000:7.1f} ms"
        )
    return cells


@with_case_spec("star", lambda size, seed: {"num_leaves": size})
def _build_star_case(size: int, seed: int) -> GraphCase:
    return GraphCase(graph=star(size), source=1, size_parameter=size)


STORE_CONFIG = ExperimentConfig(
    experiment_id="bench-store",
    title="Result-store cold/warm benchmark",
    paper_reference="Figure 1(a)-style sweep",
    description=(
        "push on star graphs from a leaf source (Theta(n log n) broadcast "
        "time, so the cells are simulation-dominated), run cold (empty "
        "store) and warm (fully cached)"
    ),
    graph_builder=_build_star_case,
    sizes=(511, 1023),
    protocols=(ProtocolSpec("push"),),
    trials=30,
)


def measure_store():
    """Cold vs. warm sweep through the content-addressed result store.

    The cold run executes (and persists) every cell of a Figure-1-style
    sweep; the warm runs (best of ``REPEATS``) must execute **zero**
    simulation cells — and, via the journaled builder manifest, **zero**
    graph constructions — and return a bit-identical ``ExperimentResult``.
    The acceptance threshold is warm >= 10x faster than cold — the warm path
    is key derivation plus NPZ/JSON decoding, so on simulation-dominated
    cells it lands orders of magnitude beyond the gate.  The warm-report
    timing (``result_from_store`` over the same sweep, best of ``REPEATS``)
    records the latency floor of the zero-compute report path.
    """
    from repro.experiments.reporting import result_from_store
    from repro.graphs.graph import Graph

    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(Path(tmp) / "store")
        start = time.perf_counter()
        cold = run_experiment(STORE_CONFIG, base_seed=BASE_SEED, store=store)
        cold_seconds = time.perf_counter() - start
        warm_seconds = float("inf")
        warm = None
        constructions_before = Graph.construction_count
        for _ in range(REPEATS):
            start = time.perf_counter()
            warm = run_experiment(STORE_CONFIG, base_seed=BASE_SEED, store=store)
            warm_seconds = min(warm_seconds, time.perf_counter() - start)
        warm_constructions = Graph.construction_count - constructions_before
        report_seconds = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            result_from_store(STORE_CONFIG, store, base_seed=BASE_SEED)
            report_seconds = min(report_seconds, time.perf_counter() - start)
        statuses = [c.trials.store_status[0] for c in warm.cells]
        identical = [c.trials for c in warm.cells] == [c.trials for c in cold.cells]
        cell = {
            "experiment": STORE_CONFIG.experiment_id,
            "sizes": list(STORE_CONFIG.sizes),
            "trials": STORE_CONFIG.trials,
            "protocols": [s.name for s in STORE_CONFIG.protocols],
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "warm_speedup": round(cold_seconds / warm_seconds, 2),
            "warm_cells_computed": statuses.count("computed"),
            "warm_graph_constructions": warm_constructions,
            "warm_report_seconds": round(report_seconds, 4),
            "warm_results_identical_to_cold": identical,
        }
        print(
            f"{'store cold/warm':20s} {'star push x2 cells':28s} "
            f"cold {cold_seconds * 1000:7.1f} ms   warm {warm_seconds * 1000:7.1f} ms   "
            f"speedup {cell['warm_speedup']:7.2f}x   "
            f"recomputed {cell['warm_cells_computed']} cells   "
            f"rebuilt {cell['warm_graph_constructions']} graphs   "
            f"report {report_seconds * 1000:6.1f} ms"
        )
        return cell


def measure_workers():
    """Time the same multi-cell sweep serially and on the process pool."""
    start = time.perf_counter()
    serial = run_experiment(WORKERS_CONFIG, base_seed=BASE_SEED)
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_experiment(WORKERS_CONFIG, base_seed=BASE_SEED, workers=WORKERS)
    parallel_seconds = time.perf_counter() - start
    identical = [c.mean_time for c in serial.cells] == [
        c.mean_time for c in parallel.cells
    ]
    cell = {
        "experiment": WORKERS_CONFIG.experiment_id,
        "sizes": list(WORKERS_CONFIG.sizes),
        "trials": WORKERS_CONFIG.trials,
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "speedup": round(serial_seconds / parallel_seconds, 2),
        "results_identical_to_serial": identical,
    }
    print(
        f"{'workers sweep':20s} {'heavy_binary_tree x4':28s} "
        f"serial {serial_seconds * 1000:6.1f} ms   workers={WORKERS} "
        f"{parallel_seconds * 1000:7.1f} ms   speedup {cell['speedup']:5.2f}x "
        f"(cpus: {cell['cpu_count']})"
    )
    return cell


#: Protocols of the scale curve: one vertex protocol (push, sparse-frontier
#: tier) and one agent protocol (visit-exchange, agent-proportional already).
SCALE_PROTOCOLS = ("push", "visit-exchange")
SCALE_MIN_N = 1 << 10
SCALE_MAX_N = 1 << 20
SCALE_DEGREE = 12
#: Minimum batched rounds/second at the largest scale size for the gate.  The
#: bound is deliberately conservative (a 2^20-vertex push round is ~1M draws);
#: it exists to catch order-of-magnitude regressions, not small drift.
SCALE_MIN_ROUNDS_PER_SECOND = 1.0


def _scale_trials(n: int) -> int:
    """Trial count per scale cell, shrinking with n to bound memory and time."""
    return max(4, min(32, (1 << 22) // n))


def measure_scale(max_n: int = SCALE_MAX_N):
    """Rounds/sec and peak RSS across n = 2^10 .. ``max_n`` (kernel tier curve).

    Random 12-regular graphs (the family of Theorems 1-3) on the two
    representative protocols of the two kernel shapes.  The batched backend is
    always measured (its sparse-frontier tier engages automatically above the
    ``REPRO_SPARSE_MIN_N`` threshold); the resolved backend and frontier mode
    are recorded per cell so the curve documents what actually ran.  The
    graph build uses ``max_attempts=1``: a 12-regular pairing is essentially
    never simple, so the benchmark goes straight to the vectorized repair
    path instead of burning 200 doomed shuffles per size.
    """
    cells = []
    n = SCALE_MIN_N
    while n <= max_n:
        graph = random_regular_graph(
            n, SCALE_DEGREE, np.random.default_rng(0), max_attempts=1
        )
        case = GraphCase(graph=graph, source=0, size_parameter=n)
        trials = _scale_trials(n)
        for protocol in SCALE_PROTOCOLS:
            spec = ProtocolSpec(protocol)
            repeats = 3 if n <= (1 << 16) else 1
            elapsed, trial_set = time_backend(
                spec, case, "auto", trials=trials, repeats=repeats
            )
            rounds = _total_rounds(trial_set)
            cell = {
                "protocol": protocol,
                "graph": graph.name,
                "n": n,
                "trials": trials,
                "seconds": round(elapsed, 4),
                "rounds": rounds,
                "rounds_per_second": round(rounds / elapsed, 1),
                "mean_time": trial_set.mean_broadcast_time(),
                "completion_rate": trial_set.completion_rate,
                "backend": trial_set.backend,
                "frontier": trial_set.results[0].metadata.get("frontier", None),
                "peak_rss_bytes": peak_rss_bytes(),
            }
            cells.append(cell)
            print(
                f"{protocol:20s} n=2^{n.bit_length() - 1:<3d} {trials:3d} trials   "
                f"{elapsed * 1000:9.1f} ms   {cell['rounds_per_second']:9.1f} rounds/s   "
                f"rss {cell['peak_rss_bytes'] / 2**20:7.0f} MiB   "
                f"backend={cell['backend']}"
            )
        n <<= 1
    return cells


#: Size of the telemetry-overhead cell: large enough that a round does real
#: vectorized work, small enough to keep the best-of timing loops cheap.
TELEMETRY_N = 1 << 14


def measure_telemetry():
    """Overhead of the instrumented round loop with tracing enabled.

    push on a random 12-regular graph at ``n = 2^14`` through the batched
    backend: the bare configuration (``REPRO_TRACE`` unset — spans are the
    shared no-op singleton) against the traced one (spans plus strided
    per-round samples land in a scratch JSONL directory).  The two legs are
    *interleaved* — ``2 * REPEATS`` bare/traced pairs — so ambient machine
    drift cannot masquerade as telemetry cost, and the gated statistic is
    the **median of the per-pair traced/bare ratios**: adjacent runs share
    whatever frequency/scheduler state the machine is in, so the pairwise
    ratio cancels drift that a best-of-each-leg comparison (also recorded,
    as ``trace_overhead_best``) leaves in.  The acceptance gate is <= 3%
    overhead with bit-identical broadcast times — telemetry observes, it
    never participates.
    """
    from repro.telemetry import TRACE_ENV_VAR

    graph = random_regular_graph(
        TELEMETRY_N, SCALE_DEGREE, np.random.default_rng(0), max_attempts=1
    )
    case = GraphCase(graph=graph, source=0, size_parameter=TELEMETRY_N)
    spec = ProtocolSpec("push")
    trials = _scale_trials(TELEMETRY_N)

    def run_once():
        start = time.perf_counter()
        trial_set = run_trial_set(
            spec,
            case,
            trials=trials,
            base_seed=BASE_SEED,
            experiment_id="bench-batch",
            backend="batched",
        )
        return time.perf_counter() - start, trial_set

    saved = os.environ.pop(TRACE_ENV_VAR, None)
    bare_times = []
    traced_times = []
    bare_trials = traced_trials = None
    try:
        run_once()  # warm-up, outside the timed comparison
        with tempfile.TemporaryDirectory() as tmp:
            # Alternate which leg runs first within each pair: the second
            # run of a pair tends to be slightly faster (caches, frequency
            # governor), and a fixed order would fold that bias into every
            # ratio.
            for pair in range(2 * REPEATS):
                legs = ["bare", "traced"] if pair % 2 == 0 else ["traced", "bare"]
                for leg in legs:
                    if leg == "bare":
                        os.environ.pop(TRACE_ENV_VAR, None)
                        elapsed, bare_trials = run_once()
                        bare_times.append(elapsed)
                    else:
                        os.environ[TRACE_ENV_VAR] = tmp
                        elapsed, traced_trials = run_once()
                        traced_times.append(elapsed)
    finally:
        if saved is not None:
            os.environ[TRACE_ENV_VAR] = saved
        else:
            os.environ.pop(TRACE_ENV_VAR, None)
    ratios = sorted(t / b for t, b in zip(traced_times, bare_times))
    mid = len(ratios) // 2
    median_ratio = (
        ratios[mid] if len(ratios) % 2 else (ratios[mid - 1] + ratios[mid]) / 2.0
    )
    overhead = median_ratio - 1.0
    bare_seconds, traced_seconds = min(bare_times), min(traced_times)
    cell = {
        "protocol": "push",
        "graph": graph.name,
        "n": TELEMETRY_N,
        "trials": trials,
        "pairs": len(ratios),
        "bare_seconds": round(bare_seconds, 4),
        "traced_seconds": round(traced_seconds, 4),
        "trace_overhead": round(overhead, 4),
        "trace_overhead_best": round(traced_seconds / bare_seconds - 1.0, 4),
        "traced_results_identical": (
            bare_trials.broadcast_times() == traced_trials.broadcast_times()
        ),
        "peak_rss_bytes": peak_rss_bytes(),
    }
    print(
        f"{'telemetry overhead':20s} {graph.name:28s} "
        f"bare {bare_seconds * 1000:7.1f} ms   traced {traced_seconds * 1000:7.1f} ms "
        f"(median pair {overhead * 100:+5.1f}%)"
    )
    return cell


#: Construction-time cells: the Figure-1 families at representative sizes.
#: Builders that return a (graph, layout) tuple are unwrapped.
CONSTRUCTION_CASES = (
    ("star", lambda: star((1 << 20) - 1)),
    ("double_star", lambda: double_star(1 << 20)),
    ("heavy_binary_tree", lambda: heavy_binary_tree(1 << 12)),
    ("cycle_of_stars_of_cliques", lambda: cycle_of_stars_of_cliques(64)),
    (
        "random_regular",
        lambda: random_regular_graph(
            1 << 20, SCALE_DEGREE, np.random.default_rng(0), max_attempts=1
        ),
    ),
    ("hypercube", lambda: hypercube(20)),
)


def measure_construction():
    """Wall-clock of the vectorized graph builders at scale-tier sizes."""
    cells = []
    for label, build in CONSTRUCTION_CASES:
        start = time.perf_counter()
        graph = build()
        elapsed = time.perf_counter() - start
        if isinstance(graph, tuple):
            graph = graph[0]
        cell = {
            "family": label,
            "graph": graph.name,
            "n": graph.num_vertices,
            "m": graph.num_edges,
            "seconds": round(elapsed, 4),
            "edges_per_second": round(graph.num_edges / elapsed, 1),
            "peak_rss_bytes": peak_rss_bytes(),
        }
        cells.append(cell)
        print(
            f"{label:26s} n={graph.num_vertices:>9d} m={graph.num_edges:>9d}   "
            f"{elapsed * 1000:9.1f} ms   {cell['edges_per_second'] / 1e6:6.2f} M edges/s"
        )
    return cells


ALL_SECTIONS = (
    "sweep",
    "dynamics",
    "workers",
    "store",
    "scale",
    "telemetry",
    "construction",
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sections",
        nargs="+",
        choices=ALL_SECTIONS,
        default=None,
        help=(
            "run only these sections (default: all).  BENCH_batch.json is "
            "only rewritten when every section runs; partial runs gate their "
            "own sections and write nothing."
        ),
    )
    parser.add_argument(
        "--scale-max-n",
        type=int,
        default=SCALE_MAX_N,
        help="largest vertex count of the scale curve (default 2^20)",
    )
    args = parser.parse_args(argv)
    sections = tuple(args.sections) if args.sections else ALL_SECTIONS
    return run_sections(sections, scale_max_n=args.scale_max_n)


def run_sections(sections, *, scale_max_n: int = SCALE_MAX_N) -> int:
    ok = True
    sweep_cells = extra_cells = dynamics_cells = None
    workers_cell = store_cell = telemetry_cell = None
    scale_cells = construction_cells = None
    overall = sweep_seq = sweep_bat = None

    if "sweep" in sections:
        print(f"-- acceptance sweep: {TRIALS} trials, n={N}, all six protocol kernels --")
        cases = sweep_cases()
        sweep_cells = measure_cells(cases)
        print("-- supplementary cells (skewed-degree family) --")
        extra_cells = measure_cells(extra_cases())
        acceptance = [c for c in sweep_cells if c["protocol"] in ACCEPTANCE_PROTOCOLS]
        sweep_seq = sum(c["sequential_seconds"] for c in acceptance)
        sweep_bat = sum(c["batched_seconds"] for c in acceptance)
        overall = round(sweep_seq / sweep_bat, 2)
        print(f"{'acceptance pair overall':49s} seq {sweep_seq * 1000:8.1f} ms   "
              f"batch {sweep_bat * 1000:7.1f} ms   speedup {overall:5.2f}x")
        # PR 1's 5.5x compared batching against the old hand-written
        # sequential protocols.  Since the kernel refactor the sequential
        # backend runs the same vectorized kernels (one trial at a time), so
        # it got faster too and the ratio now measures only the per-trial
        # loop overhead that batching removes; >= 4x keeps that honest
        # without penalizing the sequential win.
        if overall < 4.0:
            print("FAIL: acceptance-pair batching speedup below 4x")
            ok = False

    if "dynamics" in sections:
        print("-- dynamic-topology masked-sampler overhead --")
        dynamics_cells = measure_dynamics(sweep_cases()[0])
        # The dynamic-topology layer must be near-free when nothing fails: a
        # static (all-active, fully materialized) schedule may cost < 15%
        # over the maskless path, and must not change a single result.
        overhead_ok = max(
            c["static_overhead"] for c in dynamics_cells
        ) < 0.15 and all(c["static_results_identical"] for c in dynamics_cells)
        if not overhead_ok:
            print("FAIL: static-schedule masking overhead exceeds 15% "
                  "or changed results")
            ok = False

    if "workers" in sections:
        print(f"-- process-parallel cell scheduler (workers={WORKERS}) --")
        workers_cell = measure_workers()

    if "store" in sections:
        print("-- content-addressed result store (cold vs. warm sweep) --")
        store_cell = measure_store()
        # A warm store must skip every simulation cell AND every graph
        # construction (the manifest trust path), return the exact cold
        # results, and be at least an order of magnitude faster.
        store_ok = (
            store_cell["warm_speedup"] >= 10.0
            and store_cell["warm_cells_computed"] == 0
            and store_cell["warm_graph_constructions"] == 0
            and store_cell["warm_results_identical_to_cold"]
        )
        if not store_ok:
            print("FAIL: warm result-store sweep must be >= 10x faster than "
                  "cold with zero recomputed cells, zero graph constructions "
                  "and bit-identical results")
            ok = False

    if "scale" in sections:
        print(f"-- scale curve: n = 2^10 .. {scale_max_n} (d={SCALE_DEGREE} regular) --")
        scale_cells = measure_scale(scale_max_n)
        top_n = max(c["n"] for c in scale_cells)
        top_cells = [c for c in scale_cells if c["n"] == top_n]
        scale_ok = all(
            c["rounds_per_second"] >= SCALE_MIN_ROUNDS_PER_SECOND
            and c["completion_rate"] == 1.0
            for c in top_cells
        )
        if not scale_ok:
            print(f"FAIL: scale curve below {SCALE_MIN_ROUNDS_PER_SECOND} "
                  f"rounds/s (or incomplete trials) at n={top_n}")
            ok = False

    if "telemetry" in sections:
        print(f"-- telemetry overhead: traced vs. bare round loop (n={TELEMETRY_N}) --")
        telemetry_cell = measure_telemetry()
        # Tracing must be effectively free on the round loop: <= 3% overhead
        # against the better of two bare measurements, and the traced run
        # must not perturb a single broadcast time.
        telemetry_ok = (
            telemetry_cell["trace_overhead"] <= 0.03
            and telemetry_cell["traced_results_identical"]
        )
        if not telemetry_ok:
            print("FAIL: traced round loop exceeds 3% overhead or changed results")
            ok = False

    if "construction" in sections:
        print("-- graph construction at scale-tier sizes --")
        construction_cells = measure_construction()

    if set(sections) != set(ALL_SECTIONS):
        print(f"partial run ({', '.join(sections)}): BENCH_batch.json not rewritten")
        return 0 if ok else 1

    payload = {
        "benchmark": "bench-batch",
        "description": (
            f"{TRIALS}-trial sweeps at n={N} over all six protocol kernels on a "
            "random 12-regular graph: sequential engine backend vs. batched "
            f"multi-trial backend (best of {REPEATS} runs each); star-graph "
            "cells recorded as supplementary data; acceptance speedup pinned "
            "to the visit-exchange + push-pull pair for cross-PR comparability; "
            "workers cell records the process-parallel cell scheduler; "
            "dynamics cells record the dynamic-topology layer's overhead: the "
            "static all-active schedule (collapsed to the maskless fast path) "
            "must stay < 15% with bit-identical results, and a one-edge-down "
            "schedule records the true per-sample masking cost as "
            "informational masked_overhead; the store cell times a cold "
            "(computing + persisting) vs. warm (fully cached) sweep through "
            "the content-addressed result store, which must be >= 10x faster "
            "warm with zero recomputed cells, zero graph constructions (the "
            "journaled builder manifest resolves keys from trusted "
            "fingerprints) and bit-identical results, and records the "
            "warm-report (result_from_store) latency floor; the "
            "scale cells trace rounds/sec and peak RSS for push and "
            "visit-exchange on random 12-regular graphs from 2^10 up to the "
            "million-vertex tier (the batched sparse-frontier representation "
            "engages automatically above the sparse threshold), gated "
            "conservatively at >= 1 round/s at the top size; the telemetry "
            "cell gates the instrumented round loop (REPRO_TRACE spans plus "
            "strided per-round samples) at <= 3% overhead over the better of "
            "two bare measurements with bit-identical broadcast times; the "
            "construction cells time the vectorized graph builders at "
            "scale-tier sizes"
        ),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "sweep_cells": sweep_cells,
        "extra_cells": extra_cells,
        "dynamics_cells": dynamics_cells,
        "workers_cell": workers_cell,
        "store_cell": store_cell,
        "telemetry_cell": telemetry_cell,
        "scale_cells": scale_cells,
        "construction_cells": construction_cells,
        "sweep_sequential_seconds": round(sweep_seq, 4),
        "sweep_batched_seconds": round(sweep_bat, 4),
        "overall_speedup": overall,
        "max_static_dynamics_overhead": max(
            c["static_overhead"] for c in dynamics_cells
        ),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
