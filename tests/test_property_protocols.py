"""Property-based tests (hypothesis) for the protocol invariants.

These check, over randomly generated connected graphs and sources, the
invariants that every protocol of the paper must satisfy regardless of
topology:

* runs complete on connected graphs given a generous budget,
* the informed-vertex count never decreases and never exceeds ``n``,
* per-round growth respects each protocol's information-flow limits,
* runs are reproducible from the seed.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, Phase, given, settings, strategies as st

from repro import simulate
from repro.graphs import Graph

# Protocol runs are expensive compared to typical hypothesis targets, so the
# suite uses few examples, skips the shrinking phase (a failing example is
# reported as-is rather than minimised through hundreds of re-simulations) and
# disables the too-slow health check.
FAST = settings(
    max_examples=12,
    deadline=None,
    phases=(Phase.explicit, Phase.reuse, Phase.generate),
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: Generous round budget used in the property tests: sparse tree-like random
#: graphs can make meet-exchange legitimately slow, and these tests assert
#: completion, not speed.
GENEROUS_BUDGET = 500_000


def random_connected_graph(n: int, extra_edge_fraction: float, seed: int) -> Graph:
    """A random connected graph: a random tree plus extra random edges.

    The number of extra edges is capped by the number of non-tree pairs that
    actually exist, so the construction always terminates even for tiny graphs
    where the tree already uses every available pair.
    """
    rng = np.random.default_rng(seed)
    edges = set()
    for v in range(1, n):
        edges.add((int(rng.integers(v)), v))
    max_possible = n * (n - 1) // 2
    wanted_extra = min(int(extra_edge_fraction * n), max_possible - len(edges))
    attempts = 0
    while wanted_extra > 0 and attempts < 100 * n:
        attempts += 1
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u != v and (min(u, v), max(u, v)) not in edges:
            edges.add((min(u, v), max(u, v)))
            wanted_extra -= 1
    return Graph(n, sorted(edges), name=f"random_connected(n={n})")


graph_strategy = st.builds(
    random_connected_graph,
    st.integers(min_value=2, max_value=40),
    st.floats(min_value=0.0, max_value=1.5),
    st.integers(min_value=0, max_value=10**6),
)


class TestCompletionAndMonotonicity:
    @FAST
    @given(graph_strategy, st.integers(min_value=0, max_value=10**6), st.data())
    def test_push_completes_and_is_monotone(self, graph, seed, data):
        source = data.draw(st.integers(min_value=0, max_value=graph.num_vertices - 1))
        result = simulate("push", graph, source=source, seed=seed)
        assert result.completed
        history = result.informed_vertex_history
        assert history[0] == 1
        assert history[-1] == graph.num_vertices
        assert all(b >= a for a, b in zip(history, history[1:]))
        # Push at most doubles the informed set per round.
        assert all(b <= 2 * a for a, b in zip(history, history[1:]))

    @FAST
    @given(graph_strategy, st.integers(min_value=0, max_value=10**6), st.data())
    def test_push_pull_completes_and_respects_growth_limit(self, graph, seed, data):
        source = data.draw(st.integers(min_value=0, max_value=graph.num_vertices - 1))
        result = simulate("push-pull", graph, source=source, seed=seed)
        assert result.completed
        history = result.informed_vertex_history
        assert all(b >= a for a, b in zip(history, history[1:]))
        # Push-pull at most triples the informed set per round (each informed
        # vertex can push to one neighbor and be pulled from by many, but each
        # newly informed vertex needs an informed partner; the safe bound used
        # here is growth <= previous + n... keep the meaningful invariant:
        assert history[-1] == graph.num_vertices

    @FAST
    @given(graph_strategy, st.integers(min_value=0, max_value=10**6), st.data())
    def test_visit_exchange_completes_and_agents_end_informed(self, graph, seed, data):
        source = data.draw(st.integers(min_value=0, max_value=graph.num_vertices - 1))
        result = simulate(
            "visit-exchange", graph, source=source, seed=seed, max_rounds=GENEROUS_BUDGET
        )
        assert result.completed
        assert result.informed_agent_history[-1] == result.num_agents
        vertex_history = result.informed_vertex_history
        agent_history = result.informed_agent_history
        assert all(b >= a for a, b in zip(vertex_history, vertex_history[1:]))
        assert all(b >= a for a, b in zip(agent_history, agent_history[1:]))
        # New vertices per round cannot exceed the informed agents beforehand.
        for before_agents, before_vertices, after_vertices in zip(
            agent_history, vertex_history, vertex_history[1:]
        ):
            assert after_vertices - before_vertices <= max(before_agents, 0)

    @FAST
    @given(graph_strategy, st.integers(min_value=0, max_value=10**6), st.data())
    def test_meet_exchange_completes_with_lazy_walks(self, graph, seed, data):
        source = data.draw(st.integers(min_value=0, max_value=graph.num_vertices - 1))
        result = simulate(
            "meet-exchange",
            graph,
            source=source,
            seed=seed,
            lazy=True,
            max_rounds=GENEROUS_BUDGET,
        )
        assert result.completed
        agent_history = result.informed_agent_history
        assert agent_history[-1] == result.num_agents
        assert all(b >= a for a, b in zip(agent_history, agent_history[1:]))


class TestReproducibility:
    @FAST
    @given(
        graph_strategy,
        st.sampled_from(["push", "push-pull", "pull", "visit-exchange", "meet-exchange"]),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_same_seed_same_outcome(self, graph, protocol, seed):
        kwargs = {"lazy": True} if protocol == "meet-exchange" else {}
        a = simulate(protocol, graph, source=0, seed=seed, max_rounds=GENEROUS_BUDGET, **kwargs)
        b = simulate(protocol, graph, source=0, seed=seed, max_rounds=GENEROUS_BUDGET, **kwargs)
        assert a.broadcast_time == b.broadcast_time
        assert a.informed_vertex_history == b.informed_vertex_history
        assert a.informed_agent_history == b.informed_agent_history


class TestBroadcastTimeLowerBounds:
    @FAST
    @given(graph_strategy, st.integers(min_value=0, max_value=10**6))
    def test_no_protocol_beats_the_eccentricity_bound(self, graph, seed):
        # Information travels at most one hop per round in push/push-pull, so
        # the broadcast time is at least the source's eccentricity.
        source = 0
        eccentricity = int(graph.distances_from(source).max())
        for protocol in ("push", "push-pull"):
            result = simulate(protocol, graph, source=source, seed=seed)
            assert result.broadcast_time >= eccentricity


# ---------------------------------------------------------------------------
# Dynamic-topology schedules
# ---------------------------------------------------------------------------
def _make_schedule(kind: str, seed: int, rate: float, period: int, phase: int):
    """Materialize one random topology schedule from drawn parameters.

    Only *transient* failure models appear here (every edge recovers), so
    completion stays guaranteed on connected graphs; permanent crashes are
    covered deterministically in tests/test_dynamics.py.
    """
    from repro.graphs.dynamic import (
        BernoulliEdgeFailures,
        MarkovEdgeChurn,
        PeriodicLinkFlapping,
        StaticSchedule,
    )

    if kind == "static-all-active":
        return StaticSchedule()
    if kind == "bernoulli":
        return BernoulliEdgeFailures(rate, seed=seed)
    if kind == "flapping":
        return PeriodicLinkFlapping(
            period=period,
            down_rounds=min(phase, period - 1),
            edge_fraction=rate,
            seed=seed,
        )
    if kind == "churn":
        return MarkovEdgeChurn(fail_rate=rate, recover_rate=0.5, seed=seed)
    raise AssertionError(kind)


schedule_strategy = st.builds(
    _make_schedule,
    st.sampled_from(["static-all-active", "bernoulli", "flapping", "churn"]),
    st.integers(min_value=0, max_value=10**6),
    st.floats(min_value=0.0, max_value=0.4),
    st.integers(min_value=2, max_value=9),
    st.integers(min_value=0, max_value=8),
)


class TestDynamicTopologyProperties:
    @FAST
    @given(
        graph_strategy,
        schedule_strategy,
        st.sampled_from(["push", "push-pull", "visit-exchange"]),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_informed_counts_stay_monotone_under_any_schedule(
        self, graph, schedule, protocol, seed
    ):
        """Failures delay spreading but never un-inform anyone: the informed
        trajectories stay monotone and bounded under every random schedule."""
        result = simulate(
            protocol,
            graph,
            source=0,
            seed=seed,
            max_rounds=GENEROUS_BUDGET,
            dynamics=schedule,
        )
        assert result.completed
        for history in (result.informed_vertex_history, result.informed_agent_history):
            assert all(b >= a for a, b in zip(history, history[1:]))
        assert result.informed_vertex_history[-1] == graph.num_vertices

    @FAST
    @given(
        graph_strategy,
        st.sampled_from(["push", "pull", "push-pull", "visit-exchange", "meet-exchange"]),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_static_mask_schedule_equals_static_graph(self, graph, protocol, seed):
        """An all-active schedule — even with fully materialized masks — is
        bit-for-bit the static graph: same times, same trajectories."""
        from repro.graphs.dynamic import StaticSchedule

        kwargs = {"lazy": True} if protocol == "meet-exchange" else {}
        plain = simulate(
            protocol, graph, source=0, seed=seed, max_rounds=GENEROUS_BUDGET, **kwargs
        )
        masked = simulate(
            protocol,
            graph,
            source=0,
            seed=seed,
            max_rounds=GENEROUS_BUDGET,
            dynamics=StaticSchedule(
                edge_state=np.ones(graph.num_edges, dtype=bool),
                vertex_state=np.ones(graph.num_vertices, dtype=bool),
            ),
            **kwargs,
        )
        assert plain.broadcast_time == masked.broadcast_time
        assert plain.informed_vertex_history == masked.informed_vertex_history
        assert plain.informed_agent_history == masked.informed_agent_history

    @FAST
    @given(
        graph_strategy,
        schedule_strategy,
        st.sampled_from(["push", "pull", "push-pull", "visit-exchange", "meet-exchange"]),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_batched_equals_sequential_round_for_round(
        self, graph, schedule, protocol, seed
    ):
        """Handed the same per-trial generator and the same schedule, the
        batched driver and the sequential adapter are the same computation:
        identical broadcast time and identical per-round trajectories."""
        from repro.core.batch import run_batch

        kwargs = {"lazy": True} if protocol == "meet-exchange" else {}
        sequential = simulate(
            protocol,
            graph,
            source=0,
            seed=seed,
            max_rounds=GENEROUS_BUDGET,
            dynamics=schedule,
            **kwargs,
        )
        batched = run_batch(
            protocol,
            graph,
            0,
            seeds=[np.random.default_rng(seed)],
            max_rounds=GENEROUS_BUDGET,
            record_history=True,
            dynamics=schedule,
            **kwargs,
        )
        assert sequential.broadcast_time == int(batched.broadcast_times[0])
        assert sequential.informed_vertex_history == batched.vertex_histories[0]
        assert sequential.informed_agent_history == batched.agent_histories[0]
