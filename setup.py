"""Compatibility shim for legacy editable installs.

All project metadata lives in ``pyproject.toml``.  This file only enables
``pip install -e . --no-use-pep517`` on environments without the ``wheel``
package (modern environments can simply run ``pip install -e .``).
"""

from setuptools import setup

setup()
