"""Tests for the generative corpus families (repro.scenarios.generators)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.scenarios import (
    powerlaw_configuration,
    random_geometric,
    stochastic_block_model,
)


def degrees(graph) -> np.ndarray:
    return np.diff(graph.indptr)


def same_structure(a, b) -> bool:
    return (
        a.num_vertices == b.num_vertices
        and np.array_equal(a.indptr, b.indptr)
        and np.array_equal(a.indices, b.indices)
    )


class TestPowerlawConfiguration:
    def test_degree_floor_and_heavy_tail(self):
        graph = powerlaw_configuration(
            4000, 2.5, np.random.default_rng(7), min_degree=2
        )
        d = degrees(graph)
        assert graph.num_vertices == 4000
        # The erased configuration model may lose parallel/self stubs, but
        # no vertex is left isolated.
        assert d.min() >= 1
        # Heavy tail: the hubs dwarf the typical vertex by an order of
        # magnitude — the signature a regular or Poisson family never shows.
        assert d.max() >= 10 * np.median(d)

    def test_exponent_controls_tail_weight(self):
        rng = np.random.default_rng(3)
        shallow = powerlaw_configuration(4000, 2.1, rng)
        rng = np.random.default_rng(3)
        steep = powerlaw_configuration(4000, 3.5, rng)
        assert degrees(shallow).max() > degrees(steep).max()

    def test_deterministic_in_seed(self):
        a = powerlaw_configuration(500, 2.5, np.random.default_rng(11))
        b = powerlaw_configuration(500, 2.5, np.random.default_rng(11))
        c = powerlaw_configuration(500, 2.5, np.random.default_rng(12))
        assert same_structure(a, b)
        assert not same_structure(a, c)

    def test_rejects_bad_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            powerlaw_configuration(100, 1.0, rng)
        with pytest.raises(ValueError):
            powerlaw_configuration(1, 2.5, rng)


class TestStochasticBlockModel:
    def test_intra_density_dominates(self):
        n, blocks = 1200, 4
        graph = stochastic_block_model(n, blocks, 0.08, 0.004, np.random.default_rng(5))
        block_of = np.arange(n) * blocks // n
        intra = inter = 0
        for u, v in graph.edges():
            if block_of[u] == block_of[v]:
                intra += 1
            else:
                inter += 1
        per_block = n // blocks
        intra_pairs = blocks * per_block * (per_block - 1) / 2
        inter_pairs = n * (n - 1) / 2 - intra_pairs
        assert intra / intra_pairs == pytest.approx(0.08, rel=0.25)
        assert inter / inter_pairs == pytest.approx(0.004, rel=0.35)
        assert intra / intra_pairs > 5 * (inter / inter_pairs)

    def test_deterministic_in_seed(self):
        a = stochastic_block_model(400, 4, 0.1, 0.01, np.random.default_rng(2))
        b = stochastic_block_model(400, 4, 0.1, 0.01, np.random.default_rng(2))
        c = stochastic_block_model(400, 4, 0.1, 0.01, np.random.default_rng(3))
        assert same_structure(a, b)
        assert not same_structure(a, c)

    def test_rejects_bad_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            stochastic_block_model(100, 0, 0.1, 0.01, rng)
        with pytest.raises(ValueError):
            stochastic_block_model(100, 4, 1.5, 0.01, rng)


class TestRandomGeometric:
    def test_mean_degree_matches_area_law(self):
        n, radius = 3000, 0.05
        graph = random_geometric(n, radius, np.random.default_rng(9))
        # E[deg] ≈ π r² n for interior points; boundary effects pull it
        # down, so allow a generous band.
        expected = math.pi * radius**2 * n
        mean = degrees(graph).mean()
        assert 0.5 * expected < mean < 1.3 * expected

    def test_no_isolated_vertices_by_default(self):
        graph = random_geometric(400, 0.02, np.random.default_rng(1))
        assert degrees(graph).min() >= 1

    def test_deterministic_in_seed(self):
        a = random_geometric(500, 0.06, np.random.default_rng(4))
        b = random_geometric(500, 0.06, np.random.default_rng(4))
        c = random_geometric(500, 0.06, np.random.default_rng(5))
        assert same_structure(a, b)
        assert not same_structure(a, c)

    def test_bruteforce_fallback_matches_kdtree(self):
        pytest.importorskip("scipy")
        from repro.scenarios.generators import _geometric_pairs_bruteforce

        rng = np.random.default_rng(6)
        points = rng.random((300, 2))
        from scipy.spatial import cKDTree

        tree_pairs = cKDTree(points).query_pairs(0.1, output_type="ndarray")
        us, vs = _geometric_pairs_bruteforce(points, 0.1, chunk=64)
        brute = np.stack([us, vs], axis=1)

        def canon(arr):
            return set(map(tuple, np.sort(np.asarray(arr), axis=1).tolist()))

        assert canon(tree_pairs) == canon(brute)


class TestRegistry:
    def test_families_registered_with_versions(self):
        from repro.graphs.builders import builder_version
        from repro.scenarios.generators import BUILDER_VERSIONS

        for family, version in BUILDER_VERSIONS.items():
            assert builder_version(family) == version
