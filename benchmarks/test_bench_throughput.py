"""Micro-benchmarks of simulator throughput (not tied to a paper claim).

These quantify the per-round cost of each protocol implementation on a
moderately large regular graph so that performance regressions in the hot
paths (vectorized neighbor sampling, agent stepping) show up in benchmark
history even when the claim-level benchmarks still pass.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.agents import AgentSystem
from repro.core.engine import Engine
from repro.core.protocols import (
    MeetExchangeProtocol,
    PushProtocol,
    PushPullProtocol,
    VisitExchangeProtocol,
)
from repro.core.rng import make_rng
from repro.graphs import random_regular_graph

N = 4096


@pytest.fixture(scope="module")
def graph():
    degree = max(4, int(2 * math.log2(N)))
    if (N * degree) % 2:
        degree += 1
    return random_regular_graph(N, degree, np.random.default_rng(0))


class TestRoundThroughput:
    def test_push_rounds(self, benchmark, graph):
        protocol = PushProtocol()
        rng = make_rng(1)
        protocol.initialize(graph, 0, rng)

        def ten_rounds():
            for round_index in range(10):
                protocol.execute_round(round_index + 1, rng)

        benchmark(ten_rounds)

    def test_push_pull_rounds(self, benchmark, graph):
        protocol = PushPullProtocol()
        rng = make_rng(1)
        protocol.initialize(graph, 0, rng)

        def ten_rounds():
            for round_index in range(10):
                protocol.execute_round(round_index + 1, rng)

        benchmark(ten_rounds)

    def test_visit_exchange_rounds(self, benchmark, graph):
        protocol = VisitExchangeProtocol()
        rng = make_rng(1)
        protocol.initialize(graph, 0, rng)

        def ten_rounds():
            for round_index in range(10):
                protocol.execute_round(round_index + 1, rng)

        benchmark(ten_rounds)

    def test_meet_exchange_rounds(self, benchmark, graph):
        protocol = MeetExchangeProtocol()
        rng = make_rng(1)
        protocol.initialize(graph, 0, rng)

        def ten_rounds():
            for round_index in range(10):
                protocol.execute_round(round_index + 1, rng)

        benchmark(ten_rounds)


class TestSubstrateThroughput:
    def test_agent_stepping(self, benchmark, graph):
        rng = make_rng(2)
        agents = AgentSystem.from_stationary(graph, N, rng)
        benchmark(lambda: agents.step(rng))

    def test_vectorized_neighbor_sampling(self, benchmark, graph):
        rng = make_rng(3)
        vertices = np.arange(graph.num_vertices)
        benchmark(lambda: graph.sample_neighbors(vertices, rng))

    def test_full_push_pull_run(self, benchmark, graph):
        engine = Engine(record_history=False)

        def run():
            return engine.run(PushPullProtocol(), graph, 0, seed=5)

        result = benchmark.pedantic(run, rounds=3, iterations=1)
        assert result.completed
