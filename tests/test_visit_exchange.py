"""Tests for the VISIT-EXCHANGE protocol."""

from __future__ import annotations

import numpy as np

from repro import simulate
from repro.core.engine import Engine
from repro.core.protocols import VisitExchangeProtocol
from repro.graphs import Graph, complete_graph, double_star, heavy_binary_tree, star
from repro.graphs.heavy_binary_tree import tree_leaves


class TestInitialization:
    def test_agents_on_source_informed_at_round_zero(self):
        graph = star(30)
        protocol = VisitExchangeProtocol(agent_density=2.0)
        Engine(max_rounds=0).run(protocol, graph, 0, seed=1)
        agents = protocol.agent_system()
        at_source = agents.agents_at(0)
        assert at_source.size > 0
        assert np.all(agents.informed[at_source])
        # Agents not at the source are uninformed at round zero.
        elsewhere = np.setdiff1d(np.arange(agents.num_agents), at_source)
        assert not np.any(agents.informed[elsewhere])

    def test_agent_density_controls_population(self, small_double_star):
        for density, expected in ((0.5, 20), (1.0, 40), (2.0, 80)):
            protocol = VisitExchangeProtocol(agent_density=density)
            Engine(max_rounds=0).run(protocol, small_double_star, 0, seed=1)
            assert protocol.num_agents() == expected

    def test_explicit_num_agents_overrides_density(self, small_double_star):
        protocol = VisitExchangeProtocol(agent_density=5.0, num_agents=7)
        Engine(max_rounds=0).run(protocol, small_double_star, 0, seed=1)
        assert protocol.num_agents() == 7

    def test_one_agent_per_vertex_mode(self, small_double_star):
        protocol = VisitExchangeProtocol(one_agent_per_vertex=True)
        Engine(max_rounds=0).run(protocol, small_double_star, 0, seed=1)
        agents = protocol.agent_system()
        assert agents.num_agents == small_double_star.num_vertices
        assert sorted(agents.positions.tolist()) == list(range(small_double_star.num_vertices))


class TestDynamics:
    def test_completes_on_small_graphs(self, small_star, small_double_star, small_complete):
        for graph in (small_star, small_double_star, small_complete):
            result = simulate("visit-exchange", graph, source=0, seed=1)
            assert result.completed

    def test_all_agents_informed_by_completion(self):
        graph = double_star(40)
        protocol = VisitExchangeProtocol()
        result = Engine().run(protocol, graph, 2, seed=3)
        assert result.completed
        assert protocol.agent_system().all_informed()
        assert protocol.vertex_informed_mask().all()

    def test_informed_vertices_monotone(self):
        result = simulate("visit-exchange", complete_graph(32), source=0, seed=2)
        history = result.informed_vertex_history
        assert all(b >= a for a, b in zip(history, history[1:]))

    def test_informed_agents_monotone(self):
        result = simulate("visit-exchange", double_star(40), source=2, seed=2)
        history = result.informed_agent_history
        assert all(b >= a for a, b in zip(history, history[1:]))

    def test_vertex_informed_only_by_previously_informed_agent(self):
        # After one round, the number of newly informed vertices is at most the
        # number of agents that were already informed before the round (each
        # informed agent visits exactly one vertex).
        graph = star(40)
        protocol = VisitExchangeProtocol()
        result = Engine(max_rounds=1).run(protocol, graph, 5, seed=4)
        informed_at_zero = result.informed_agent_history[0]
        newly_informed_vertices = (
            result.informed_vertex_history[1] - result.informed_vertex_history[0]
        )
        assert newly_informed_vertices <= max(informed_at_zero, 0)

    def test_lazy_mode_runs(self):
        result = simulate("visit-exchange", star(30), source=0, seed=1, lazy=True)
        assert result.completed

    def test_metadata_reports_configuration(self):
        result = simulate(
            "visit-exchange", star(20), source=0, seed=1, agent_density=2.0, lazy=True
        )
        assert result.metadata["agent_density"] == 2.0
        assert result.metadata["lazy"] is True

    def test_two_vertex_graph(self):
        graph = Graph(2, [(0, 1)])
        result = simulate("visit-exchange", graph, source=0, seed=0)
        assert result.completed
        assert result.broadcast_time <= 5


class TestPaperShapes:
    def test_fast_on_double_star(self):
        # Lemma 3(b): O(log n) — in practice a couple dozen rounds at n = 300.
        graph = double_star(300)
        times = [
            simulate("visit-exchange", graph, source=2, seed=s).broadcast_time
            for s in range(5)
        ]
        assert np.mean(times) < 60

    def test_slow_on_heavy_binary_tree(self):
        # Lemma 4(b): Omega(n).  At n = 255 the broadcast time should clearly
        # exceed anything logarithmic.
        graph = heavy_binary_tree(255)
        leaf = tree_leaves(graph)[0]
        times = [
            simulate("visit-exchange", graph, source=leaf, seed=s).broadcast_time
            for s in range(3)
        ]
        assert np.mean(times) > 60

    def test_track_edge_traversals_option(self):
        from repro.core.observers import EdgeUsageObserver, ObserverGroup

        graph = star(15)
        observer = EdgeUsageObserver()
        protocol = VisitExchangeProtocol(track_edge_traversals=True)
        Engine(max_rounds=10).run(
            protocol, graph, 0, seed=1, observers=ObserverGroup([observer])
        )
        assert observer.total_uses() > 0
        for u, v in observer.counts:
            assert graph.has_edge(u, v)


class TestDeterminism:
    def test_same_seed_same_run(self, small_double_star):
        a = simulate("visit-exchange", small_double_star, source=2, seed=13)
        b = simulate("visit-exchange", small_double_star, source=2, seed=13)
        assert a.broadcast_time == b.broadcast_time
        assert a.informed_agent_history == b.informed_agent_history
