"""The agent substrate: collections of independent random walks.

The agent-based protocols of the paper (visit-exchange and meet-exchange)
assume a set ``A`` of agents, each performing an independent simple random
walk, started from the stationary distribution ``deg(v) / 2|E|``.  For
bipartite graphs the paper makes the walks *lazy* (stay put with probability
1/2) so that meet-exchange terminates.

The implementation keeps all agent positions in one numpy array and advances
every walk in a single vectorized step per round, which is what makes the
linear-agent regime (``|A| = Theta(n)``) affordable for the experiment sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph
from .rng import make_rng

__all__ = ["AgentSystem", "default_agent_count"]


def default_agent_count(graph: Graph, density: float = 1.0) -> int:
    """Number of agents for density ``alpha``: ``max(1, round(alpha * n))``.

    The paper's analyses assume ``|A| = alpha * n`` for a constant
    ``alpha > 0``; the experiments default to ``alpha = 1``.
    """
    if density <= 0:
        raise ValueError("agent density must be positive")
    return max(1, int(round(density * graph.num_vertices)))


@dataclass
class AgentSystem:
    """A population of agents performing independent random walks on a graph.

    Attributes
    ----------
    graph:
        The graph the agents walk on.
    positions:
        ``positions[g]`` is the current vertex of agent ``g``.
    informed:
        Boolean array; ``informed[g]`` is True once agent ``g`` carries the rumor.
    lazy:
        If True each agent independently stays put with probability 1/2 every
        round (required on bipartite graphs for meet-exchange).
    """

    graph: Graph
    positions: np.ndarray
    informed: np.ndarray
    lazy: bool = False

    def __post_init__(self) -> None:
        self.positions = np.asarray(self.positions, dtype=np.int64)
        self.informed = np.asarray(self.informed, dtype=bool)
        if self.positions.shape != self.informed.shape:
            raise ValueError("positions and informed arrays must have equal length")
        if self.positions.size == 0:
            raise ValueError("an agent system needs at least one agent")
        if np.any(self.positions < 0) or np.any(self.positions >= self.graph.num_vertices):
            raise ValueError("agent positions out of range")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_stationary(
        cls,
        graph: Graph,
        num_agents: int,
        rng: np.random.Generator,
        *,
        lazy: bool = False,
    ) -> "AgentSystem":
        """Place ``num_agents`` agents i.i.d. from the stationary distribution.

        This matches the paper's Section 3 model: vertex ``v`` receives each
        agent independently with probability ``deg(v) / 2|E|``.
        """
        if num_agents < 1:
            raise ValueError("need at least one agent")
        rng = make_rng(rng)
        stationary = graph.stationary_distribution()
        positions = rng.choice(graph.num_vertices, size=num_agents, p=stationary)
        informed = np.zeros(num_agents, dtype=bool)
        return cls(graph=graph, positions=positions, informed=informed, lazy=lazy)

    @classmethod
    def one_per_vertex(
        cls, graph: Graph, *, lazy: bool = False
    ) -> "AgentSystem":
        """Place exactly one agent on every vertex.

        The paper remarks (after Lemma 11) that the regular-graph results also
        hold under this initialisation; the ablation experiments compare it
        against the stationary placement.
        """
        positions = np.arange(graph.num_vertices, dtype=np.int64)
        informed = np.zeros(graph.num_vertices, dtype=bool)
        return cls(graph=graph, positions=positions, informed=informed, lazy=lazy)

    @classmethod
    def at_positions(
        cls,
        graph: Graph,
        positions,
        *,
        lazy: bool = False,
        informed=None,
    ) -> "AgentSystem":
        """Place agents at explicitly given vertices (used heavily in tests)."""
        positions = np.asarray(positions, dtype=np.int64)
        if informed is None:
            informed = np.zeros(positions.shape, dtype=bool)
        return cls(graph=graph, positions=positions, informed=np.asarray(informed, dtype=bool), lazy=lazy)

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def num_agents(self) -> int:
        """Number of agents in the system."""
        return int(self.positions.size)

    @property
    def num_informed(self) -> int:
        """Number of agents currently carrying the rumor."""
        return int(np.count_nonzero(self.informed))

    def all_informed(self) -> bool:
        """True once every agent carries the rumor."""
        return bool(np.all(self.informed))

    def agents_at(self, vertex: int) -> np.ndarray:
        """Return the indices of agents currently located at ``vertex``."""
        return np.flatnonzero(self.positions == vertex)

    def occupancy(self) -> np.ndarray:
        """Return an array ``occ`` with ``occ[v]`` = number of agents at vertex ``v``."""
        return np.bincount(self.positions, minlength=self.graph.num_vertices)

    def informed_occupancy(self) -> np.ndarray:
        """Per-vertex count of *informed* agents."""
        if not np.any(self.informed):
            return np.zeros(self.graph.num_vertices, dtype=np.int64)
        return np.bincount(
            self.positions[self.informed], minlength=self.graph.num_vertices
        )

    # ------------------------------------------------------------------
    # dynamics
    # ------------------------------------------------------------------
    def step(self, rng: np.random.Generator) -> np.ndarray:
        """Advance every agent by one random-walk step; return previous positions.

        Returns the positions *before* the step so that callers (e.g. the
        coupling machinery) can reconstruct which edge each agent traversed.
        """
        rng = make_rng(rng)
        previous = self.positions.copy()
        new_positions = self.graph.sample_neighbors(self.positions, rng)
        if self.lazy:
            stay = rng.random(self.num_agents) < 0.5
            new_positions = np.where(stay, self.positions, new_positions)
        self.positions = new_positions.astype(np.int64, copy=False)
        return previous

    def inform_agents(self, agent_indices) -> int:
        """Mark the given agents informed; return how many were newly informed."""
        agent_indices = np.asarray(agent_indices, dtype=np.int64)
        if agent_indices.size == 0:
            return 0
        newly = np.count_nonzero(~self.informed[agent_indices])
        self.informed[agent_indices] = True
        return int(newly)

    def inform_agents_at(self, vertices) -> int:
        """Inform every agent currently located on one of ``vertices``."""
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size == 0:
            return 0
        mask = np.isin(self.positions, vertices)
        newly = int(np.count_nonzero(mask & ~self.informed))
        self.informed |= mask
        return newly

    def copy(self) -> "AgentSystem":
        """Return an independent deep copy of the agent system."""
        return AgentSystem(
            graph=self.graph,
            positions=self.positions.copy(),
            informed=self.informed.copy(),
            lazy=self.lazy,
        )
