"""Vectorized protocol kernels — the single source of truth per protocol.

Each module in this package defines one protocol's state layout and one-round
transition on 2-D ``(trials, ...)`` numpy arrays.  Every execution mode is
derived from these kernels:

* the batched driver (:mod:`repro.core.batch`) runs many trials at once with
  row-compaction completion masking, and
* the sequential :class:`~repro.core.engine.RoundProtocol` classes in
  :mod:`repro.core.protocols` are thin adapters that drive a kernel with
  ``trials=1`` under the round-based :class:`~repro.core.engine.Engine`.

Above :func:`~repro.core.kernels.base.sparse_threshold` vertices the kernels
transparently switch to a sparse-frontier state representation (packed
informed bitsets from :mod:`~repro.core.kernels.packed`, per-trial frontier
lists) that is bit-identical to the dense layout; and
:mod:`~repro.core.kernels.compiled` houses the separate numba-jittable
per-trial runner family behind ``backend="compiled"``.

``KERNEL_REGISTRY`` maps every protocol name of
:data:`repro.core.protocols.PROTOCOL_REGISTRY` to its kernel class; the two
registries cover exactly the same six protocols.
"""

from __future__ import annotations

from .base import BatchKernel, NeighborSampler, batch_generator, sparse_threshold
from .hybrid import HybridKernel
from .meet_exchange import MeetExchangeKernel
from .packed import PackedBits, popcount
from .pull import PullKernel
from .push import PushKernel
from .push_pull import PushPullKernel
from .visit_exchange import VisitExchangeKernel

__all__ = [
    "BatchKernel",
    "NeighborSampler",
    "PackedBits",
    "batch_generator",
    "popcount",
    "sparse_threshold",
    "KERNEL_REGISTRY",
    "get_kernel_class",
    "PushKernel",
    "PullKernel",
    "PushPullKernel",
    "VisitExchangeKernel",
    "MeetExchangeKernel",
    "HybridKernel",
]

#: Mapping from protocol name to its kernel class.
KERNEL_REGISTRY = {
    PushKernel.name: PushKernel,
    PullKernel.name: PullKernel,
    PushPullKernel.name: PushPullKernel,
    VisitExchangeKernel.name: VisitExchangeKernel,
    MeetExchangeKernel.name: MeetExchangeKernel,
    HybridKernel.name: HybridKernel,
}


def get_kernel_class(name: str):
    """Return the kernel class for a protocol name, raising for unknown names."""
    try:
        return KERNEL_REGISTRY[name]
    except KeyError as exc:
        known = ", ".join(sorted(KERNEL_REGISTRY))
        raise ValueError(
            f"protocol {name!r} has no batched kernel (batched protocols: {known})"
        ) from exc
