"""Edge-usage fairness metrics.

Section 1 of the paper attributes the strength of the agent-based protocols to
their *locally fair* bandwidth use: because the walks are independent and
stationary, every edge is traversed with the same frequency.  Push-pull, by
contrast, can starve crucial edges — on the double star the single bridge edge
is selected with probability only ``O(1/n)`` per round.

These metrics quantify that difference from edge-usage counts collected by
:class:`repro.core.observers.EdgeUsageObserver` or directly from agent
trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.agents import AgentSystem
from ..core.rng import make_rng
from ..graphs.graph import Graph

__all__ = [
    "FairnessReport",
    "fairness_from_counts",
    "edge_usage_from_walks",
    "gini_coefficient",
    "expected_uniform_share",
]


def gini_coefficient(values) -> float:
    """Gini coefficient of a non-negative sample (0 = perfectly even).

    Used as the headline unfairness number: near 0 for the agent protocols,
    markedly higher for push/push-pull on the highly non-regular examples.
    """
    data = np.sort(np.asarray(list(values), dtype=float))
    if data.size == 0:
        raise ValueError("cannot compute the Gini coefficient of an empty sample")
    if np.any(data < 0):
        raise ValueError("values must be non-negative")
    total = data.sum()
    if total == 0:
        return 0.0
    cumulative = np.cumsum(data)
    # Standard formula: G = (n + 1 - 2 * sum(cum)/total) / n
    n = data.size
    return float((n + 1 - 2 * (cumulative.sum() / total)) / n)


def expected_uniform_share(num_edges: int) -> float:
    """Share of traffic each edge would receive under perfectly fair usage."""
    if num_edges <= 0:
        raise ValueError("need at least one edge")
    return 1.0 / num_edges


@dataclass(frozen=True)
class FairnessReport:
    """Distributional description of per-edge usage counts."""

    num_edges: int
    total_uses: int
    gini: float
    max_share: float
    min_share: float
    coefficient_of_variation: float
    unused_edges: int

    def describe(self) -> str:
        """One-line human readable rendering."""
        return (
            f"edges={self.num_edges} uses={self.total_uses} gini={self.gini:.3f} "
            f"max_share={self.max_share:.4f} (uniform would be "
            f"{expected_uniform_share(self.num_edges):.4f}) unused={self.unused_edges}"
        )


def fairness_from_counts(graph: Graph, counts: Dict[Tuple[int, int], int]) -> FairnessReport:
    """Build a :class:`FairnessReport` from per-edge usage counts.

    Edges absent from ``counts`` contribute zero uses; keys are canonicalized
    to ``(min(u, v), max(u, v))``.
    """
    usage = np.zeros(graph.num_edges, dtype=float)
    canonical = {}
    for (u, v), value in counts.items():
        canonical[(min(u, v), max(u, v))] = canonical.get((min(u, v), max(u, v)), 0) + value
    for index, edge in enumerate(graph.edges()):
        usage[index] = canonical.get(edge, 0)
    total = float(usage.sum())
    shares = usage / total if total > 0 else usage
    mean = usage.mean() if usage.size else 0.0
    cv = float(usage.std() / mean) if mean > 0 else 0.0
    return FairnessReport(
        num_edges=graph.num_edges,
        total_uses=int(total),
        gini=gini_coefficient(usage),
        max_share=float(shares.max()) if total > 0 else 0.0,
        min_share=float(shares.min()) if total > 0 else 0.0,
        coefficient_of_variation=cv,
        unused_edges=int(np.count_nonzero(usage == 0)),
    )


def edge_usage_from_walks(
    graph: Graph,
    *,
    num_agents: Optional[int] = None,
    rounds: int = 200,
    seed=0,
    lazy: bool = False,
) -> FairnessReport:
    """Measure per-edge traversal counts of stationary independent random walks.

    This is the "bandwidth" view of fairness: it counts every traversal of the
    agents of a visit-exchange-style population, regardless of whether the
    traversal carried new information.  The paper's fairness claim is exactly
    that this distribution is (near) uniform over edges.
    """
    rng = make_rng(seed)
    count = num_agents if num_agents is not None else graph.num_vertices
    agents = AgentSystem.from_stationary(graph, int(count), rng, lazy=lazy)
    edge_index = {edge: i for i, edge in enumerate(graph.edges())}
    usage = np.zeros(graph.num_edges, dtype=np.int64)

    for _ in range(int(rounds)):
        previous = agents.step(rng)
        for old, new in zip(previous.tolist(), agents.positions.tolist()):
            if old == new:
                continue
            usage[edge_index[(min(old, new), max(old, new))]] += 1

    counts = {edge: int(usage[i]) for edge, i in edge_index.items()}
    return fairness_from_counts(graph, counts)
