"""Smoke tests for the example applications.

The examples double as executable documentation; these tests import every
example module (catching syntax errors and broken imports) and run the cheap
ones end to end with reduced sizes so a refactor of the public API cannot
silently break them.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

ALL_EXAMPLES = [
    "quickstart.py",
    "figure1_sweep.py",
    "regular_graph_theorem1.py",
    "social_network_broadcast.py",
    "coupling_demo.py",
    "fault_tolerant_agents.py",
    "robustness_sweep.py",
    "cached_sweep.py",
    "distributed_sweep.py",
]


def load_example(filename: str):
    """Import an example script as a module without executing ``main``."""
    path = EXAMPLES_DIR / filename
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesImport:
    @pytest.mark.parametrize("filename", ALL_EXAMPLES)
    def test_example_imports_cleanly(self, filename):
        module = load_example(filename)
        assert hasattr(module, "main")
        assert module.__doc__  # every example documents what it demonstrates


class TestCheapExamplesRun:
    def test_quickstart_runs_at_reduced_size(self, capsys):
        module = load_example("quickstart.py")
        module.main(120)
        output = capsys.readouterr().out
        assert "visit-exchange" in output
        assert "Broadcast times" in output

    def test_coupling_demo_runs_at_reduced_size(self, capsys):
        module = load_example("coupling_demo.py")
        module.main(64)
        output = capsys.readouterr().out
        assert "Lemma 13" in output
        assert "True" in output

    def test_fault_tolerant_example_pipeline_component(self, capsys):
        module = load_example("fault_tolerant_agents.py")
        graph = module.build_graph(128)
        module.rumor_pipeline(graph)
        output = capsys.readouterr().out
        assert "Rumor pipeline" in output
        assert "rumor-9" in output

    def test_robustness_sweep_runs_at_reduced_size(self, capsys):
        module = load_example("robustness_sweep.py")
        graph = module.build_graph(96)
        results = module.sweep(graph, trials=6)
        # Seed-paired degradation: the harshest rate is slower than baseline.
        for protocol in module.PROTOCOLS:
            assert results[(protocol, 0.4)] > results[(protocol, 0.0)]

    def test_cached_sweep_runs_at_reduced_size(self, capsys):
        module = load_example("cached_sweep.py")
        module.main(sizes=(32, 64), trials=3)
        output = capsys.readouterr().out
        assert "warm results bit-identical to cold: True" in output
        assert "reproduces the table: True" in output

    def test_distributed_sweep_runs_at_reduced_size(self, capsys, monkeypatch):
        # A failed request through the fault proxy must not bench a worker
        # for the full production cooldown inside a smoke test.
        monkeypatch.setattr("repro.store.backends.remote._DOWN_COOLDOWN", 0.2)
        module = load_example("distributed_sweep.py")
        module.main(sizes=(16, 32), trials=2, workers=2)
        output = capsys.readouterr().out
        assert "cells done on the hub: 4/4" in output
        assert "hub results bit-identical to the serial run: True" in output
