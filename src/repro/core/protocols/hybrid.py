"""A hybrid of PUSH-PULL and VISIT-EXCHANGE.

The paper's introduction concludes that "agent-based information
dissemination, separately or **in combination with push-pull**, can
significantly improve the broadcast time".  This module implements the obvious
combination: vertices run push-pull every round, and a linear number of agents
simultaneously runs visit-exchange over the *same* informed-vertex set.

On every example family of Figure 1 the hybrid inherits the faster of the two
mechanisms (up to constants): push-pull rescues it on the heavy binary tree
and its siamese variant, while the agents rescue it on the double star.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...graphs.graph import Graph
from ..agents import AgentSystem, default_agent_count
from ..engine import RoundProtocol
from ..rng import make_rng

__all__ = ["HybridPushPullVisitProtocol"]


class HybridPushPullVisitProtocol(RoundProtocol):
    """PUSH-PULL and VISIT-EXCHANGE sharing one informed-vertex set.

    Per round, in order: (1) every vertex performs a push-pull exchange with a
    random neighbor; (2) all agents take one random-walk step and apply the
    visit-exchange rules against the shared informed-vertex set.  Completion is
    "all vertices informed", as for push-pull and visit-exchange.
    """

    name = "hybrid-ppull-visitx"

    def __init__(
        self,
        *,
        agent_density: float = 1.0,
        num_agents: Optional[int] = None,
        lazy: bool = False,
    ) -> None:
        self.agent_density = float(agent_density)
        self.explicit_num_agents = num_agents
        self.lazy = bool(lazy)

        self._graph: Optional[Graph] = None
        self._agents: Optional[AgentSystem] = None
        self._vertex_informed: Optional[np.ndarray] = None
        self._informed_vertex_count = 0
        self._messages = 0
        self._all_vertices: Optional[np.ndarray] = None

    def initialize(self, graph: Graph, source: int, rng) -> None:
        rng = make_rng(rng)
        self._graph = graph
        count = (
            int(self.explicit_num_agents)
            if self.explicit_num_agents is not None
            else default_agent_count(graph, self.agent_density)
        )
        self._agents = AgentSystem.from_stationary(graph, count, rng, lazy=self.lazy)
        self._vertex_informed = np.zeros(graph.num_vertices, dtype=bool)
        self._vertex_informed[source] = True
        self._informed_vertex_count = 1
        self._messages = 0
        self._all_vertices = np.arange(graph.num_vertices, dtype=np.int64)
        self._agents.inform_agents(self._agents.agents_at(source))

    def execute_round(self, round_index: int, rng) -> None:
        graph = self._graph
        agents = self._agents
        vertex_informed = self._vertex_informed
        assert graph is not None and agents is not None and vertex_informed is not None
        rng = make_rng(rng)

        # --- push-pull sub-round -------------------------------------------------
        callers = self._all_vertices
        assert callers is not None
        callees = graph.sample_neighbors(callers, rng)
        self._messages += int(callers.size)
        caller_informed = vertex_informed[callers]
        callee_informed = vertex_informed[callees]
        newly = np.zeros(graph.num_vertices, dtype=bool)
        newly[callees[caller_informed & ~callee_informed]] = True
        newly[callers[~caller_informed & callee_informed]] = True
        newly &= ~vertex_informed
        if np.any(newly):
            vertex_informed |= newly
            self._informed_vertex_count = int(np.count_nonzero(vertex_informed))

        # --- visit-exchange sub-round --------------------------------------------
        informed_before_step = agents.informed.copy()
        agents.step(rng)
        informing_positions = agents.positions[informed_before_step]
        if informing_positions.size:
            new_vertices = np.unique(
                informing_positions[~vertex_informed[informing_positions]]
            )
            if new_vertices.size:
                vertex_informed[new_vertices] = True
                self._informed_vertex_count += int(new_vertices.size)
        # Agents learn from any informed vertex they stand on.
        agents.informed |= vertex_informed[agents.positions]

    def is_complete(self) -> bool:
        assert self._graph is not None
        return self._informed_vertex_count >= self._graph.num_vertices

    def informed_vertex_count(self) -> int:
        return self._informed_vertex_count

    def informed_agent_count(self) -> int:
        assert self._agents is not None
        return self._agents.num_informed

    def num_agents(self) -> int:
        assert self._agents is not None
        return self._agents.num_agents

    def messages_sent(self) -> int:
        return self._messages

    def extra_metadata(self) -> dict:
        return {"agent_density": self.agent_density, "lazy": self.lazy}
