"""Quickstart: compare all four protocols of the paper on one graph.

The paper's flagship example of the agent-based protocols' advantage is the
double star (Figure 1b): push-pull needs Omega(n) rounds because it has to
sample the single bridge edge, while visit-exchange and meet-exchange cross it
in O(1) expected rounds thanks to their locally fair use of bandwidth.

Run with::

    python examples/quickstart.py [n]
"""

from __future__ import annotations

import sys

from repro import simulate
from repro.analysis import format_table
from repro.graphs import double_star


def main(num_vertices: int = 512) -> None:
    """Run every protocol a few times on the double star and print a table."""
    graph = double_star(num_vertices)
    source = 2  # a leaf of the first star: the hardest natural starting point
    protocols = ["push", "push-pull", "visit-exchange", "meet-exchange"]
    trials = 5

    rows = []
    for protocol in protocols:
        times = []
        for trial in range(trials):
            kwargs = {"lazy": True} if protocol == "meet-exchange" else {}
            result = simulate(protocol, graph, source=source, seed=trial, **kwargs)
            if not result.completed:
                raise RuntimeError(f"{protocol} did not complete; raise max_rounds")
            times.append(result.broadcast_time)
        rows.append(
            [protocol, min(times), sum(times) / len(times), max(times)]
        )

    print(f"Double star with n={graph.num_vertices} vertices, source = leaf {source}")
    print(
        format_table(
            ["protocol", "min rounds", "mean rounds", "max rounds"],
            rows,
            title="Broadcast times over 5 trials",
        )
    )
    print()
    print(
        "Expected shape (Lemma 3): push and push-pull grow linearly with n, "
        "while visit-exchange and meet-exchange stay logarithmic."
    )


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    main(size)
