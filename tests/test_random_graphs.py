"""Tests for the non-regular random graph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import GraphError
from repro.graphs.random_graphs import (
    connected_erdos_renyi,
    erdos_renyi,
    preferential_attachment,
)


class TestErdosRenyi:
    def test_p_zero_has_no_edges(self, rng):
        graph = erdos_renyi(30, 0.0, rng)
        assert graph.num_edges == 0

    def test_p_one_is_complete(self, rng):
        graph = erdos_renyi(12, 1.0, rng)
        assert graph.num_edges == 12 * 11 // 2

    def test_edge_count_near_expectation(self):
        n, p = 200, 0.1
        counts = [
            erdos_renyi(n, p, np.random.default_rng(seed)).num_edges for seed in range(5)
        ]
        expected = p * n * (n - 1) / 2
        assert abs(np.mean(counts) - expected) < 0.15 * expected

    def test_all_edges_valid(self, rng):
        graph = erdos_renyi(50, 0.2, rng)
        for u, v in graph.edges():
            assert 0 <= u < v < 50

    def test_invalid_probability_rejected(self, rng):
        with pytest.raises(GraphError):
            erdos_renyi(10, 1.5, rng)

    def test_too_few_vertices_rejected(self, rng):
        with pytest.raises(GraphError):
            erdos_renyi(1, 0.5, rng)

    def test_reproducible_with_same_seed(self):
        a = erdos_renyi(40, 0.15, np.random.default_rng(3))
        b = erdos_renyi(40, 0.15, np.random.default_rng(3))
        assert sorted(a.edges()) == sorted(b.edges())


class TestConnectedErdosRenyi:
    def test_returns_connected_graph(self, rng):
        graph = connected_erdos_renyi(60, 0.15, rng)
        assert graph.is_connected()

    def test_raises_when_probability_hopeless(self, rng):
        with pytest.raises(GraphError):
            connected_erdos_renyi(100, 0.001, rng, max_attempts=3)


class TestPreferentialAttachment:
    def test_vertex_count(self, rng):
        graph = preferential_attachment(100, 3, rng)
        assert graph.num_vertices == 100

    def test_connected(self, rng):
        graph = preferential_attachment(150, 2, rng)
        assert graph.is_connected()

    def test_minimum_degree_at_least_m(self, rng):
        graph = preferential_attachment(120, 3, rng)
        # Every vertex added after the seed star attaches to exactly 3 targets.
        assert int(graph.degrees.min()) >= 1
        late_vertices = range(4, 120)
        assert all(graph.degree(v) >= 3 for v in late_vertices)

    def test_heavy_tail_hub_exists(self, rng):
        graph = preferential_attachment(400, 2, rng)
        assert int(graph.degrees.max()) > 5 * int(np.median(graph.degrees))

    def test_rejects_bad_parameters(self, rng):
        with pytest.raises(GraphError):
            preferential_attachment(5, 0, rng)
        with pytest.raises(GraphError):
            preferential_attachment(3, 3, rng)
