"""The sweep farm: a lease-based work queue over store cell keys.

:class:`SweepFarm` is the hub-side state machine behind the write-enabled
store service's ``/sweeps/<id>/lease`` / ``heartbeat`` / ``complete``
endpoints.  A client *submits* a sweep (its canonical payload plus the
ordered cell manifest of ``(index, size, protocol, key)`` rows resolved by
:func:`~repro.store.orchestrator.resolve_sweep_plans`); stateless workers
then *lease* missing cells one at a time, simulate them through the
ordinary :class:`~repro.store.orchestrator.CellPlan` path, *publish* the
result through ``PUT /cells/<key>`` and report *complete*.

Robustness is structural, not best-effort:

* **leases expire** — a worker that crashes, hangs or partitions simply
  stops heartbeating; after ``lease_ttl`` seconds its cell is re-granted to
  the next worker.  Expiry is lazy (checked on every farm operation), so
  no background reaper thread is needed.
* **the journal + the store are the durable state** — submission writes a
  ``manifest`` event to the sweep's journal and completions are backed by
  committed store objects.  Lease state itself is deliberately in-memory
  only: after a hub restart the farm lazily rebuilds a sweep from its
  journal manifest, marks every key already committed in the store as done
  (``"recovered"``), and lets lost leases expire naturally.  Journals stay
  an observability surface; the objects stay the only correctness
  dependency — exactly the store-wide contract.
* **completion is verified** — ``complete`` requires the cell's object to
  actually be committed in the store (the publish must have landed first),
  so a worker cannot mark work done that the fleet cannot read.
* **duplicates are accounted, not hidden** — every grant, expiry, failure
  and duplicate completion increments a counter reported by
  :meth:`SweepFarm.status`, so a farm run can *prove* that no cell was
  simulated twice except across legitimately expired leases
  (``granted - expired - failed == completes + recovered``).

The farm itself is transport-agnostic and fully testable without HTTP; the
service layer (:mod:`repro.store.service`) only translates requests into
these method calls.
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..telemetry import MetricsRegistry, default_registry, get_logger, kv
from .artifacts import ResultStore, StoreError
from .journal import SweepJournal, sweep_id as compute_sweep_id

__all__ = ["FarmCell", "FarmError", "SweepFarm", "UnknownLeaseError", "UnknownSweepError"]

_LOG = get_logger("store.farm")

#: Bounds on worker-pushed fleet snapshots: names must look like metric
#: names, and one sweep tracks at most this many workers / metrics per
#: worker so an abusive (or buggy) fleet cannot grow hub memory unbounded.
_FLEET_NAME_RE = re.compile(r"^[a-z][a-z0-9_]{0,63}$")
_MAX_FLEET_WORKERS = 256
_MAX_FLEET_METRICS = 32

#: Prometheus help strings of the lease-accounting counters (mirrors of the
#: per-sweep ``stats`` dict, aggregated farm-wide).
_STAT_HELP = {
    "granted": "Leases granted to workers.",
    "expired": "Leases that expired without completion (crashed or partitioned worker).",
    "failed": "Leases released early by workers reporting an error.",
    "completes": "Verified cell completions.",
    "duplicate_completes": "Idempotent duplicate or late completions.",
    "recovered": "Cells found already committed in the store.",
    "conflicts": "Sweep re-submissions with a conflicting manifest.",
}


class FarmError(StoreError):
    """Base class for work-queue protocol violations (bad submissions,
    completes without a committed object, manifest conflicts)."""


class UnknownSweepError(FarmError):
    """The sweep is not submitted and has no journal manifest to recover."""


class UnknownLeaseError(FarmError):
    """The lease token is unknown — never granted, expired and re-granted,
    or from before a hub restart."""


@dataclass
class FarmCell:
    """One cell of a farmed sweep and its queue state."""

    index: int
    size: int
    protocol: str
    key: str
    state: str = "pending"  # "pending" | "leased" | "done"
    status: str = ""  # once done: "farmed" | "recovered"
    worker: str = ""
    lease_token: str = ""
    lease_deadline: float = 0.0

    def manifest_entry(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "size": self.size,
            "protocol": self.protocol,
            "key": self.key,
        }


@dataclass
class _FarmSweep:
    """All farm state of one sweep (cells in manifest order + counters)."""

    sweep_id: str
    payload: Dict[str, Any]
    cells: List[FarmCell]
    by_token: Dict[str, FarmCell] = field(default_factory=dict)
    stats: Dict[str, int] = field(
        default_factory=lambda: {
            "granted": 0,
            "expired": 0,
            "failed": 0,
            "completes": 0,
            "duplicate_completes": 0,
            "recovered": 0,
            "conflicts": 0,
        }
    )
    finished_journaled: bool = False
    #: Worker-pushed fleet-health snapshots: ``{worker: {metric: value}}``.
    workers: Dict[str, Dict[str, float]] = field(default_factory=dict)


class SweepFarm:
    """Lease-based work queue over the cells of submitted sweeps."""

    def __init__(
        self,
        store: ResultStore,
        *,
        lease_ttl: float = 60.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.store = store
        self.lease_ttl = float(lease_ttl)
        # The hub's store service passes its per-server registry so farm
        # counters land on that server's /metrics; standalone farms fall
        # back to the process-global default registry.
        self._registry = registry if registry is not None else default_registry()
        self._lock = threading.Lock()
        self._sweeps: Dict[str, _FarmSweep] = {}
        self._token_counter = 0

    def _count(self, sweep: _FarmSweep, stat: str) -> None:
        """One accounting event: the per-sweep stats dict (the protocol
        contract reported by :meth:`status`) and the farm-wide registry
        counter move together."""
        sweep.stats[stat] += 1
        self._registry.counter(f"repro_farm_{stat}_total", _STAT_HELP.get(stat, "")).inc()

    # ------------------------------------------------------------------
    # submission & recovery
    # ------------------------------------------------------------------
    def submit(self, payload: Dict[str, Any], cells: List[Dict[str, Any]]) -> Dict[str, Any]:
        """Register a sweep and its cell manifest; returns its status.

        Idempotent: re-submitting the same sweep (the id hashes the payload,
        so same payload ⇒ same id) is a no-op that refreshes nothing and
        conflicts loudly if the manifest's keys differ — two honest
        resolutions of one sweep payload cannot disagree, so a mismatch
        means mixed code versions across the fleet.
        """
        sid = compute_sweep_id(payload)
        rows = [
            FarmCell(
                index=int(c["index"]),
                size=int(c["size"]),
                protocol=str(c["protocol"]),
                key=str(c["key"]),
            )
            for c in cells
        ]
        with self._lock:
            known = self._sweeps.get(sid)
            if known is not None:
                if [c.key for c in known.cells] != [c.key for c in rows]:
                    self._count(known, "conflicts")
                    _LOG.warning(
                        "sweep re-submitted with a conflicting manifest %s",
                        kv(sweep=sid, cells=len(rows)),
                    )
                    raise FarmError(
                        f"sweep {sid} re-submitted with a different cell manifest "
                        "(mixed code versions across the fleet?)"
                    )
                self._absorb_store(known)
                return self._status_locked(known)
            sweep = _FarmSweep(sweep_id=sid, payload=payload, cells=rows)
            journal = SweepJournal(self.store, payload)
            existing = journal.last_manifest()
            if existing is None or [c.get("key") for c in existing.get("cells", [])] != [
                c.key for c in rows
            ]:
                journal.manifest(cells=[c.manifest_entry() for c in rows])
            self._sweeps[sid] = sweep
            self._absorb_store(sweep)
            return self._status_locked(sweep)

    def _recover(self, sid: str) -> _FarmSweep:
        """Rebuild a sweep from its journal manifest after a hub restart."""
        text = self.store.backend.local.read_sweep_text(sid)
        if text is None:
            raise UnknownSweepError(f"unknown sweep {sid} (not submitted, no journal)")
        manifest = None
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if event.get("event") == "manifest":
                manifest = event
        if manifest is None:
            raise UnknownSweepError(f"sweep {sid} has a journal but no manifest (not farmed)")
        rows = [
            FarmCell(
                index=int(c["index"]),
                size=int(c["size"]),
                protocol=str(c["protocol"]),
                key=str(c["key"]),
            )
            for c in manifest.get("cells", [])
        ]
        sweep = _FarmSweep(sweep_id=sid, payload=manifest.get("sweep", {}), cells=rows)
        self._sweeps[sid] = sweep
        self._absorb_store(sweep, journal_recovered=False)
        return sweep

    def _absorb_store(self, sweep: _FarmSweep, *, journal_recovered: bool = True) -> None:
        """Mark every cell whose object is already committed as done.

        Runs at submission and recovery; ``journal_recovered`` suppresses
        the journal line during restart recovery (those completions were
        journaled by whoever committed them — re-recording would double the
        history for no observability gain).
        """
        journal = SweepJournal(self.store, sweep.payload) if journal_recovered else None
        for cell in sweep.cells:
            if cell.state == "done":
                continue
            if self.store.backend.local.read_sidecar_bytes(cell.key) is not None:
                self._mark_done(sweep, cell, status="recovered", worker="", journal=journal)

    def _ensure(self, sid: str) -> _FarmSweep:
        sweep = self._sweeps.get(sid)
        if sweep is None:
            sweep = self._recover(sid)
        return sweep

    # ------------------------------------------------------------------
    # leases
    # ------------------------------------------------------------------
    def _expire_locked(self, sweep: _FarmSweep) -> None:
        now = time.monotonic()
        for cell in sweep.cells:
            if cell.state == "leased" and cell.lease_deadline < now:
                _LOG.info(
                    "lease expired %s",
                    kv(
                        sweep=sweep.sweep_id,
                        key=cell.key,
                        worker=cell.worker,
                        lease=cell.lease_token,
                    ),
                )
                sweep.by_token.pop(cell.lease_token, None)
                cell.state = "pending"
                cell.lease_token = ""
                cell.worker = ""
                self._count(sweep, "expired")

    def lease(self, sid: str, worker: str) -> Optional[Dict[str, Any]]:
        """Grant the lowest-index available cell to ``worker``.

        Returns None when nothing is leasable — either the sweep is done or
        every remaining cell is currently leased (the worker should poll
        again; a crashed peer's lease will expire).  Cells whose object
        already exists in the store are marked done (``"recovered"``) and
        skipped, so a warm store farms zero cells.
        """
        with self._lock:
            sweep = self._ensure(sid)
            self._expire_locked(sweep)
            journal = SweepJournal(self.store, sweep.payload)
            for cell in sweep.cells:
                if cell.state != "pending":
                    continue
                if self.store.backend.local.read_sidecar_bytes(cell.key) is not None:
                    self._mark_done(sweep, cell, status="recovered", worker="", journal=journal)
                    continue
                self._token_counter += 1
                token = f"{cell.key[:12]}-{self._token_counter:06d}"
                cell.state = "leased"
                cell.worker = str(worker)
                cell.lease_token = token
                cell.lease_deadline = time.monotonic() + self.lease_ttl
                sweep.by_token[token] = cell
                self._count(sweep, "granted")
                _LOG.debug(
                    "lease granted %s",
                    kv(sweep=sid, key=cell.key, worker=cell.worker, lease=token),
                )
                return {
                    "sweep": sid,
                    "lease": token,
                    "ttl": self.lease_ttl,
                    **cell.manifest_entry(),
                }
            return None

    def heartbeat(self, sid: str, token: str) -> Dict[str, Any]:
        """Renew a lease's deadline; raises :class:`UnknownLeaseError` when
        the lease already expired (the worker must abandon the cell)."""
        with self._lock:
            sweep = self._ensure(sid)
            self._expire_locked(sweep)
            cell = sweep.by_token.get(token)
            if cell is None or cell.state != "leased":
                raise UnknownLeaseError(
                    f"lease {token} of sweep {sid} is not active (expired or never granted)"
                )
            cell.lease_deadline = time.monotonic() + self.lease_ttl
            return {"sweep": sid, "lease": token, "ttl": self.lease_ttl, "key": cell.key}

    def fail(self, sid: str, token: str, *, reason: str = "") -> Dict[str, Any]:
        """Release a lease early (worker hit an error); the cell re-queues."""
        with self._lock:
            sweep = self._ensure(sid)
            self._expire_locked(sweep)
            cell = sweep.by_token.pop(token, None)
            if cell is not None and cell.state == "leased":
                _LOG.info(
                    "lease failed by worker %s",
                    kv(sweep=sid, key=cell.key, worker=cell.worker, reason=reason),
                )
                cell.state = "pending"
                cell.lease_token = ""
                cell.worker = ""
                self._count(sweep, "failed")
            return self._status_locked(sweep)

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def _mark_done(
        self,
        sweep: _FarmSweep,
        cell: FarmCell,
        *,
        status: str,
        worker: str,
        journal: Optional[SweepJournal],
    ) -> None:
        if cell.state == "leased":
            sweep.by_token.pop(cell.lease_token, None)
        cell.state = "done"
        cell.status = status
        cell.worker = worker
        cell.lease_token = ""
        if status == "recovered":
            self._count(sweep, "recovered")
        if journal is not None:
            journal.cell(
                index=cell.index,
                size=cell.size,
                protocol=cell.protocol,
                key=cell.key,
                status=status,
                worker=worker or None,
            )
        if not sweep.finished_journaled and all(c.state == "done" for c in sweep.cells):
            sweep.finished_journaled = True
            if journal is not None:
                journal.finish()

    def complete(self, sid: str, token: str, *, key: str, worker: str = "") -> Dict[str, Any]:
        """Record a published cell as done.

        Requires the object to be committed in the store — completion
        without a readable artifact is a protocol violation.  Idempotent
        for late and duplicate completes: a worker whose lease expired
        mid-publish (or that retried an ambiguous POST) gets a clean
        acknowledgement as long as the cell is done with the same key,
        counted under ``duplicate_completes`` so the accounting stays
        honest.
        """
        with self._lock:
            sweep = self._ensure(sid)
            self._expire_locked(sweep)
            cell = sweep.by_token.get(token)
            if cell is not None and cell.key != key:
                raise FarmError(
                    f"lease {token} covers cell {cell.key}, not {key} "
                    "(worker/plan resolution mismatch)"
                )
            if cell is None:
                # Late complete: the lease expired (or the hub restarted).
                # Find the cell by key; if it is done — or its object is
                # committed — acknowledge idempotently.
                matches = [c for c in sweep.cells if c.key == key]
                if not matches:
                    raise FarmError(f"sweep {sid} has no cell {key}")
                cell = matches[0]
                if cell.state == "done":
                    self._count(sweep, "duplicate_completes")
                    _LOG.debug(
                        "duplicate complete %s", kv(sweep=sid, key=key, worker=worker)
                    )
                    return self._status_locked(sweep)
            if self.store.backend.local.read_sidecar_bytes(key) is None:
                raise FarmError(
                    f"cell {key} completed without a committed store object "
                    "(publish it before completing)"
                )
            if cell.state == "done":
                self._count(sweep, "duplicate_completes")
                _LOG.debug(
                    "duplicate complete %s", kv(sweep=sid, key=key, worker=worker)
                )
                return self._status_locked(sweep)
            journal = SweepJournal(self.store, sweep.payload)
            self._count(sweep, "completes")
            _LOG.debug("cell completed %s", kv(sweep=sid, key=key, worker=worker))
            self._mark_done(sweep, cell, status="farmed", worker=worker, journal=journal)
            return self._status_locked(sweep)

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------
    def _status_locked(self, sweep: _FarmSweep) -> Dict[str, Any]:
        counts = {"pending": 0, "leased": 0, "done": 0}
        for cell in sweep.cells:
            counts[cell.state] += 1
        doc = {
            "sweep": sweep.sweep_id,
            "cells": len(sweep.cells),
            **counts,
            "stats": dict(sweep.stats),
        }
        # Only present once a worker pushed a snapshot: pre-telemetry status
        # documents keep their exact shape.
        if sweep.workers:
            doc["workers"] = {name: dict(m) for name, m in sweep.workers.items()}
        return doc

    def status(self, sid: str) -> Dict[str, Any]:
        """Queue counts and accounting counters of one sweep."""
        with self._lock:
            sweep = self._ensure(sid)
            self._expire_locked(sweep)
            self._absorb_store(sweep)
            return self._status_locked(sweep)

    # ------------------------------------------------------------------
    # fleet health
    # ------------------------------------------------------------------
    def worker_metrics(
        self, sid: str, worker: str, metrics: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Absorb one worker's pushed fleet-health snapshot.

        Snapshots are observability only — they never influence leasing or
        completion.  Validation is therefore lenient but bounded: metric
        names must look like metric names (``[a-z][a-z0-9_]*``), values must
        be finite numbers, and both the workers-per-sweep and
        metrics-per-worker counts are capped.  Accepted values are stored on
        the sweep (surfaced by :meth:`status`) and exported as
        ``repro_fleet_<metric>{sweep=...,worker=...}`` gauges.
        """
        worker = str(worker).strip()
        if not worker or len(worker) > 64:
            raise FarmError("worker metrics need a worker name of 1-64 characters")
        accepted: Dict[str, float] = {}
        for name, value in (metrics or {}).items():
            if not isinstance(name, str) or not _FLEET_NAME_RE.fullmatch(name):
                continue
            try:
                number = float(value)
            except (TypeError, ValueError):
                continue
            if not math.isfinite(number):
                continue
            accepted[name] = number
            if len(accepted) >= _MAX_FLEET_METRICS:
                break
        with self._lock:
            sweep = self._ensure(sid)
            if worker not in sweep.workers and len(sweep.workers) >= _MAX_FLEET_WORKERS:
                raise FarmError(
                    f"sweep {sid} already tracks {_MAX_FLEET_WORKERS} workers"
                )
            sweep.workers[worker] = accepted
        for name, number in accepted.items():
            self._registry.gauge(
                f"repro_fleet_{name}",
                "Worker-pushed fleet health snapshot value.",
                labels=("sweep", "worker"),
            ).labels(sweep=sid, worker=worker).set(number)
        _LOG.debug(
            "fleet metrics absorbed %s",
            kv(sweep=sid, worker=worker, metrics=len(accepted)),
        )
        return {"sweep": sid, "worker": worker, "accepted": sorted(accepted)}

    def export_queue_gauges(self) -> None:
        """Refresh the farm-wide queue-depth gauges (scrape-time hook)."""
        counts = {"pending": 0, "leased": 0, "done": 0}
        with self._lock:
            sweeps = len(self._sweeps)
            for sweep in self._sweeps.values():
                for cell in sweep.cells:
                    counts[cell.state] += 1
        gauge = self._registry.gauge(
            "repro_farm_cells", "Farmed cells across submitted sweeps, by state.",
            labels=("state",),
        )
        for state, value in counts.items():
            gauge.labels(state=state).set(value)
        self._registry.gauge(
            "repro_farm_sweeps", "Sweeps currently tracked by the farm."
        ).set(sweeps)
