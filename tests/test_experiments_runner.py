"""Tests for the experiment runner (repro.experiments.runner)."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig, GraphCase, ProtocolSpec
from repro.experiments.runner import (
    run_experiment,
    run_trial_set,
)
from repro.graphs import complete_graph, star


def star_builder(size, seed):
    return GraphCase(graph=star(size), source=0, size_parameter=size)


def complete_builder(size, seed):
    return GraphCase(graph=complete_graph(size), source=0, size_parameter=size)


TOY_CONFIG = ExperimentConfig(
    experiment_id="toy-complete",
    title="Toy complete-graph experiment",
    paper_reference="none",
    description="fast experiment used by the unit tests",
    graph_builder=complete_builder,
    sizes=(8, 16, 32),
    protocols=(ProtocolSpec("push"), ProtocolSpec("push-pull")),
    trials=3,
)


class TestRunTrialSet:
    def test_runs_requested_number_of_trials(self):
        case = star_builder(10, 0)
        trials = run_trial_set(ProtocolSpec("push"), case, trials=4, base_seed=1)
        assert len(trials) == 4
        assert trials.completion_rate == 1.0

    def test_protocol_kwargs_forwarded(self):
        case = complete_builder(12, 0)
        trials = run_trial_set(
            ProtocolSpec("visit-exchange", kwargs={"agent_density": 2.0}),
            case,
            trials=1,
            base_seed=1,
        )
        assert trials.results[0].num_agents == 24

    def test_max_rounds_enforced(self):
        case = star_builder(50, 0)
        trials = run_trial_set(
            ProtocolSpec("push"), case, trials=2, base_seed=1, max_rounds=1
        )
        assert trials.completion_rate == 0.0

    def test_reproducible_given_base_seed(self):
        case = star_builder(20, 0)
        a = run_trial_set(ProtocolSpec("push"), case, trials=3, base_seed=7)
        b = run_trial_set(ProtocolSpec("push"), case, trials=3, base_seed=7)
        assert a.broadcast_times() == b.broadcast_times()

    def test_trials_differ_within_a_set(self):
        case = star_builder(40, 0)
        trials = run_trial_set(ProtocolSpec("push"), case, trials=5, base_seed=3)
        assert len(set(trials.broadcast_times())) > 1

    def test_zero_trials_rejected(self):
        with pytest.raises(ValueError):
            run_trial_set(ProtocolSpec("push"), star_builder(5, 0), trials=0, base_seed=0)


class TestRunExperiment:
    def test_produces_cell_per_size_and_protocol(self):
        result = run_experiment(TOY_CONFIG, base_seed=0)
        assert len(result.cells) == 3 * 2
        assert set(result.protocol_labels()) == {"push", "push-pull"}

    def test_series_sorted_by_size(self):
        result = run_experiment(TOY_CONFIG, base_seed=0)
        sizes, means = result.series("push")
        assert sizes == sorted(sizes)
        assert len(sizes) == len(means) == 3
        assert all(m > 0 for m in means)

    def test_size_and_trial_overrides(self):
        result = run_experiment(TOY_CONFIG, base_seed=0, sizes=(8,), trials=1)
        assert len(result.cells) == 2
        assert all(len(cell.trials) == 1 for cell in result.cells)

    def test_growth_exponent_available(self):
        result = run_experiment(TOY_CONFIG, base_seed=0)
        exponent = result.growth_exponent("push")
        assert exponent is not None
        # Push on the complete graph is logarithmic: exponent well below 1.
        assert exponent < 0.6

    def test_best_fit_returns_growth_model(self):
        result = run_experiment(TOY_CONFIG, base_seed=0)
        fit = result.best_fit("push", candidates=["log n", "n"])
        assert fit is not None
        assert fit.growth in ("log n", "n")

    def test_table_rows_structure(self):
        result = run_experiment(TOY_CONFIG, base_seed=0, sizes=(8,), trials=1)
        rows = result.table_rows()
        assert len(rows) == 2
        for row in rows:
            assert row["experiment"] == "toy-complete"
            assert row["n"] == 8
            assert row["mean"] is not None

    def test_cells_for_unknown_protocol_empty(self):
        result = run_experiment(TOY_CONFIG, base_seed=0, sizes=(8,), trials=1)
        assert result.cells_for("nonexistent") == []

    def test_reproducibility_of_whole_experiment(self):
        a = run_experiment(TOY_CONFIG, base_seed=5, sizes=(8, 16), trials=2)
        b = run_experiment(TOY_CONFIG, base_seed=5, sizes=(8, 16), trials=2)
        assert [c.mean_time for c in a.cells] == [c.mean_time for c in b.cells]


class TestParallelCellScheduler:
    def test_workers_match_serial_results(self):
        serial = run_experiment(TOY_CONFIG, base_seed=3, sizes=(8, 16), trials=2)
        parallel = run_experiment(
            TOY_CONFIG, base_seed=3, sizes=(8, 16), trials=2, workers=2
        )
        assert [c.protocol_label for c in serial.cells] == [
            c.protocol_label for c in parallel.cells
        ]
        assert [c.size_parameter for c in serial.cells] == [
            c.size_parameter for c in parallel.cells
        ]
        # Seeds are derived per cell from stable components, so sharding the
        # cells across processes must not change a single trial.
        serial_times = [sorted(c.trials.broadcast_times()) for c in serial.cells]
        parallel_times = [sorted(c.trials.broadcast_times()) for c in parallel.cells]
        assert serial_times == parallel_times

    def test_negative_workers_resolve_to_cpu_count(self):
        from repro.experiments.runner import resolve_workers

        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(-1) >= 1


class TestCellResult:
    def test_as_row_handles_missing_summary(self):
        result = run_experiment(TOY_CONFIG, base_seed=0, sizes=(8,), trials=1)
        cell = result.cells[0]
        row = cell.as_row()
        assert row["protocol"] in ("push", "push-pull")
        assert row["completed"] == 1
