"""Registry of reproducible experiments keyed by their DESIGN.md ids.

Every experiment of the reproduction registers itself here (the modules in
this package call :func:`register` at import time).  The CLI, the test suite
and the EXPERIMENTS.md generator all look experiments up through this module,
so the ids in DESIGN.md, the code and the report always agree.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .config import ExperimentConfig

__all__ = ["register", "get_experiment", "list_experiment_ids", "all_experiments"]

_REGISTRY: Dict[str, Callable[[], ExperimentConfig]] = {}


def register(
    experiment_id: str,
    factory: Callable[[], ExperimentConfig],
    *,
    replace: bool = False,
) -> None:
    """Register a configuration factory under a stable experiment id.

    A factory (rather than an instance) is registered so that building the
    configuration stays cheap at import time and experiments can be
    re-instantiated independently.  ``replace=True`` allows overwriting an
    existing registration — scenario corpora register their scenarios on
    every load, and re-loading a manifest must be idempotent rather than an
    error.
    """
    if experiment_id in _REGISTRY and not replace:
        raise ValueError(f"experiment id {experiment_id!r} is already registered")
    _REGISTRY[experiment_id] = factory


def get_experiment(experiment_id: str) -> ExperimentConfig:
    """Instantiate the configuration registered under ``experiment_id``."""
    try:
        factory = _REGISTRY[experiment_id]
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known experiments: {known}"
        ) from exc
    config = factory()
    if config.experiment_id != experiment_id:
        raise ValueError(
            f"experiment factory for {experiment_id!r} produced a config with id "
            f"{config.experiment_id!r}"
        )
    return config


def list_experiment_ids() -> List[str]:
    """All registered experiment ids, sorted."""
    return sorted(_REGISTRY)


def all_experiments() -> List[ExperimentConfig]:
    """Instantiate every registered experiment configuration."""
    return [get_experiment(experiment_id) for experiment_id in list_experiment_ids()]
