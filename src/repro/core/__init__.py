"""Core simulation machinery: engine, agents, protocols and the coupling."""

from .agents import AgentSystem, default_agent_count
from .batch import (
    BATCHED_PROTOCOLS,
    BatchResult,
    run_batch,
    supports_batched,
    trial_seeds,
)
from .coupling import CoupledPushVisitExchange, CoupledRunResult, NeighborChoices
from .engine import Engine, RoundProtocol, default_max_rounds
from .observers import (
    EdgeUsageObserver,
    InformedCountObserver,
    Observer,
    ObserverGroup,
    RoundLimitGuard,
)
from .results import RoundRecord, RunResult, TrialSet
from .rng import RngFactory, derive_seed, make_rng, spawn_rngs
from .protocols import (
    HybridPushPullVisitProtocol,
    MeetExchangeProtocol,
    PROTOCOL_REGISTRY,
    PullProtocol,
    PushProtocol,
    PushPullProtocol,
    VisitExchangeProtocol,
    make_protocol,
)

__all__ = [
    "AgentSystem",
    "default_agent_count",
    "BATCHED_PROTOCOLS",
    "BatchResult",
    "run_batch",
    "supports_batched",
    "trial_seeds",
    "CoupledPushVisitExchange",
    "CoupledRunResult",
    "NeighborChoices",
    "Engine",
    "RoundProtocol",
    "default_max_rounds",
    "Observer",
    "ObserverGroup",
    "InformedCountObserver",
    "EdgeUsageObserver",
    "RoundLimitGuard",
    "RunResult",
    "RoundRecord",
    "TrialSet",
    "RngFactory",
    "make_rng",
    "spawn_rngs",
    "derive_seed",
    "PushProtocol",
    "PushPullProtocol",
    "PullProtocol",
    "VisitExchangeProtocol",
    "MeetExchangeProtocol",
    "HybridPushPullVisitProtocol",
    "PROTOCOL_REGISTRY",
    "make_protocol",
]
