"""Benchmark / reproduction of Figure 1(a): the star graph (Lemma 2).

Paper claims reproduced here:
* ``E[T_push] = Omega(n log n)`` — push is coupon-collector slow,
* ``T_ppull <= 2``,
* ``T_visitx = O(log n)`` and ``T_meetx = O(log n)`` w.h.p.

The pytest-benchmark timings cover one run of each protocol at n = 512; the
shape assertions compare mean broadcast times across the four protocols and
check the growth of push against the n log n prediction.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.scaling import best_growth_model
from repro.experiments import get_experiment, run_experiment
from repro.graphs import star

from _helpers import mean_broadcast_time

SIZE = 512


@pytest.fixture(scope="module")
def star_graph():
    return star(SIZE)


class TestTimings:
    def test_push_single_run(self, benchmark, star_graph):
        benchmark.pedantic(
            lambda: mean_broadcast_time("push", star_graph, source=1, trials=1),
            rounds=2,
            iterations=1,
        )

    def test_push_pull_single_run(self, benchmark, star_graph):
        benchmark.pedantic(
            lambda: mean_broadcast_time("push-pull", star_graph, source=1, trials=1),
            rounds=3,
            iterations=1,
        )

    def test_visit_exchange_single_run(self, benchmark, star_graph):
        benchmark.pedantic(
            lambda: mean_broadcast_time("visit-exchange", star_graph, source=1, trials=1),
            rounds=3,
            iterations=1,
        )

    def test_meet_exchange_single_run(self, benchmark, star_graph):
        benchmark.pedantic(
            lambda: mean_broadcast_time(
                "meet-exchange", star_graph, source=1, trials=1, lazy=True
            ),
            rounds=3,
            iterations=1,
        )


class TestShape:
    def test_lemma2_orderings(self, benchmark, star_graph):
        log_n = math.log2(SIZE)
        times = {}

        def measure():
            times["push"] = mean_broadcast_time("push", star_graph, source=1, trials=2)
            times["push-pull"] = mean_broadcast_time(
                "push-pull", star_graph, source=1, trials=3
            )
            times["visit-exchange"] = mean_broadcast_time(
                "visit-exchange", star_graph, source=1, trials=3
            )
            times["meet-exchange"] = mean_broadcast_time(
                "meet-exchange", star_graph, source=1, trials=3, lazy=True
            )
            return times

        benchmark.pedantic(measure, rounds=1, iterations=1)
        assert times["push-pull"] <= 2
        assert times["visit-exchange"] < 6 * log_n
        assert times["meet-exchange"] < 6 * log_n
        assert times["push"] > 10 * times["visit-exchange"]

    def test_push_growth_fits_n_log_n(self, benchmark):
        config = get_experiment("fig1a-star")

        def sweep():
            return run_experiment(config, base_seed=0, sizes=(64, 128, 256), trials=2)

        result = benchmark.pedantic(sweep, rounds=1, iterations=1)
        sizes, push_means = result.series("push")
        fit = best_growth_model(sizes, push_means, candidates=["log n", "n", "n log n"])
        assert fit.growth in ("n log n", "n")
        sizes_vx, visitx_means = result.series("visit-exchange")
        fit_vx = best_growth_model(sizes_vx, visitx_means, candidates=["log n", "n", "n log n"])
        assert fit_vx.growth == "log n"
