"""Tests for the PUSH protocol."""

from __future__ import annotations

import numpy as np

from repro import simulate
from repro.core.engine import Engine
from repro.core.observers import EdgeUsageObserver, ObserverGroup
from repro.core.protocols import PushProtocol
from repro.graphs import Graph, complete_graph, double_star, star
from repro.theory import expected_collection_time


class TestBasicBehaviour:
    def test_completes_on_small_graphs(self, small_star, small_double_star, small_complete):
        for graph in (small_star, small_double_star, small_complete):
            result = simulate("push", graph, source=0, seed=1)
            assert result.completed
            assert result.broadcast_time >= 1

    def test_two_vertex_graph_takes_one_round(self):
        graph = Graph(2, [(0, 1)])
        result = simulate("push", graph, source=0, seed=0)
        assert result.broadcast_time == 1

    def test_single_vertex_complete_at_round_zero(self):
        # A path of length 1 from either end: the other endpoint is informed in
        # round 1; starting "already complete" only happens for n = 1 graphs,
        # which the Graph type does support (no edges required? it requires
        # connectivity, so use the 1-vertex graph).
        graph = Graph(1, [])
        result = simulate("push", graph, source=0, seed=0)
        assert result.broadcast_time == 0

    def test_informed_count_monotone_and_bounded_by_doubling(self):
        graph = complete_graph(64)
        result = simulate("push", graph, source=0, seed=3)
        history = result.informed_vertex_history
        for before, after in zip(history, history[1:]):
            assert after >= before
            # Each informed vertex sends at most one message per round.
            assert after <= 2 * before

    def test_messages_counted(self):
        graph = star(10)
        result = simulate("push", graph, source=0, seed=0)
        assert result.messages_sent >= result.broadcast_time

    def test_informed_mask_complete_at_end(self):
        protocol = PushProtocol()
        graph = double_star(20)
        Engine().run(protocol, graph, 2, seed=0)
        assert protocol.informed_mask().all()

    def test_path_broadcast_time_at_least_distance(self):
        # Information travels at most one hop per round along the path.
        edges = [(i, i + 1) for i in range(9)]
        graph = Graph(10, edges, name="path10")
        result = simulate("push", graph, source=0, seed=5)
        assert result.broadcast_time >= 9


class TestStarBehaviour:
    def test_star_mean_matches_coupon_collector(self):
        # Lemma 2(a): the center must collect all leaves.  With the center as
        # the source the expected broadcast time is exactly the coupon
        # collector expectation n * H_n.
        num_leaves = 40
        graph = star(num_leaves)
        times = [
            simulate("push", graph, source=0, seed=seed).broadcast_time
            for seed in range(30)
        ]
        expected = expected_collection_time(num_leaves)
        assert 0.7 * expected < np.mean(times) < 1.4 * expected

    def test_star_from_leaf_adds_constant_rounds(self):
        graph = star(30)
        result = simulate("push", graph, source=3, seed=2)
        assert result.completed
        assert result.broadcast_time > 30  # still coupon-collector dominated


class TestEdgeReporting:
    def test_informing_edges_form_spanning_structure(self):
        graph = double_star(20)
        observer = EdgeUsageObserver()
        Engine().run(
            PushProtocol(), graph, 0, seed=4, observers=ObserverGroup([observer])
        )
        # Exactly n - 1 informing transmissions (each vertex informed once,
        # except the source).
        assert observer.total_uses() == graph.num_vertices - 1

    def test_reported_edges_are_graph_edges(self):
        graph = complete_graph(12)
        observer = EdgeUsageObserver()
        Engine().run(
            PushProtocol(), graph, 0, seed=4, observers=ObserverGroup([observer])
        )
        for u, v in observer.counts:
            assert graph.has_edge(u, v)


class TestDeterminism:
    def test_same_seed_same_run(self, small_double_star):
        a = simulate("push", small_double_star, source=2, seed=9)
        b = simulate("push", small_double_star, source=2, seed=9)
        assert a.broadcast_time == b.broadcast_time
        assert a.informed_vertex_history == b.informed_vertex_history
