"""Tests for the hybrid push-pull + visit-exchange protocol."""

from __future__ import annotations

import numpy as np

from repro import simulate
from repro.core.engine import Engine
from repro.core.protocols import HybridPushPullVisitProtocol
from repro.graphs import double_star, heavy_binary_tree, star
from repro.graphs.heavy_binary_tree import tree_leaves


class TestBasicBehaviour:
    def test_completes_on_small_graphs(self, small_star, small_double_star, small_heavy_tree):
        for graph in (small_star, small_double_star, small_heavy_tree):
            result = simulate("hybrid-ppull-visitx", graph, source=0, seed=1)
            assert result.completed

    def test_informed_vertices_monotone(self):
        result = simulate("hybrid-ppull-visitx", double_star(60), source=2, seed=2)
        history = result.informed_vertex_history
        assert all(b >= a for a, b in zip(history, history[1:]))

    def test_messages_accounted_for_push_pull_part(self):
        graph = star(20)
        result = simulate("hybrid-ppull-visitx", graph, source=0, seed=1)
        assert result.messages_sent == graph.num_vertices * result.rounds_executed

    def test_agents_created_with_requested_density(self, small_double_star):
        protocol = HybridPushPullVisitProtocol(agent_density=2.0)
        Engine(max_rounds=0).run(protocol, small_double_star, 0, seed=1)
        assert protocol.num_agents() == 2 * small_double_star.num_vertices

    def test_metadata_fields(self):
        result = simulate("hybrid-ppull-visitx", star(20), source=0, seed=1, lazy=True)
        assert result.metadata["lazy"] is True

    def test_same_seed_reproducible(self, small_double_star):
        a = simulate("hybrid-ppull-visitx", small_double_star, source=2, seed=3)
        b = simulate("hybrid-ppull-visitx", small_double_star, source=2, seed=3)
        assert a.broadcast_time == b.broadcast_time


class TestInheritsTheFasterMechanism:
    def test_fast_on_double_star_where_push_pull_is_slow(self):
        graph = double_star(300)
        hybrid_times = [
            simulate("hybrid-ppull-visitx", graph, source=2, seed=s).broadcast_time
            for s in range(5)
        ]
        ppull_times = [
            simulate("push-pull", graph, source=2, seed=s).broadcast_time for s in range(5)
        ]
        assert np.mean(hybrid_times) < np.mean(ppull_times)
        assert np.mean(hybrid_times) < 60

    def test_fast_on_heavy_tree_where_visitx_is_slow(self):
        graph = heavy_binary_tree(255)
        leaf = tree_leaves(graph)[0]
        hybrid_times = [
            simulate("hybrid-ppull-visitx", graph, source=leaf, seed=s).broadcast_time
            for s in range(3)
        ]
        visitx_times = [
            simulate("visit-exchange", graph, source=leaf, seed=s).broadcast_time
            for s in range(3)
        ]
        assert np.mean(hybrid_times) < np.mean(visitx_times)
        assert np.mean(hybrid_times) < 60
