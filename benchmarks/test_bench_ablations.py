"""Benchmark / ablations for the model knobs called out in DESIGN.md.

Three ablations, none of which should change the paper's conclusions:

* **agent density** alpha in {0.5, 1, 2}: only the constants move;
* **initial placement** (stationary vs one agent per vertex): statistically
  indistinguishable on regular graphs (remark after Lemma 11);
* **lazy walks**: roughly a 2x constant-factor slowdown for visit-exchange.
"""

from __future__ import annotations

import math

import numpy as np

from _helpers import mean_broadcast_time
from repro.graphs import random_regular_graph, star


def regular_instance(n, seed):
    degree = max(4, int(2 * math.log2(n)))
    if (n * degree) % 2:
        degree += 1
    return random_regular_graph(n, degree, np.random.default_rng(seed))


class TestTimings:
    def test_visit_exchange_density_two(self, benchmark):
        graph = regular_instance(512, 0)
        benchmark.pedantic(
            lambda: mean_broadcast_time(
                "visit-exchange", graph, source=0, trials=1, agent_density=2.0
            ),
            rounds=3,
            iterations=1,
        )


class TestShape:
    def test_density_changes_constants_not_completion(self, benchmark):
        graph = regular_instance(512, 1)
        times = {}

        def measure():
            for density in (0.5, 1.0, 2.0):
                times[density] = mean_broadcast_time(
                    "visit-exchange", graph, source=0, trials=3, agent_density=density
                )
            return times

        benchmark.pedantic(measure, rounds=1, iterations=1)
        # More agents never hurts; fewer agents costs at most a small factor.
        assert times[2.0] <= times[0.5]
        assert times[0.5] < 4 * times[2.0]
        # Everything stays in the logarithmic regime.
        assert times[0.5] < 10 * math.log2(graph.num_vertices)

    def test_initial_placement_is_irrelevant_on_regular_graphs(self, benchmark):
        graph = regular_instance(512, 2)
        times = {}

        def measure():
            times["stationary"] = mean_broadcast_time(
                "visit-exchange", graph, source=0, trials=4
            )
            times["one-per-vertex"] = mean_broadcast_time(
                "visit-exchange", graph, source=0, trials=4, one_agent_per_vertex=True
            )
            return times

        benchmark.pedantic(measure, rounds=1, iterations=1)
        ratio = times["stationary"] / times["one-per-vertex"]
        assert 0.6 < ratio < 1.7

    def test_lazy_walks_cost_roughly_a_factor_of_two(self, benchmark):
        graph = star(512)
        times = {}

        def measure():
            times["simple"] = mean_broadcast_time(
                "visit-exchange", graph, source=1, trials=4
            )
            times["lazy"] = mean_broadcast_time(
                "visit-exchange", graph, source=1, trials=4, lazy=True
            )
            return times

        benchmark.pedantic(measure, rounds=1, iterations=1)
        ratio = times["lazy"] / times["simple"]
        assert 1.0 <= ratio < 4.0
