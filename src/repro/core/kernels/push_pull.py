"""The PUSH-PULL kernel (Section 3 of the paper).

In round zero the source becomes informed.  In each round ``t >= 1`` *every*
vertex (informed or not) samples a uniformly random neighbor and the two
exchange information: if exactly one of the pair was informed before the
round, the other becomes informed in this round.  ``T_ppull`` is the first
round by which all vertices are informed.
"""

from __future__ import annotations

import numpy as np

from .vertex import VertexKernel

__all__ = ["PushPullKernel"]


class PushPullKernel(VertexKernel):
    """Batched PUSH-PULL: every vertex calls a random neighbor each round."""

    name = "push-pull"

    def __init__(self, *, track_all_exchanges: bool = False) -> None:
        #: When True and observers are attached, every sampled
        #: (caller, callee) pair is reported through ``on_edges_used`` — the
        #: "bandwidth" view used by the fairness analysis — instead of only
        #: the informing transmissions.
        self.track_all_exchanges = bool(track_all_exchanges)

    _sparse_needs_frontier = True
    _sparse_needs_uninformed = True

    def _step_sparse(self, k):
        """Both directions from pre-round state: the push direction walks the
        informed frontier, the pull direction walks the uninformed list, and
        every membership test runs against the packed bits *before* this
        round's set — the dense path's "materialize both masks, then update"
        discipline, expressed sparsely.  The two position sets are disjoint,
        so each reads its own slice of the round's per-vertex draw values."""
        start = self._raw_round_start(k, self._sparse_stream)
        n = self.graph.num_vertices
        for row in range(k):
            self._messages[row] += n
            frontier = self._frontier_rows[row]
            uninformed = self._uninformed_rows[row]
            parts = []
            if frontier.size:
                pushed = self._sparse_callees(row, start, frontier)
                pushed = pushed[~self._packed.test_row(row, pushed)]
                if pushed.size:
                    parts.append(pushed)
            if uninformed.size:
                pulled_from = self._sparse_callees(row, start, uninformed)
                got = self._packed.test_row(row, pulled_from)
                if got.any():
                    parts.append(uninformed[got].astype(np.int64))
            if not parts:
                continue
            newly = np.unique(np.concatenate(parts) if len(parts) > 1 else parts[0])
            self._packed.set_row(row, newly)
            self.counts[row] += newly.size
            self._uninformed_rows[row] = uninformed[
                ~self._packed.test_row(row, uninformed)
            ]
            self._sparse_note_informed(row, newly)

    def step(self, k):
        self._begin_round()
        if self.frontier_resolved == "sparse":
            self._step_sparse(k)
            return
        graph = self.graph
        caller_informed = self.informed[:k]
        callees, callee_flat = self._sample_callees(k)
        ok = self._sampler.round_ok(k)
        callee_informed = self._gathered[:k]
        np.take(self._informed_flat, callee_flat, out=callee_informed, mode="clip")

        if self._any_observers:
            self._report_edges(k, callees, caller_informed, callee_informed, ok)

        # Push direction: informed caller informs its callee; pull direction:
        # uninformed caller learns from an informed callee.  Both masks are
        # materialized from the pre-round state before any update is applied
        # (for booleans ``a > b`` is exactly ``a & ~b``); an exchange over an
        # inactive edge does not happen in either direction.
        masked = self._masked[:k]
        push_mask = np.greater(caller_informed, callee_informed, out=self._pull_scratch[:k])
        if ok is not None:
            push_mask &= ok
        np.multiply(callee_flat, push_mask, out=masked)
        pull_mask = np.greater(callee_informed, caller_informed, out=push_mask)
        if ok is not None:
            pull_mask &= ok
        self._informed_flat[masked] = True
        caller_informed |= pull_mask
        self.counts[:k] = caller_informed.sum(axis=1)
        self._messages[:k] += graph.num_vertices

    def _report_edges(self, k, callees, caller_informed, callee_informed, ok):
        """Report exchanges before any update (pre-round informed state);
        exchanges blocked by the round's topology masks are not reported."""
        callers = np.arange(self.graph.num_vertices, dtype=np.int64)
        for row in range(k):
            group = self._observer_for_row(row)
            if not group:
                continue
            if self.track_all_exchanges:
                if ok is None:
                    group.on_edges_used(callers, callees[row])
                else:
                    active = ok[row]
                    group.on_edges_used(callers[active], callees[row][active])
                continue
            push_mask = caller_informed[row] & ~callee_informed[row]
            pull_mask = ~caller_informed[row] & callee_informed[row]
            if ok is not None:
                push_mask = push_mask & ok[row]
                pull_mask = pull_mask & ok[row]
            if np.any(push_mask) or np.any(pull_mask):
                group.on_edges_used(callers[push_mask], callees[row][push_mask])
                group.on_edges_used(callers[pull_mask], callees[row][pull_mask])
