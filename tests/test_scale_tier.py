"""Tests for the million-node kernel tier (sparse frontiers + compiled backend).

The scaling tier has two hard contracts, tested here:

* the **sparse-frontier representation** is *bit-identical* to the dense one
  — same draw streams, same fixed-point arithmetic, same results down to the
  last per-round history entry — for all six protocol kernels, on skewed and
  regular families alike, with the dense fallback forced whenever dynamics
  or observers are attached;
* the **compiled backend** is a distinct stream family (per-trial splitmix64
  scalar loops), so it is held to the same standard the batched backend is
  held to against the sequential engine: per-trial seed determinism, trial
  independence from batch composition, and CI-overlap statistical
  equivalence — plus its own store-key distinctness, since compiled cells
  are different addresses by contract.

Environment-knob behaviour (``REPRO_FRONTIER``, ``REPRO_SPARSE_MIN_N``,
``REPRO_COMPILED``, ``REPRO_COMPILED_MIN_N``; catalogued in
:mod:`repro.experiments.config`) is tested through ``monkeypatch`` so the
suite never leaks state.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, Phase, given, settings, strategies as st

from repro.analysis.statistics import summarize_trials
from repro.core.batch import (
    COMPILED_MIN_VERTICES,
    compiled_auto_enabled,
    compiled_supported,
    compiled_threshold,
    run_batch,
    run_compiled,
    trial_seeds,
)
from repro.core.kernels import get_kernel_class, sparse_threshold
from repro.core.kernels.base import SPARSE_MIN_VERTICES, batch_generator
from repro.core.kernels.compiled import HAVE_NUMBA, RUNNERS
from repro.core.kernels.packed import PackedBits, popcount
from repro.core.observers import InformedCountObserver, ObserverGroup
from repro.experiments.config import GraphCase, ProtocolSpec
from repro.experiments.runner import run_trial_set
from repro.graphs import (
    Graph,
    double_star,
    heavy_binary_tree,
    hypercube,
    random_regular_graph,
    star,
)
from repro.store.orchestrator import resolve_cell
from repro.store.keys import trial_cell_payload

ALL_PROTOCOLS = (
    "push",
    "pull",
    "push-pull",
    "visit-exchange",
    "meet-exchange",
    "hybrid-ppull-visitx",
)


def _family_cases():
    rng = np.random.default_rng(11)
    return [
        ("star", star(60), 0),
        ("double_star", double_star(64), 1),
        ("heavy_tree", heavy_binary_tree(63), 0),
        ("regular", random_regular_graph(64, 6, rng), 3),
        ("hypercube", hypercube(6), 5),
    ]


def _batch_fingerprint(batch):
    """Everything a batch result asserts bit-identity over."""
    return (
        batch.broadcast_times.tolist(),
        batch.completed.tolist(),
        batch.rounds_executed.tolist(),
        batch.messages_sent.tolist(),
        batch.vertex_histories,
        batch.agent_histories,
    )


class TestSparseBitIdentity:
    """frontier="sparse" must reproduce frontier="dense" bit for bit."""

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_identical_across_families(self, protocol):
        seeds = trial_seeds(9, "sparse-identity", protocol, trials=6)
        # Visit-exchange has no sparse tier (its work is agent-proportional
        # already); a forced "sparse" records the dense resolution there.
        expected = "dense" if protocol == "visit-exchange" else "sparse"
        for name, graph, source in _family_cases():
            dense = run_batch(
                protocol, graph, source, seeds=seeds,
                record_history=True, frontier="dense",
            )
            sparse = run_batch(
                protocol, graph, source, seeds=seeds,
                record_history=True, frontier="sparse",
            )
            assert sparse.frontier_resolved == expected
            assert dense.frontier_resolved == "dense"
            assert _batch_fingerprint(dense) == _batch_fingerprint(sparse), (
                f"{protocol} on {name}: sparse diverged from dense"
            )

    def test_identity_survives_budget_truncation(self):
        graph = star(80)
        seeds = trial_seeds(2, "budget", trials=4)
        dense = run_batch("push", graph, seeds=seeds, max_rounds=30, frontier="dense")
        sparse = run_batch("push", graph, seeds=seeds, max_rounds=30, frontier="sparse")
        assert _batch_fingerprint(dense) == _batch_fingerprint(sparse)
        assert dense.completion_rate < 1.0  # the budget actually truncated

    def test_auto_threshold_engages_sparse(self, monkeypatch):
        graph = double_star(64)
        seeds = trial_seeds(5, "auto", trials=3)
        monkeypatch.setenv("REPRO_SPARSE_MIN_N", "32")
        assert sparse_threshold() == 32
        engaged = run_batch("push", graph, seeds=seeds)
        assert engaged.frontier_resolved == "sparse"
        monkeypatch.setenv("REPRO_SPARSE_MIN_N", "1000000")
        assert run_batch("push", graph, seeds=seeds).frontier_resolved == "dense"
        monkeypatch.delenv("REPRO_SPARSE_MIN_N")
        assert sparse_threshold() == SPARSE_MIN_VERTICES

    def test_frontier_env_overrides_auto_but_not_explicit(self, monkeypatch):
        graph = double_star(64)
        seeds = trial_seeds(5, "env", trials=3)
        monkeypatch.setenv("REPRO_FRONTIER", "sparse")
        assert run_batch("push", graph, seeds=seeds).frontier_resolved == "sparse"
        # An explicit driver request beats the environment.
        assert (
            run_batch("push", graph, seeds=seeds, frontier="dense").frontier_resolved
            == "dense"
        )

    def test_dynamics_forces_dense_fallback(self):
        graph = double_star(64)
        seeds = trial_seeds(5, "dyn", trials=3)
        batch = run_batch(
            "push", graph, seeds=seeds, frontier="sparse",
            dynamics={"kind": "bernoulli-edges", "rate": 0.1, "seed": 3},
        )
        assert batch.frontier_resolved == "dense"

    def test_observers_force_dense_fallback(self):
        graph = double_star(64)
        seeds = trial_seeds(5, "obs", trials=3)
        observers = [ObserverGroup([InformedCountObserver()]) for _ in seeds]
        batch = run_batch(
            "push", graph, seeds=seeds, frontier="sparse", observers=observers
        )
        assert batch.frontier_resolved == "dense"

    def test_rejects_unknown_frontier_mode(self):
        with pytest.raises(ValueError, match="frontier"):
            run_batch("push", star(10), seeds=[1], frontier="moist")


# Hypothesis graphs: a random spanning tree plus extra random edges, so the
# instance is connected but otherwise unstructured — degrees are skewed,
# which is exactly the regime where a sparse/dense divergence would show.
@st.composite
def connected_graphs(draw):
    n = draw(st.integers(min_value=4, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    parents = [int(rng.integers(v)) for v in range(1, n)]
    edges = {(parent, child) for child, parent in enumerate(parents, start=1)}
    for _ in range(int(rng.integers(0, n))):
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u != v:
            edges.add((min(u, v), max(u, v)))
    source = draw(st.integers(min_value=0, max_value=n - 1))
    return Graph(n, sorted(edges), name=f"hyp(n={n})"), source


class TestSparseIdentityProperty:
    @settings(
        max_examples=20,
        deadline=None,
        phases=(Phase.explicit, Phase.reuse, Phase.generate),
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        case=connected_graphs(),
        protocol=st.sampled_from(ALL_PROTOCOLS),
        base_seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_sparse_equals_dense_on_random_graphs(self, case, protocol, base_seed):
        graph, source = case
        seeds = trial_seeds(base_seed, "hyp", trials=3)
        dense = run_batch(
            protocol, graph, source, seeds=seeds,
            record_history=True, frontier="dense",
        )
        sparse = run_batch(
            protocol, graph, source, seeds=seeds,
            record_history=True, frontier="sparse",
        )
        assert _batch_fingerprint(dense) == _batch_fingerprint(sparse)


class TestPackedBits:
    def test_roundtrip_on_non_word_multiple(self):
        bits = PackedBits(2, 70)  # 70 is deliberately not a multiple of 64
        ids = np.array([0, 63, 64, 69, 69], dtype=np.int64)  # duplicates fine
        bits.set_row(0, ids)
        assert bits.count_row(0) == 4
        assert bits.count_row(1) == 0
        assert bits.counts().tolist() == [4, 0]
        mask = bits.test_row(0, np.arange(70))
        assert sorted(np.flatnonzero(mask).tolist()) == [0, 63, 64, 69]
        row = bits.to_bool_row(0)
        assert row.shape == (70,)
        assert np.array_equal(row, mask)

    def test_rows_are_independent(self):
        bits = PackedBits(3, 130)
        bits.set_row(1, np.array([129]))
        assert bits.counts().tolist() == [0, 1, 0]
        assert bool(bits.test_row(1, np.array([129]))[0])
        assert not bits.test_row(0, np.array([129]))[0]

    def test_popcount_matches_python(self):
        rng = np.random.default_rng(0)
        words = rng.integers(0, 2**63, size=100, dtype=np.uint64)
        expected = [bin(int(w)).count("1") for w in words]
        assert popcount(words).astype(int).tolist() == expected


class TestRowCompaction:
    def test_row_of_tracks_swaps(self):
        graph = double_star(32)
        gens = [batch_generator(seed) for seed in range(6)]
        kernel = get_kernel_class("push")()
        kernel.initialize(graph, 0, gens)
        rng = np.random.default_rng(4)
        for _ in range(20):
            i, j = int(rng.integers(6)), int(rng.integers(6))
            kernel.swap_rows(i, j)
            for trial in range(6):
                # The inverse permutation must agree with a linear scan.
                scan = int(np.flatnonzero(kernel.trial_ids == trial)[0])
                assert kernel._row_of(trial) == scan


class TestCompiledBackend:
    @pytest.fixture(scope="class")
    def small_graph(self):
        return random_regular_graph(64, 6, np.random.default_rng(5))

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_deterministic_and_trial_independent(self, protocol, small_graph):
        seeds = trial_seeds(21, "compiled-det", protocol, trials=8)
        first = run_compiled(protocol, small_graph, seeds=seeds, record_history=True)
        second = run_compiled(protocol, small_graph, seeds=seeds, record_history=True)
        assert _batch_fingerprint(first) == _batch_fingerprint(second)
        # A trial's outcome must not depend on its batch: rerunning a subset
        # of the seeds reproduces exactly those trials' results.
        subset = run_compiled(protocol, small_graph, seeds=seeds[2:5])
        assert subset.broadcast_times.tolist() == first.broadcast_times[2:5].tolist()
        assert subset.messages_sent.tolist() == first.messages_sent[2:5].tolist()

    @pytest.mark.parametrize("protocol", ["push", "visit-exchange"])
    def test_ci_overlap_with_batched(self, protocol, small_graph):
        case = GraphCase(graph=small_graph, source=0, size_parameter=64)
        spec = ProtocolSpec(protocol)
        kwargs = dict(trials=40, base_seed=42, experiment_id="compiled-equivalence")
        batched = summarize_trials(run_trial_set(spec, case, backend="batched", **kwargs))
        compiled = summarize_trials(run_trial_set(spec, case, backend="compiled", **kwargs))
        assert batched is not None and compiled is not None
        overlap = (
            batched.ci_low <= compiled.ci_high and compiled.ci_low <= batched.ci_high
        )
        assert overlap, (
            f"{protocol}: batched CI [{batched.ci_low:.2f}, {batched.ci_high:.2f}] "
            f"does not overlap compiled CI "
            f"[{compiled.ci_low:.2f}, {compiled.ci_high:.2f}]"
        )

    def test_rejects_instrumentation(self, small_graph):
        seeds = trial_seeds(0, "reject", trials=2)
        with pytest.raises(ValueError, match="dynamics"):
            run_compiled(
                "push", small_graph, seeds=seeds,
                dynamics={"kind": "bernoulli-edges", "rate": 0.1, "seed": 1},
            )
        with pytest.raises(ValueError, match="observer tracking"):
            run_compiled("push", small_graph, seeds=seeds, track_edge_traversals=True)
        with pytest.raises(ValueError, match="warp_factor"):
            run_compiled("push", small_graph, seeds=seeds, warp_factor=9)

    def test_supported_matrix(self):
        assert compiled_supported("push")
        assert compiled_supported("meet-exchange", {"lazy": True})
        assert not compiled_supported("push", dynamics={"kind": "static"})
        assert not compiled_supported("push", {"track_all_exchanges": True})
        assert not compiled_supported("gossip-9000")

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    def test_jitted_matches_pure_python(self, small_graph):
        # Same runner, jitted vs interpreted on identical inputs: the results
        # must be bit-identical, which pins down any numba/numpy
        # integer-semantics divergence (shift widths, overflow wrap).
        from repro.core.kernels.compiled import trial_state

        indptr, indices = small_graph.indptr, small_graph.indices
        for protocol in ("push", "visit-exchange"):
            runner = RUNNERS[protocol]
            assert hasattr(runner, "py_func"), "runner is not jitted"
            for seed in trial_seeds(3, "jit", protocol, trials=3):
                outputs = []
                for flavor in (runner, runner.py_func):
                    vhist = np.zeros(501, dtype=np.int64)
                    if protocol == "push":
                        args = (indptr, indices, 0, 500, trial_state(seed), vhist)
                    else:
                        ahist = np.zeros(501, dtype=np.int64)
                        args = (
                            indptr, indices, 0, 500, trial_state(seed),
                            small_graph.slot_sources(), 64, False, False,
                            vhist, ahist,
                        )
                    with np.errstate(over="ignore"):
                        result = flavor(*args)
                    outputs.append((tuple(int(x) for x in result), vhist.tolist()))
                assert outputs[0] == outputs[1], f"{protocol}: jit != py_func"


class TestCompiledDispatch:
    @pytest.fixture(scope="class")
    def case(self):
        graph = random_regular_graph(64, 6, np.random.default_rng(5))
        return GraphCase(graph=graph, source=0, size_parameter=64)

    def test_forced_compiled_is_a_distinct_store_address(self, case):
        spec = ProtocolSpec("push")
        kwargs = dict(trials=4, base_seed=7, experiment_id="dispatch")
        plans = {
            backend: resolve_cell(spec, case, backend=backend, **kwargs)
            for backend in ("compiled", "batched", "sequential")
        }
        assert plans["compiled"].backend == "compiled"
        keys = {backend: plan.key for backend, plan in plans.items()}
        assert len(set(keys.values())) == 3, "backends must have distinct cell keys"
        for backend, plan in plans.items():
            assert plan.payload["backend"] == backend

    def test_forced_compiled_rejects_unsupported_cells(self, case):
        spec = ProtocolSpec("push", kwargs={"track_all_exchanges": True})
        with pytest.raises(ValueError, match="compiled"):
            resolve_cell(spec, case, trials=2, base_seed=0, backend="compiled")
        with pytest.raises(ValueError, match="compiled"):
            resolve_cell(
                ProtocolSpec("push"), case, trials=2, base_seed=0,
                backend="compiled",
                dynamics={"kind": "bernoulli-edges", "rate": 0.1, "seed": 1},
            )

    def test_auto_respects_threshold_and_kill_switch(self, case, monkeypatch):
        spec = ProtocolSpec("push")
        kwargs = dict(trials=2, base_seed=0, backend="auto")
        # Small graph: auto never picks compiled below the threshold.
        monkeypatch.delenv("REPRO_COMPILED_MIN_N", raising=False)
        assert compiled_threshold() == COMPILED_MIN_VERTICES
        assert resolve_cell(spec, case, **kwargs).backend != "compiled"
        monkeypatch.setenv("REPRO_COMPILED_MIN_N", "32")
        if HAVE_NUMBA:
            assert resolve_cell(spec, case, **kwargs).backend == "compiled"
            monkeypatch.setenv("REPRO_COMPILED", "0")
            assert not compiled_auto_enabled()
            assert resolve_cell(spec, case, **kwargs).backend != "compiled"
        else:
            # Without numba the pure-Python fallback must never be auto-picked.
            assert not compiled_auto_enabled()
            assert resolve_cell(spec, case, **kwargs).backend != "compiled"

    def test_trial_set_records_compiled_backend(self, case):
        trials = run_trial_set(
            ProtocolSpec("push"), case, trials=3, base_seed=1, backend="compiled"
        )
        assert trials.backend == "compiled"
        assert trials.completion_rate == 1.0

    def test_payload_rejects_unresolved_backend(self, case):
        with pytest.raises(ValueError, match="backend"):
            trial_cell_payload(
                graph=case.graph,
                source=0,
                protocol_name="push",
                seeds=[1, 2],
                backend="auto",
            )
