"""Command-line interface package (see :mod:`repro.cli.main`)."""

from .main import build_parser, main

__all__ = ["main", "build_parser"]
