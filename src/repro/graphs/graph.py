"""Static graph representation used by every simulator in this package.

The protocols simulated here (push, push-pull, visit-exchange, meet-exchange)
sample uniformly random neighbors of vertices millions of times per run.  A
compressed-sparse-row (CSR) adjacency layout backed by numpy arrays makes that
sampling a constant-time, vectorizable operation, which is what keeps the
experiment sweeps in ``repro.experiments`` tractable on a laptop.

The class interoperates with :mod:`networkx` (conversion in both directions)
but does not depend on it for the hot simulation path.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Graph", "GraphError"]


class GraphError(ValueError):
    """Raised when a graph cannot be constructed or is structurally invalid."""


class Graph:
    """An undirected, simple graph stored in CSR (adjacency array) form.

    Vertices are the integers ``0 .. n-1``.  Parallel edges and self loops are
    rejected at construction time, because none of the paper's protocols are
    defined on multigraphs.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``n``.
    edges:
        Iterable of ``(u, v)`` pairs with ``0 <= u, v < n`` and ``u != v``.
        Each undirected edge should appear once; duplicates are rejected.
    """

    __slots__ = (
        "_n",
        "_m",
        "_indptr",
        "_indices",
        "_degrees",
        "_name",
        "_stationary",
        "_slot_sources",
        "_slot_edge_ids",
    )

    #: Process-wide count of ``Graph`` constructions (class attribute; with
    #: ``__slots__`` it cannot be shadowed per-instance).  Tests snapshot it
    #: around warm store sweeps to assert the manifest-trusted path performs
    #: *zero* graph constructions — a superset of builder calls, so the
    #: assertion also catches stray ad-hoc construction.
    construction_count = 0

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[Tuple[int, int]],
        *,
        name: str = "graph",
    ) -> None:
        if num_vertices <= 0:
            raise GraphError("a graph needs at least one vertex")
        n = int(num_vertices)

        # Builders pass a ``(m, 2)`` integer ndarray; the per-edge Python
        # tuple path is kept for hand-written edge lists.
        if isinstance(edges, np.ndarray):
            if edges.size == 0:
                u_arr = v_arr = np.empty(0, dtype=np.int64)
            else:
                if edges.ndim != 2 or edges.shape[1] != 2:
                    raise GraphError("edge array must have shape (m, 2)")
                if not np.issubdtype(edges.dtype, np.integer):
                    raise GraphError("edge array must be integer-typed")
                pairs = np.ascontiguousarray(edges, dtype=np.int64)
                u_arr, v_arr = pairs[:, 0].copy(), pairs[:, 1].copy()
        else:
            edge_list = [(int(u), int(v)) for u, v in edges]
            if edge_list:
                pairs = np.asarray(edge_list, dtype=np.int64)
                u_arr, v_arr = pairs[:, 0], pairs[:, 1]
            else:
                u_arr = v_arr = np.empty(0, dtype=np.int64)

        out_of_range = (u_arr < 0) | (u_arr >= n) | (v_arr < 0) | (v_arr >= n)
        if np.any(out_of_range):
            i = int(np.argmax(out_of_range))
            raise GraphError(f"edge ({u_arr[i]}, {v_arr[i]}) out of range for n={n}")
        loops = u_arr == v_arr
        if np.any(loops):
            i = int(np.argmax(loops))
            raise GraphError(f"self loop ({u_arr[i]}, {v_arr[i]}) is not allowed")

        lo = np.minimum(u_arr, v_arr)
        hi = np.maximum(u_arr, v_arr)
        key = lo * n + hi
        if key.size and np.any(np.diff(np.sort(key)) == 0):
            raise GraphError("duplicate edges are not allowed")

        # Both directions of every undirected edge, CSR-sorted so that each
        # row of ``indices`` is ascending (``has_edge`` binary-searches it).
        src = np.concatenate([lo, hi])
        dst = np.concatenate([hi, lo])
        order = np.lexsort((dst, src))

        degrees = np.bincount(src, minlength=n).astype(np.int64, copy=False)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])

        Graph.construction_count += 1
        self._n = n
        self._m = int(lo.size)
        self._indptr = indptr
        self._indices = dst[order]
        self._degrees = degrees
        self._name = str(name)
        self._stationary: Optional[np.ndarray] = None
        self._slot_sources: Optional[np.ndarray] = None
        self._slot_edge_ids: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Human readable name of the graph family instance."""
        return self._name

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|``."""
        return self._m

    @property
    def indptr(self) -> np.ndarray:
        """CSR row-pointer array of length ``n + 1`` (read-only view)."""
        view = self._indptr.view()
        view.flags.writeable = False
        return view

    @property
    def indices(self) -> np.ndarray:
        """CSR column-index array of length ``2m`` (read-only view)."""
        view = self._indices.view()
        view.flags.writeable = False
        return view

    @property
    def degrees(self) -> np.ndarray:
        """Array of vertex degrees (read-only view)."""
        view = self._degrees.view()
        view.flags.writeable = False
        return view

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Graph(name={self._name!r}, n={self._n}, m={self._m})"

    # ------------------------------------------------------------------
    # vertex-level queries
    # ------------------------------------------------------------------
    def degree(self, u: int) -> int:
        """Return the degree of vertex ``u``."""
        return int(self._degrees[u])

    def neighbors(self, u: int) -> np.ndarray:
        """Return the neighbors of ``u`` as a read-only numpy array."""
        view = self._indices[self._indptr[u] : self._indptr[u + 1]].view()
        view.flags.writeable = False
        return view

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` if ``{u, v}`` is an edge of the graph.

        Each CSR row is sorted ascending, so membership is a binary search
        rather than a linear scan.
        """
        if u == v:
            return False
        u, v = int(u), int(v)
        start, stop = self._indptr[u], self._indptr[u + 1]
        pos = start + np.searchsorted(self._indices[start:stop], v)
        return pos < stop and int(self._indices[pos]) == v

    def vertices(self) -> range:
        """Return an iterable over all vertex ids."""
        return range(self._n)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Yield each undirected edge once as a pair ``(u, v)`` with ``u < v``."""
        for u in range(self._n):
            for v in self.neighbors(u):
                if u < v:
                    yield (u, int(v))

    # ------------------------------------------------------------------
    # random sampling (hot path used by the protocols)
    # ------------------------------------------------------------------
    def sample_neighbor(self, u: int, rng: np.random.Generator) -> int:
        """Sample a uniformly random neighbor of ``u``."""
        start = self._indptr[u]
        deg = self._degrees[u]
        if deg == 0:
            raise GraphError(f"vertex {u} is isolated and has no neighbors")
        return int(self._indices[start + rng.integers(deg)])

    def sample_neighbors(
        self, vertices: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample one uniformly random neighbor for each vertex in ``vertices``.

        This is the vectorized version of :meth:`sample_neighbor` used by the
        agent subsystem, where all agents step simultaneously each round.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        degs = self._degrees[vertices]
        if np.any(degs == 0):
            raise GraphError("cannot sample a neighbor of an isolated vertex")
        offsets = rng.integers(0, degs)
        return self._indices[self._indptr[vertices] + offsets]

    def stationary_distribution(self) -> np.ndarray:
        """Return the stationary distribution of a simple random walk.

        For an undirected graph this is ``deg(v) / (2 |E|)`` (Section 3 of the
        paper uses exactly this distribution to place agents initially).  The
        array is computed once and cached: agent placement re-requests it for
        every trial of a sweep.
        """
        if self._stationary is None:
            self._stationary = self._degrees / float(2 * self._m)
            self._stationary.flags.writeable = False
        return self._stationary

    def slot_sources(self) -> np.ndarray:
        """Source vertex of every directed CSR slot (length ``2m``), cached.

        ``slot_sources()[i]`` is the vertex whose adjacency row contains slot
        ``i``.  Used by stationary agent placement (a uniform slot's source is
        stationary-distributed) and by the dynamic-topology layer; computed
        once per graph because both re-request it for every run of a sweep.
        """
        if self._slot_sources is None:
            self._slot_sources = np.repeat(
                np.arange(self._n, dtype=np.int64), self._degrees
            )
            self._slot_sources.flags.writeable = False
        return self._slot_sources

    def slot_edge_ids(self) -> np.ndarray:
        """Canonical undirected-edge index of every directed CSR slot, cached.

        Edge indices follow :meth:`edges` iteration order (sorted ``(u, v)``
        pairs with ``u < v``), so a per-edge mask indexed this way expands to
        a per-slot mask with one gather — how the dynamic-topology layer maps
        undirected edge states onto the samplers' flat offsets.
        """
        if self._slot_edge_ids is None:
            src = self.slot_sources()
            dst = self._indices
            keys = np.minimum(src, dst) * self._n + np.maximum(src, dst)
            self._slot_edge_ids = np.searchsorted(np.unique(keys), keys)
            self._slot_edge_ids.flags.writeable = False
        return self._slot_edge_ids

    # ------------------------------------------------------------------
    # structural predicates
    # ------------------------------------------------------------------
    def is_regular(self) -> bool:
        """Return ``True`` if all vertices have the same degree."""
        return bool(np.all(self._degrees == self._degrees[0]))

    def regularity_degree(self) -> int:
        """Return ``d`` if the graph is d-regular, raise otherwise."""
        if not self.is_regular():
            raise GraphError("graph is not regular")
        return int(self._degrees[0])

    def _frontier_neighbors(self, frontier: np.ndarray) -> np.ndarray:
        """Concatenated neighbor lists of ``frontier``, in frontier order.

        This is the kernel of the frontier-array BFS: one gather per level
        instead of a Python loop over vertices and neighbors.
        """
        counts = self._degrees[frontier]
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        starts = self._indptr[frontier]
        # positions[i] = starts[group(i)] + offset-within-group(i)
        boundaries = np.repeat(starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
        return self._indices[boundaries + np.arange(total)]

    def is_connected(self) -> bool:
        """Return ``True`` if the graph is connected (BFS from vertex 0)."""
        seen = np.zeros(self._n, dtype=bool)
        seen[0] = True
        reached = 1
        frontier = np.array([0], dtype=np.int64)
        while frontier.size:
            neighbors = self._frontier_neighbors(frontier)
            fresh = neighbors[~seen[neighbors]]
            if not fresh.size:
                break
            frontier = np.unique(fresh)
            seen[frontier] = True
            reached += int(frontier.size)
        return reached == self._n

    def is_bipartite(self) -> bool:
        """Return ``True`` if the graph is bipartite.

        Colors every component by BFS-level parity, then verifies in one
        vectorized pass that no edge connects two vertices of equal color.
        """
        color = np.full(self._n, -1, dtype=np.int8)
        for start in range(self._n):
            if color[start] != -1:
                continue
            color[start] = 0
            frontier = np.array([start], dtype=np.int64)
            parity = 0
            while frontier.size:
                parity ^= 1
                neighbors = self._frontier_neighbors(frontier)
                fresh = neighbors[color[neighbors] == -1]
                if not fresh.size:
                    break
                frontier = np.unique(fresh)
                color[frontier] = parity
        src = np.repeat(np.arange(self._n, dtype=np.int64), self._degrees)
        return not bool(np.any(color[src] == color[self._indices]))

    def bfs_order(self, source: int) -> List[int]:
        """Return vertices reachable from ``source`` in BFS order."""
        seen = np.zeros(self._n, dtype=bool)
        seen[source] = True
        order = [int(source)]
        frontier = np.array([int(source)], dtype=np.int64)
        while frontier.size:
            neighbors = self._frontier_neighbors(frontier)
            fresh = neighbors[~seen[neighbors]]
            if not fresh.size:
                break
            # Deduplicate keeping the first occurrence so the order matches a
            # per-vertex scan of the (sorted) adjacency rows.
            _, first = np.unique(fresh, return_index=True)
            frontier = fresh[np.sort(first)]
            seen[frontier] = True
            order.extend(frontier.tolist())
        return order

    def distances_from(self, source: int) -> np.ndarray:
        """Return BFS distances from ``source`` (-1 for unreachable vertices)."""
        dist = np.full(self._n, -1, dtype=np.int64)
        dist[source] = 0
        frontier = np.array([int(source)], dtype=np.int64)
        level = 0
        while frontier.size:
            level += 1
            neighbors = self._frontier_neighbors(frontier)
            fresh = neighbors[dist[neighbors] == -1]
            if not fresh.size:
                break
            frontier = np.unique(fresh)
            dist[frontier] = level
        return dist

    def diameter(self) -> int:
        """Return the exact diameter (expensive: one BFS per vertex)."""
        if not self.is_connected():
            raise GraphError("diameter is undefined for disconnected graphs")
        best = 0
        for u in range(self._n):
            best = max(best, int(self.distances_from(u).max()))
        return best

    # ------------------------------------------------------------------
    # constructors / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, num_vertices: int, edges: Sequence[Tuple[int, int]], *, name: str = "graph"
    ) -> "Graph":
        """Build a graph from an explicit edge list."""
        return cls(num_vertices, edges, name=name)

    @classmethod
    def from_adjacency(
        cls, adjacency: Sequence[Sequence[int]], *, name: str = "graph"
    ) -> "Graph":
        """Build a graph from an adjacency-list representation."""
        edges = []
        for u, nbrs in enumerate(adjacency):
            for v in nbrs:
                if u < v:
                    edges.append((u, int(v)))
        return cls(len(adjacency), edges, name=name)

    @classmethod
    def from_networkx(cls, nx_graph, *, name: str = None) -> "Graph":
        """Convert a :class:`networkx.Graph`; node labels are relabelled 0..n-1."""
        nodes = list(nx_graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in nx_graph.edges()]
        return cls(len(nodes), edges, name=name or "networkx")

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (lazy import of networkx)."""
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(range(self._n))
        nx_graph.add_edges_from(self.edges())
        return nx_graph

    def relabeled(self, name: str) -> "Graph":
        """Return a shallow copy of the graph carrying a different name."""
        clone = Graph.__new__(Graph)
        clone._n = self._n
        clone._m = self._m
        clone._indptr = self._indptr
        clone._indices = self._indices
        clone._degrees = self._degrees
        clone._name = str(name)
        clone._stationary = self._stationary
        clone._slot_sources = self._slot_sources
        clone._slot_edge_ids = self._slot_edge_ids
        return clone
