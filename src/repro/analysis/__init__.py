"""Analysis layer: statistics, growth fitting, comparisons, fairness, congestion."""

from .comparison import (
    ProtocolComparison,
    compare_trials,
    separation_exponent,
    winner_table,
)
from .congestion import CongestionSummary, summarize_coupled_runs
from .fairness import (
    FairnessReport,
    edge_usage_from_walks,
    expected_uniform_share,
    fairness_from_counts,
    gini_coefficient,
)
from .scaling import (
    GrowthFit,
    best_growth_model,
    fit_growth,
    power_law_exponent,
    ratio_trend,
)
from .statistics import Summary, bootstrap_ci, summarize, summarize_trials
from .tables import format_float, format_markdown_table, format_table, rows_from_dicts

__all__ = [
    "Summary",
    "summarize",
    "summarize_trials",
    "bootstrap_ci",
    "GrowthFit",
    "fit_growth",
    "best_growth_model",
    "power_law_exponent",
    "ratio_trend",
    "ProtocolComparison",
    "compare_trials",
    "separation_exponent",
    "winner_table",
    "FairnessReport",
    "fairness_from_counts",
    "edge_usage_from_walks",
    "gini_coefficient",
    "expected_uniform_share",
    "CongestionSummary",
    "summarize_coupled_runs",
    "format_table",
    "format_markdown_table",
    "format_float",
    "rows_from_dicts",
]
