"""Tests for the dynamic-topology layer (repro.graphs.dynamic) end to end.

Covers the schedule classes themselves (purity, spec round-trips, the CLI
string form), the kernel-level failure semantics shared by all six protocols
(an interaction over an inactive edge or with an inactive vertex does not
happen), the bit-for-bit static-schedule guarantee, and observer parity: the
``on_edges_used`` accounting must report only mask-active edges and must be
identical between the batched backend and the sequential adapter when both
consume the same per-trial generators.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import simulate
from repro.core.batch import BATCHED_PROTOCOLS, run_batch, trial_seeds
from repro.core.observers import EdgeUsageObserver, ObserverGroup
from repro.graphs import double_star, random_regular_graph
from repro.graphs.dynamic import (
    BernoulliEdgeFailures,
    ComposedSchedule,
    DynamicsRuntime,
    MarkovEdgeChurn,
    NodeCrashes,
    PeriodicLinkFlapping,
    StaticSchedule,
    TopologySchedule,
    edge_index_of,
    resolve_dynamics,
)
from repro.graphs.graph import GraphError

ALL_PROTOCOLS = sorted(BATCHED_PROTOCOLS)


@pytest.fixture(scope="module")
def regular():
    return random_regular_graph(48, 6, np.random.default_rng(7))


# ---------------------------------------------------------------------------
# Schedule semantics
# ---------------------------------------------------------------------------
class TestSchedules:
    def test_static_default_is_all_active(self, regular):
        activity = StaticSchedule().activity(regular, 1)
        assert activity.is_all_active

    def test_static_down_edges_resolved_per_graph(self, regular):
        u = 0
        v = int(regular.neighbors(0)[0])
        schedule = StaticSchedule(down_edges=[(u, v)])
        activity = schedule.activity(regular, 3)
        index = int(edge_index_of(regular, [(u, v)])[0])
        assert not activity.edge_state[index]
        assert activity.edge_state.sum() == regular.num_edges - 1

    def test_bernoulli_masks_are_pure_per_round(self, regular):
        schedule = BernoulliEdgeFailures(0.3, seed=4)
        a = schedule.activity(regular, 5).edge_state
        # Different round: different mask; same round re-queried: identical.
        b = schedule.activity(regular, 6).edge_state
        c = schedule.activity(regular, 5).edge_state
        assert not np.array_equal(a, b)
        assert np.array_equal(a, c)

    def test_bernoulli_rate_zero_is_all_active(self, regular):
        assert BernoulliEdgeFailures(0.0).activity(regular, 1).is_all_active

    def test_node_crash_window(self, regular):
        schedule = NodeCrashes(crash_round=5, vertices=[3], duration=4)
        assert schedule.activity(regular, 4).is_all_active
        for r in range(5, 9):
            state = schedule.activity(regular, r).vertex_state
            assert not state[3] and state.sum() == regular.num_vertices - 1
        assert schedule.activity(regular, 9).is_all_active

    def test_permanent_crash_never_recovers(self, regular):
        schedule = NodeCrashes(crash_round=2, vertices=[1])
        assert not schedule.activity(regular, 500).vertex_state[1]

    def test_markov_churn_is_replayable(self, regular):
        schedule = MarkovEdgeChurn(fail_rate=0.2, recover_rate=0.5, seed=9)
        forward = [schedule.activity(regular, r).edge_state.copy() for r in range(1, 8)]
        # Restarting from round 1 (the sequential adapter's access pattern)
        # must reproduce the exact same states.
        replay = [schedule.activity(regular, r).edge_state.copy() for r in range(1, 8)]
        for a, b in zip(forward, replay):
            assert np.array_equal(a, b)

    def test_flapping_is_periodic(self, regular):
        schedule = PeriodicLinkFlapping(
            period=4, down_rounds=2, edge_fraction=0.5, seed=3
        )
        for r in range(1, 5):
            a = schedule.activity(regular, r).edge_state
            b = schedule.activity(regular, r + 4).edge_state
            assert np.array_equal(a, b)
        # Some round must actually take edges down.
        downs = [schedule.activity(regular, r).edge_state.sum() for r in range(1, 5)]
        assert min(downs) < regular.num_edges

    def test_composed_schedule_intersects(self, regular):
        v = 5
        composed = ComposedSchedule(
            [
                NodeCrashes(crash_round=1, vertices=[v]),
                {"kind": "bernoulli-edges", "rate": 0.4, "seed": 2},
            ]
        )
        activity = composed.activity(regular, 2)
        assert not activity.vertex_state[v]
        assert activity.edge_state is not None

    def test_edge_index_of_rejects_non_edges(self, regular):
        missing = None
        neighbors = set(regular.neighbors(0).tolist())
        for v in range(1, regular.num_vertices):
            if v not in neighbors:
                missing = v
                break
        with pytest.raises(GraphError):
            edge_index_of(regular, [(0, missing)])

    def test_validation(self):
        with pytest.raises(ValueError):
            BernoulliEdgeFailures(1.5)
        with pytest.raises(ValueError):
            NodeCrashes(crash_round=0)
        with pytest.raises(ValueError):
            PeriodicLinkFlapping(period=4, down_rounds=5)
        with pytest.raises(ValueError):
            MarkovEdgeChurn(fail_rate=0.1, recover_rate=0.0)


class TestSpecResolution:
    def test_none_and_instances_pass_through(self):
        assert resolve_dynamics(None) is None
        schedule = BernoulliEdgeFailures(0.1)
        assert resolve_dynamics(schedule) is schedule

    @pytest.mark.parametrize(
        "make_schedule",
        [
            lambda g: StaticSchedule(down_edges=[(0, int(g.neighbors(0)[0]))]),
            lambda g: BernoulliEdgeFailures(0.25, seed=3),
            lambda g: PeriodicLinkFlapping(
                period=6, down_rounds=2, edge_fraction=0.3, seed=1
            ),
            lambda g: NodeCrashes(crash_round=4, fraction=0.2, seed=2, duration=10),
            lambda g: MarkovEdgeChurn(fail_rate=0.1, recover_rate=0.6, seed=5),
        ],
    )
    def test_spec_dict_round_trips(self, make_schedule, regular):
        schedule = make_schedule(regular)
        rebuilt = resolve_dynamics(schedule.spec())
        assert type(rebuilt) is type(schedule)
        for r in (1, 3, 9):
            a, b = schedule.activity(regular, r), rebuilt.activity(regular, r)
            assert (a.edge_state is None) == (b.edge_state is None)
            if a.edge_state is not None:
                assert np.array_equal(a.edge_state, b.edge_state)
            if a.vertex_state is not None:
                assert np.array_equal(a.vertex_state, b.vertex_state)

    def test_string_form_parses(self):
        schedule = resolve_dynamics("bernoulli-edges:rate=0.2,seed=7")
        assert isinstance(schedule, BernoulliEdgeFailures)
        assert schedule.rate == 0.2 and schedule.seed == 7
        flapping = resolve_dynamics(
            "flapping:period=8,down_rounds=3,edge_fraction=0.5,random_phase=false"
        )
        assert isinstance(flapping, PeriodicLinkFlapping)
        assert flapping.random_phase is False

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown dynamics kind"):
            resolve_dynamics({"kind": "meteor-strike"})
        with pytest.raises(ValueError, match="key=value"):
            resolve_dynamics("bernoulli-edges:0.2")

    def test_spec_level_dynamics_wins_over_sweep_default(self, regular):
        """A spec that pins its own schedule keeps it when a sweep-wide
        default is passed — labeled failure-rate cells must never silently
        run a different rate than their label claims.  Specs without one
        follow the default."""
        from repro.experiments.config import GraphCase, ProtocolSpec
        from repro.experiments.runner import run_trial_set

        case = GraphCase(graph=regular, source=0, size_parameter=48)
        # Permanent crash of a non-source vertex: runs under it cannot finish.
        sweep_default = NodeCrashes(crash_round=1, vertices=[regular.num_vertices - 1])
        baseline = run_trial_set(ProtocolSpec("push"), case, trials=3, base_seed=0)
        assert baseline.completion_rate == 1.0

        # No spec-level schedule -> the sweep default applies (incomplete).
        defaulted = run_trial_set(
            ProtocolSpec("push"),
            case,
            trials=3,
            base_seed=0,
            max_rounds=300,
            dynamics=sweep_default,
        )
        assert defaulted.completion_rate == 0.0

        # A pinned failure-free schedule overrides the sweep default: the
        # cell runs (and completes) exactly like the plain baseline.
        pinned = run_trial_set(
            ProtocolSpec(
                "push",
                kwargs={"dynamics": {"kind": "bernoulli-edges", "rate": 0.0, "seed": 1}},
            ),
            case,
            trials=3,
            base_seed=0,
            dynamics=sweep_default,
        )
        assert pinned.broadcast_times() == baseline.broadcast_times()

    def test_runtime_validates_mask_lengths(self, regular):
        class Bad(TopologySchedule):
            def activity(self, graph, round_index):
                from repro.graphs.dynamic import RoundActivity

                return RoundActivity(edge_state=np.ones(3, dtype=bool))

        runtime = DynamicsRuntime(Bad(), regular)
        with pytest.raises(ValueError, match="edge_state"):
            runtime.round_masks(1)


# ---------------------------------------------------------------------------
# Kernel-level failure semantics (all six protocols)
# ---------------------------------------------------------------------------
class TestKernelSemantics:
    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_all_kernels_complete_under_transient_failures(self, protocol, regular):
        result = run_batch(
            protocol,
            regular,
            0,
            seeds=trial_seeds(1, "dyn-complete", protocol, trials=4),
            dynamics={"kind": "bernoulli-edges", "rate": 0.3, "seed": 3},
        )
        assert result.completed.all()

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_static_all_active_masks_are_bit_exact(self, protocol, regular):
        """A materialized all-true schedule must reproduce the maskless
        trajectories bit for bit.  (DynamicsRuntime collapses all-active
        rounds onto the maskless fast path; this test guards that collapse —
        and, should it ever be removed, the guarantee still has to hold
        because masking consumes no randomness.)"""
        seeds = trial_seeds(2, "dyn-exact", protocol, trials=3)
        plain = run_batch(protocol, regular, 0, seeds=seeds, record_history=True)
        masked = run_batch(
            protocol,
            regular,
            0,
            seeds=seeds,
            record_history=True,
            dynamics=StaticSchedule(
                edge_state=np.ones(regular.num_edges, dtype=bool),
                vertex_state=np.ones(regular.num_vertices, dtype=bool),
            ),
        )
        assert plain.broadcast_times.tolist() == masked.broadcast_times.tolist()
        assert plain.vertex_histories == masked.vertex_histories
        assert plain.agent_histories == masked.agent_histories

    @pytest.mark.parametrize("protocol", ["push", "pull", "push-pull"])
    def test_severed_bridge_blocks_call_protocols(self, protocol):
        """With the double star's bridge permanently down, no call protocol
        can reach the far star: informed count stalls at the near half."""
        graph = double_star(40)
        result = run_batch(
            protocol,
            graph,
            2,
            seeds=trial_seeds(3, "bridge", trials=3),
            max_rounds=400,
            record_history=True,
            dynamics=StaticSchedule(down_edges=[(0, 1)]),
        )
        assert not result.completed.any()
        half = graph.num_vertices // 2
        for history in result.vertex_histories:
            assert max(history) <= half

    def test_agents_cannot_cross_a_severed_bridge(self):
        graph = double_star(40)
        result = run_batch(
            "visit-exchange",
            graph,
            2,
            seeds=trial_seeds(4, "bridge-agents", trials=2),
            max_rounds=400,
            dynamics=StaticSchedule(down_edges=[(0, 1)]),
        )
        assert not result.completed.any()

    def test_crashed_vertices_trap_agents(self, regular):
        """A permanent crash of vertex 0's whole neighborhood cannot stop an
        agent protocol from informing the rest — but vertices crashed while
        uninformed keep the trial incomplete (honest accounting)."""
        crash = NodeCrashes(crash_round=1, vertices=[regular.num_vertices - 1])
        result = run_batch(
            "visit-exchange",
            regular,
            0,
            seeds=trial_seeds(5, "crash", trials=3),
            max_rounds=2000,
            record_history=True,
            dynamics=crash,
        )
        assert not result.completed.any()
        n = regular.num_vertices
        for history in result.vertex_histories:
            assert max(history) == n - 1  # everything except the dead vertex

    def test_transient_crash_delays_but_completes(self, regular):
        crash = NodeCrashes(crash_round=2, fraction=0.25, seed=1, duration=15)
        result = run_batch(
            "push-pull",
            regular,
            0,
            seeds=trial_seeds(6, "transient-crash", trials=4),
            dynamics=crash,
        )
        assert result.completed.all()

    def test_failure_rate_degrades_mean_spreading_time(self, regular):
        baseline = run_batch(
            "push", regular, 0, seeds=trial_seeds(7, "degrade", trials=30)
        )
        failing = run_batch(
            "push",
            regular,
            0,
            seeds=trial_seeds(7, "degrade", trials=30),
            dynamics={"kind": "bernoulli-edges", "rate": 0.4, "seed": 8},
        )
        assert failing.broadcast_times.mean() > baseline.broadcast_times.mean()


# ---------------------------------------------------------------------------
# Observer parity under dynamics
# ---------------------------------------------------------------------------
def _observed_counts_batched(protocol, graph, source, seeds, schedule, **kwargs):
    observers = [ObserverGroup([EdgeUsageObserver()]) for _ in seeds]
    run_batch(
        protocol,
        graph,
        source,
        seeds=[np.random.default_rng(s) for s in seeds],
        observers=observers,
        dynamics=schedule,
        **kwargs,
    )
    return [next(iter(group)).counts for group in observers]


def _observed_counts_sequential(protocol, graph, source, seeds, schedule, **kwargs):
    counts = []
    for s in seeds:
        observer = EdgeUsageObserver()
        simulate(
            protocol,
            graph,
            source=source,
            seed=s,
            observers=ObserverGroup([observer]),
            dynamics=schedule,
            **kwargs,
        )
        counts.append(observer.counts)
    return counts


class TestObserverParityUnderDynamics:
    """``on_edges_used`` must report only mask-active edges, identically on
    both backends when they consume the same per-trial generators."""

    SEEDS = [101, 202, 303]

    @pytest.mark.parametrize(
        "protocol,kwargs",
        [
            ("push", {}),
            ("pull", {}),
            ("push-pull", {}),
            ("push-pull", {"track_all_exchanges": True}),
            ("visit-exchange", {}),
            ("visit-exchange", {"track_edge_traversals": True}),
        ],
    )
    def test_batched_equals_sequential_per_trial(self, protocol, kwargs, regular):
        schedule_spec = {"kind": "bernoulli-edges", "rate": 0.3, "seed": 17}
        batched = _observed_counts_batched(
            protocol, regular, 0, self.SEEDS, resolve_dynamics(schedule_spec), **kwargs
        )
        sequential = _observed_counts_sequential(
            protocol, regular, 0, self.SEEDS, resolve_dynamics(schedule_spec), **kwargs
        )
        assert batched == sequential

    @pytest.mark.parametrize(
        "protocol,kwargs",
        [
            ("push", {}),
            ("pull", {}),
            ("push-pull", {}),
            ("push-pull", {"track_all_exchanges": True}),
            ("visit-exchange", {}),
            ("visit-exchange", {"track_edge_traversals": True}),
        ],
    )
    def test_only_mask_active_edges_are_reported(self, protocol, kwargs, regular):
        """With a fixed edge set permanently down, no reported edge may be in
        the down set on either backend."""
        down = [
            (0, int(regular.neighbors(0)[0])),
            (1, int(regular.neighbors(1)[-1])),
        ]
        down_set = {tuple(sorted(edge)) for edge in down}
        schedule = StaticSchedule(down_edges=down)
        for counts in _observed_counts_batched(
            protocol, regular, 0, self.SEEDS, schedule, **kwargs
        ) + _observed_counts_sequential(
            protocol, regular, 0, self.SEEDS, schedule, **kwargs
        ):
            assert counts, f"{protocol}: no edges reported at all"
            reported = set(counts)
            assert not (reported & down_set), (
                f"{protocol}: reported traffic over masked-off edges "
                f"{reported & down_set}"
            )

    def test_per_round_exchange_count_shrinks_when_masked(self, regular):
        """The all-exchange bandwidth view reports exactly n exchanges per
        round without masking, and strictly fewer per round under failures
        (blocked exchanges are not reported)."""
        n = regular.num_vertices
        for schedule, expect_full in ((None, True), (BernoulliEdgeFailures(0.4, seed=23), False)):
            observers = [ObserverGroup([EdgeUsageObserver()]) for _ in self.SEEDS]
            result = run_batch(
                "push-pull",
                regular,
                0,
                seeds=[np.random.default_rng(s) for s in self.SEEDS],
                observers=observers,
                dynamics=schedule,
                track_all_exchanges=True,
            )
            for group, rounds in zip(observers, result.rounds_executed.tolist()):
                total = next(iter(group)).total_uses()
                if expect_full:
                    assert total == n * rounds
                else:
                    assert total < n * rounds
