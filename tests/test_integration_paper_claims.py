"""Integration tests: the paper's qualitative claims at small-but-meaningful sizes.

These tests run the actual protocols (not scaled-down mocks) on the paper's
graph families at sizes small enough for CI, and assert the *orderings* and
*separations* the paper proves.  The full quantitative sweeps live in the
benchmark harness; here we only pin the qualitative shape so a regression in
any protocol implementation is caught by plain ``pytest``.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import simulate
from repro.analysis.comparison import separation_exponent
from repro.experiments import get_experiment, run_experiment
from repro.graphs import (
    double_star,
    heavy_binary_tree,
    random_regular_graph,
    siamese_heavy_binary_tree,
    star,
)
from repro.graphs.heavy_binary_tree import tree_leaves
from repro.graphs.siamese_tree import left_leaves


def mean_time(protocol, graph, source, trials=5, **kwargs):
    times = []
    for seed in range(trials):
        result = simulate(protocol, graph, source=source, seed=seed, **kwargs)
        assert result.completed, f"{protocol} did not complete on {graph.name}"
        times.append(result.broadcast_time)
    return float(np.mean(times))


class TestLemma2Star:
    """Figure 1(a): push slow; push-pull, visit-exchange, meet-exchange fast."""

    def test_orderings_at_n_400(self):
        graph = star(400)
        push = mean_time("push", graph, source=1, trials=3)
        ppull = mean_time("push-pull", graph, source=1, trials=3)
        visitx = mean_time("visit-exchange", graph, source=1, trials=3)
        meetx = mean_time("meet-exchange", graph, source=1, trials=3, lazy=True)
        log_n = math.log2(400)
        assert ppull <= 2
        assert visitx < 6 * log_n
        assert meetx < 6 * log_n
        assert push > 10 * max(visitx, meetx)

    def test_push_grows_superlinearly_with_n(self):
        sizes = [100, 200, 400]
        times = [mean_time("push", star(n), source=1, trials=3) for n in sizes]
        exponent = separation_exponent(sizes, times, [1.0] * len(sizes))
        assert exponent > 0.8  # ~ n log n


class TestLemma3DoubleStar:
    """Figure 1(b): push-pull slow; agent protocols fast."""

    def test_orderings_at_n_500(self):
        graph = double_star(500)
        ppull = mean_time("push-pull", graph, source=2, trials=5)
        visitx = mean_time("visit-exchange", graph, source=2, trials=5)
        meetx = mean_time("meet-exchange", graph, source=2, trials=5, lazy=True)
        log_n = math.log2(500)
        assert visitx < 6 * log_n
        assert meetx < 6 * log_n
        assert ppull > 3 * max(visitx, meetx)

    def test_push_pull_grows_polynomially(self):
        sizes = [128, 256, 512]
        times = [mean_time("push-pull", double_star(n), source=2, trials=5) for n in sizes]
        exponent = separation_exponent(sizes, times, [1.0] * len(sizes))
        assert exponent > 0.5

    def test_visit_exchange_stays_flat(self):
        sizes = [128, 256, 512]
        times = [
            mean_time("visit-exchange", double_star(n), source=2, trials=3) for n in sizes
        ]
        exponent = separation_exponent(sizes, times, [1.0] * len(sizes))
        assert exponent < 0.4


class TestLemma4HeavyTree:
    """Figure 1(c): push and meet-exchange fast, visit-exchange slow."""

    def test_orderings_at_n_511(self):
        graph = heavy_binary_tree(511)
        leaf = tree_leaves(graph)[0]
        push = mean_time("push", graph, source=leaf, trials=3)
        meetx = mean_time("meet-exchange", graph, source=leaf, trials=3)
        visitx = mean_time("visit-exchange", graph, source=leaf, trials=3)
        log_n = math.log2(511)
        assert push < 6 * log_n
        assert meetx < 8 * log_n
        assert visitx > 3 * max(push, meetx)


class TestLemma8SiameseTrees:
    """Figure 1(d): both agent protocols slow, push fast."""

    def test_orderings(self):
        graph = siamese_heavy_binary_tree(255)
        source = left_leaves(graph)[0]
        push = mean_time("push", graph, source=source, trials=3)
        visitx = mean_time("visit-exchange", graph, source=source, trials=3)
        meetx = mean_time(
            "meet-exchange", graph, source=source, trials=4, max_rounds=200000
        )
        # The agent protocols' Omega(n) bounds have noticeable variance at this
        # size (crossing the root is a single rare event), so the assertions
        # use conservative constants: push stays logarithmic while both agent
        # protocols are several times slower and already in the linear regime.
        assert push < 8 * math.log2(graph.num_vertices)
        assert visitx > 4 * push
        assert meetx > 2 * push


class TestTheorem1Regular:
    """Push and visit-exchange within constant factors on regular graphs."""

    def test_ratio_bounded_across_sizes(self):
        ratios = []
        for index, n in enumerate([128, 256, 512]):
            degree = max(4, int(2 * math.log2(n)))
            if (n * degree) % 2:
                degree += 1
            graph = random_regular_graph(n, degree, np.random.default_rng(index))
            push = mean_time("push", graph, source=0, trials=3)
            visitx = mean_time("visit-exchange", graph, source=0, trials=3)
            ratios.append(push / visitx)
        assert max(ratios) < 4.0
        assert min(ratios) > 0.25
        # The ratio should not drift systematically by more than ~2x across
        # a 4x range of sizes (constant-factor relationship).
        assert max(ratios) / min(ratios) < 2.5


class TestTheorem23And2425Regular:
    """Meet-exchange vs visit-exchange ordering and log lower bounds."""

    def test_visitx_at_most_meetx_plus_logarithm(self):
        n = 256
        degree = 16
        graph = random_regular_graph(n, degree, np.random.default_rng(7))
        visitx = mean_time("visit-exchange", graph, source=0, trials=3)
        meetx = mean_time("meet-exchange", graph, source=0, trials=3)
        assert visitx <= meetx + 4 * math.log2(n)

    def test_agent_protocols_need_logarithmic_time(self):
        n = 512
        degree = 18
        graph = random_regular_graph(n, degree, np.random.default_rng(9))
        for protocol in ("visit-exchange", "meet-exchange"):
            time = mean_time(protocol, graph, source=0, trials=3)
            assert time >= 0.5 * math.log2(n)


class TestExperimentHarnessEndToEnd:
    """A full (scaled-down) run through the registered experiment machinery."""

    def test_fig1b_experiment_reproduces_the_separation(self):
        # Push-pull's broadcast time on the double star is geometric (it waits
        # for the bridge edge to be sampled), so individual sweep points are
        # noisy; a handful of trials per size and a 8x size range keep the
        # measured separation exponent well away from zero.
        config = get_experiment("fig1b-double-star")
        result = run_experiment(config, base_seed=0, sizes=(64, 128, 256, 512), trials=6)
        sizes_ppull, ppull = result.series("push-pull")
        sizes_visitx, visitx = result.series("visit-exchange")
        assert sizes_ppull == sizes_visitx
        # Separation grows: push-pull falls behind visit-exchange as n grows.
        assert separation_exponent(sizes_ppull, ppull, visitx) > 0.3
        # And the winner at the largest size is the agent protocol.
        assert visitx[-1] < ppull[-1]
