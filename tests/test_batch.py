"""Tests for the batched multi-trial backend (repro.core.batch).

Three contracts matter:

* **Statistical equivalence** — the batched kernels simulate the same
  processes as the sequential protocols, so their mean broadcast times must
  agree (overlapping confidence intervals) on every graph family.
* **Per-trial seed determinism** — trial ``t`` draws only from ``seeds[t]``,
  so its result is reproducible and independent of the surrounding batch.
* **Completion masking** — finished trials keep their recorded times while the
  rest of the batch runs on, and budget-exhausted trials surface exactly like
  the sequential engine's incomplete runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import simulate_batch
from repro.analysis.statistics import summarize_trials
from repro.core.batch import (
    BATCHED_PROTOCOLS,
    run_batch,
    supports_batched,
    trial_seeds,
)
from repro.core.protocols import PROTOCOL_REGISTRY
from repro.core.rng import derive_seed
from repro.experiments.config import GraphCase, ProtocolSpec
from repro.experiments.runner import run_trial_set
from repro.graphs import complete_graph, random_regular_graph, star
from repro.graphs.graph import Graph, GraphError


@pytest.fixture(scope="module")
def star_case():
    return GraphCase(graph=star(100), source=1, size_parameter=100)


@pytest.fixture(scope="module")
def regular_case():
    graph = random_regular_graph(64, 6, np.random.default_rng(5))
    return GraphCase(graph=graph, source=0, size_parameter=64)


class TestStatisticalEquivalence:
    """Batched and sequential backends agree on mean broadcast time."""

    @pytest.mark.parametrize("protocol", sorted(BATCHED_PROTOCOLS))
    @pytest.mark.parametrize("case_name", ["star_case", "regular_case"])
    def test_confidence_intervals_overlap(self, protocol, case_name, request):
        case = request.getfixturevalue(case_name)
        spec = ProtocolSpec(protocol)
        kwargs = dict(trials=60, base_seed=42, experiment_id="equivalence")
        sequential = summarize_trials(
            run_trial_set(spec, case, backend="sequential", **kwargs)
        )
        batched = summarize_trials(
            run_trial_set(spec, case, backend="batched", **kwargs)
        )
        assert sequential is not None and batched is not None
        overlap = (
            sequential.ci_low <= batched.ci_high
            and batched.ci_low <= sequential.ci_high
        )
        assert overlap, (
            f"{protocol} on {case.graph.name}: sequential CI "
            f"[{sequential.ci_low:.2f}, {sequential.ci_high:.2f}] does not overlap "
            f"batched CI [{batched.ci_low:.2f}, {batched.ci_high:.2f}]"
        )

    def test_all_trials_complete_on_both_backends(self, regular_case):
        for backend in ("sequential", "batched"):
            trials = run_trial_set(
                ProtocolSpec("push"),
                regular_case,
                trials=10,
                base_seed=0,
                backend=backend,
            )
            assert trials.completion_rate == 1.0


class TestPerTrialSeedDeterminism:
    def test_rerun_reproduces_per_trial_times(self, regular_case):
        seeds = trial_seeds(3, "determinism", trials=12)
        first = run_batch("visit-exchange", regular_case.graph, 0, seeds=seeds)
        second = run_batch("visit-exchange", regular_case.graph, 0, seeds=seeds)
        assert first.broadcast_times.tolist() == second.broadcast_times.tolist()

    @pytest.mark.parametrize("protocol", sorted(BATCHED_PROTOCOLS))
    def test_trial_result_independent_of_batch_composition(self, protocol, regular_case):
        seeds = trial_seeds(7, "independence", trials=10)
        full = run_batch(protocol, regular_case.graph, 0, seeds=seeds)
        front = run_batch(protocol, regular_case.graph, 0, seeds=seeds[:4])
        back = run_batch(protocol, regular_case.graph, 0, seeds=seeds[4:])
        combined = front.broadcast_times.tolist() + back.broadcast_times.tolist()
        assert full.broadcast_times.tolist() == combined

    def test_distinct_seeds_vary(self, star_case):
        result = run_batch(
            "push", star_case.graph, star_case.source, seeds=range(12)
        )
        assert len(set(result.broadcast_times.tolist())) > 1

    def test_trial_seeds_match_sequential_runner_derivation(self):
        seeds = trial_seeds(9, "exp", "label", 64, trials=3)
        assert seeds == [derive_seed(9, "exp", "label", 64, t) for t in range(3)]


class TestCompletionMasking:
    def test_budget_exhaustion(self, star_case):
        # Push from a star leaf cannot finish in one round.
        result = run_batch(
            "push", star_case.graph, star_case.source, seeds=[1, 2, 3], max_rounds=1
        )
        assert not result.completed.any()
        assert result.broadcast_times.tolist() == [-1, -1, -1]
        assert result.rounds_executed.tolist() == [1, 1, 1]
        for run in result.to_run_results():
            assert run.broadcast_time is None and not run.completed

    def test_trial_complete_at_round_zero(self):
        single = Graph(1, [], name="single")
        result = run_batch("push", single, 0, seeds=[1, 2])
        assert result.completed.all()
        assert result.broadcast_times.tolist() == [0, 0]
        assert result.rounds_executed.tolist() == [0, 0]

    def test_mixed_completion_keeps_per_trial_times(self):
        """Trials finishing under a tight budget record the same times as
        without one; the rest are marked incomplete at the budget."""
        graph = complete_graph(16)
        seeds = list(range(20))
        free = run_batch("push", graph, 0, seeds=seeds)
        assert free.completed.all()
        cutoff = int(np.median(free.broadcast_times))
        capped = run_batch("push", graph, 0, seeds=seeds, max_rounds=cutoff)
        fast = free.broadcast_times <= cutoff
        assert capped.completed.tolist() == fast.tolist()
        assert 0 < fast.sum() < len(seeds)  # the cutoff really splits the batch
        assert (
            capped.broadcast_times[fast].tolist()
            == free.broadcast_times[fast].tolist()
        )
        assert (capped.broadcast_times[~fast] == -1).all()
        assert (capped.rounds_executed[~fast] == cutoff).all()

    def test_completed_trials_stop_advancing(self, regular_case):
        result = run_batch("push-pull", regular_case.graph, 0, seeds=range(8))
        done = result.completed
        assert (
            result.rounds_executed[done].tolist()
            == result.broadcast_times[done].tolist()
        )


class TestValidationAndDispatch:
    def test_unknown_protocol_rejected(self, star_case):
        with pytest.raises(ValueError, match="no batched kernel"):
            run_batch("gossip-9000", star_case.graph, 0, seeds=[1])

    def test_all_registry_protocols_supported(self):
        # The kernels are the single source of truth: every registry protocol
        # (including pull, the hybrid and the observer-instrumented options)
        # runs on the batched backend.
        assert BATCHED_PROTOCOLS == set(PROTOCOL_REGISTRY)
        for protocol in PROTOCOL_REGISTRY:
            assert supports_batched(protocol)
        assert supports_batched("push-pull", {"track_all_exchanges": True})
        assert supports_batched("visit-exchange", {"track_edge_traversals": True})
        assert supports_batched("meet-exchange", {"lazy": True, "agent_density": 2.0})
        assert supports_batched("hybrid-ppull-visitx")

    def test_empty_seed_list_rejected(self, star_case):
        with pytest.raises(ValueError):
            run_batch("push", star_case.graph, 0, seeds=[])

    def test_source_and_connectivity_validated(self):
        disconnected = Graph(4, [(0, 1), (2, 3)], name="two-edges")
        with pytest.raises(GraphError):
            run_batch("push", disconnected, 0, seeds=[1])
        with pytest.raises(GraphError):
            run_batch("push", star(10), 99, seeds=[1])

    def test_runner_backend_validation(self, star_case):
        with pytest.raises(ValueError):
            run_trial_set(
                ProtocolSpec("push"), star_case, trials=1, base_seed=0, backend="bogus"
            )
        with pytest.raises(ValueError, match="no batched kernel"):
            run_trial_set(
                ProtocolSpec("gossip-9000"),
                star_case,
                trials=1,
                base_seed=0,
                backend="batched",
            )

    def test_runner_batched_records_history(self, star_case):
        trials = run_trial_set(
            ProtocolSpec("push"),
            star_case,
            trials=3,
            base_seed=0,
            backend="batched",
            record_history=True,
        )
        for result in trials.results:
            history = result.informed_vertex_history
            assert history[0] == 1
            assert len(history) == result.broadcast_time + 1
            assert history[-1] == star_case.graph.num_vertices
            assert all(b >= a for a, b in zip(history, history[1:]))

    def test_runner_records_chosen_backend(self, star_case):
        batched = run_trial_set(
            ProtocolSpec("pull"), star_case, trials=2, base_seed=0, backend="auto"
        )
        assert batched.backend == "batched"
        assert all(r.metadata["backend"] == "batched" for r in batched.results)
        sequential = run_trial_set(
            ProtocolSpec("pull"), star_case, trials=2, base_seed=0, backend="sequential"
        )
        assert sequential.backend == "sequential"
        assert all(r.metadata["backend"] == "sequential" for r in sequential.results)


class TestResultPackaging:
    def test_trial_set_round_trip(self, regular_case):
        result = run_batch("push", regular_case.graph, 0, seeds=range(5))
        trial_set = result.to_trial_set()
        assert len(trial_set) == 5
        assert trial_set.protocol == "push"
        assert trial_set.num_vertices == 64
        assert all(r.messages_sent > 0 for r in trial_set.results)

    def test_agent_protocol_metadata_and_counts(self, star_case):
        result = run_batch(
            "meet-exchange", star_case.graph, star_case.source, seeds=range(4)
        )
        assert result.num_agents == star_case.graph.num_vertices
        for meta in result.metadata:
            # The star is bipartite: lazy walks must auto-enable.
            assert meta["lazy"] is True
            assert "source_still_informs" in meta

    def test_simulate_batch_convenience(self, regular_case):
        result = simulate_batch("push-pull", regular_case.graph, trials=6, seed=2)
        assert result.num_trials == 6
        assert result.completed.all()
        assert result.mean_broadcast_time() > 0
