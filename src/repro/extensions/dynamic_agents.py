"""Agent-based protocols with a dynamic, failure-prone agent population.

The paper's open-problems section (Section 9) observes that the agent-based
protocols are probably not as failure-robust as rumor spreading — agents can
get lost on faulty nodes or links — and suggests that "the protocols could
tolerate some number of lost agents, if a dynamic set of agents were used,
where agents age with time and die, while new agents are born at a
proportional rate."

:class:`DynamicAgentsSimulation` implements that dynamic population for
**every agent-based protocol** of the registry (visit-exchange,
meet-exchange and the push-pull + visit-exchange hybrid), batched over
trials, and composes with the dynamic-topology layer of
:mod:`repro.graphs.dynamic` — so agent churn and node/link failures can be
studied together:

* every round, each agent independently dies with probability ``death_rate``;
* new agents are born at vertices sampled from the stationary distribution, at
  a rate chosen so the expected population stays at its initial size
  (``birth_rate`` can also be set explicitly);
* newborn agents start uninformed and pick the rumor up through the
  protocol's ordinary rules;
* optionally, a one-off *failure event* kills a fraction of the population at
  a chosen round (to measure recovery);
* optionally, a :class:`~repro.graphs.dynamic.TopologySchedule` masks edges
  and vertices per round: blocked traversals leave agents where they are, and
  crashed vertices host no interactions (agents on one are stuck until it
  recovers — the "lost agents" of Section 9).

Execution model: all trials of a batch advance through one shared round
loop on rectangular ``(trials, capacity)`` arrays with an alive-mask (dead
and not-yet-born agents occupy masked slots), and each trial draws all of
its randomness from its own generator with shapes that depend only on that
trial's history — so a trial's outcome is a pure function of its seed,
independent of the surrounding batch.  :class:`DynamicVisitExchange` is the
original visit-exchange-only entry point, kept as a thin wrapper.

Relationship to the kernel layer: the protocol *rules* applied here (the
visit-exchange delivery/learning rules, meet-exchange's source hand-off and
meetings, the hybrid's push-pull sub-round) mirror the kernels in
:mod:`repro.core.kernels` but are re-stated over the alive-masked arrays,
because the kernels' row-compacted fixed-width state has no notion of a
population that grows and shrinks mid-run.  That duplication is deliberate
and guarded: the zero-churn configuration of every protocol is asserted to
match its kernel statistically (``tests/test_dynamic_agents.py``), so a
rule change in a kernel that is not mirrored here fails the suite.  If
churn ever becomes a first-class kernel axis (an alive-mask next to the
topology masks), this module should collapse back onto the kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..core.rng import make_rng
from ..graphs.dynamic import DynamicsRuntime, _resolve_dynamics
from ..graphs.graph import Graph, GraphError

__all__ = ["DynamicAgentsResult", "DynamicAgentsSimulation", "DynamicVisitExchange"]

#: Protocols supported by the dynamic-population engine.
AGENT_PROTOCOLS = ("visit-exchange", "meet-exchange", "hybrid-ppull-visitx")


@dataclass
class DynamicAgentsResult:
    """Outcome of one dynamic-population run."""

    graph_name: str
    num_vertices: int
    initial_agents: int
    broadcast_time: Optional[int]
    completed: bool
    rounds_executed: int
    population_history: List[int]
    informed_vertex_history: List[int]
    total_births: int
    total_deaths: int
    protocol: str = "visit-exchange"
    informed_agent_history: List[int] = field(default_factory=list)

    @property
    def min_population(self) -> int:
        """Smallest population size observed during the run."""
        return int(min(self.population_history))

    @property
    def mean_population(self) -> float:
        """Average population size over the run."""
        return float(np.mean(self.population_history))


class _TrialState:
    """Bookkeeping of one trial: stream, capacity, histories, completion."""

    def __init__(self, gen: np.random.Generator, capacity: int) -> None:
        self.gen = gen
        self.capacity = capacity
        self.population_history: List[int] = []
        self.informed_vertex_history: List[int] = []
        self.informed_agent_history: List[int] = []
        self.total_births = 0
        self.total_deaths = 0
        self.broadcast_time: Optional[int] = None
        self.rounds_executed = 0


class DynamicAgentsSimulation:
    """Any agent-based protocol under agent churn and topology dynamics.

    Parameters
    ----------
    protocol:
        ``"visit-exchange"`` (vertices and agents store the rumor; completion
        is all vertices informed), ``"meet-exchange"`` (only agents store it;
        completion is all *currently alive* agents informed — a moving target
        under churn, since newborns start uninformed) or
        ``"hybrid-ppull-visitx"`` (push-pull on the vertices plus the agent
        population; completion is all vertices informed).

        Note that under churn the meet-exchange rumor can go *extinct*: the
        source hands the rumor to its first visitors and goes silent, so if
        every informed agent dies before meeting anyone, no agent can ever
        recover it and the run honestly reports ``completed=False``.  This is
        the fragility Section 9 anticipates — visit-exchange does not share
        it because informed vertices persist.
    agent_density:
        Initial population: ``round(agent_density * n)`` agents from the
        stationary distribution.
    death_rate:
        Per-agent, per-round probability of disappearing.
    birth_rate:
        Expected number of new agents per round (a Poisson rate).  ``None``
        (default) balances deaths: ``death_rate * initial_population``.
    failure_round / failure_fraction:
        Optional one-off failure: at ``failure_round``, each agent is killed
        independently with probability ``failure_fraction``.
    lazy:
        Use lazy walks (stay put with probability 1/2).
    dynamics:
        Optional dynamic-topology spec (anything
        :func:`repro.graphs.dynamic.resolve_dynamics` accepts), sharing the
        failure semantics of the protocol kernels.
    """

    def __init__(
        self,
        *,
        protocol: str = "visit-exchange",
        agent_density: float = 1.0,
        death_rate: float = 0.01,
        birth_rate: Optional[float] = None,
        failure_round: Optional[int] = None,
        failure_fraction: float = 0.0,
        lazy: bool = False,
        dynamics=None,
    ) -> None:
        if protocol not in AGENT_PROTOCOLS:
            known = ", ".join(AGENT_PROTOCOLS)
            raise ValueError(
                f"unknown agent protocol {protocol!r}; supported: {known}"
            )
        if not 0.0 <= death_rate < 1.0:
            raise ValueError("death_rate must lie in [0, 1)")
        if not 0.0 <= failure_fraction <= 1.0:
            raise ValueError("failure_fraction must lie in [0, 1]")
        if agent_density <= 0:
            raise ValueError("agent_density must be positive")
        self.protocol = protocol
        self.agent_density = float(agent_density)
        self.death_rate = float(death_rate)
        self.birth_rate = birth_rate
        self.failure_round = failure_round
        self.failure_fraction = float(failure_fraction)
        self.lazy = bool(lazy)
        self.dynamics = _resolve_dynamics(dynamics)

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------
    def run(
        self,
        graph: Graph,
        source: int,
        *,
        seed=None,
        max_rounds: Optional[int] = None,
    ) -> DynamicAgentsResult:
        """Run one trial until completion or budget exhaustion."""
        return self.run_batch(graph, source, seeds=[seed], max_rounds=max_rounds)[0]

    def run_batch(
        self,
        graph: Graph,
        source: int,
        *,
        seeds: Sequence,
        max_rounds: Optional[int] = None,
    ) -> List[DynamicAgentsResult]:
        """Run ``len(seeds)`` independent trials through one shared round loop.

        Trial ``t`` draws exclusively from ``seeds[t]`` with shapes that
        depend only on its own history, so each element of the returned list
        is identical to what :meth:`run` would produce for that seed alone.
        """
        if not (0 <= source < graph.num_vertices):
            raise GraphError("source vertex out of range")
        if not graph.is_connected():
            raise GraphError("the agent protocols are defined on connected graphs")
        seeds = list(seeds)
        if not seeds:
            raise ValueError("need at least one trial seed")

        n = graph.num_vertices
        num_trials = len(seeds)
        initial = max(1, int(round(self.agent_density * n)))
        births_per_round = (
            float(self.birth_rate)
            if self.birth_rate is not None
            else self.death_rate * initial
        )
        budget = int(max_rounds) if max_rounds is not None else max(1024, 400 * n)
        runtime = (
            DynamicsRuntime(self.dynamics, graph) if self.dynamics is not None else None
        )

        # Stationary placement via uniform directed-slot sampling (picking a
        # random edge endpoint slot is exactly deg(v) / 2|E|).
        slot_sources = graph.slot_sources()

        trials = [_TrialState(make_rng(seed), initial) for seed in seeds]
        capacity = initial
        positions = np.zeros((num_trials, capacity), dtype=np.int64)
        alive = np.ones((num_trials, capacity), dtype=bool)
        agent_informed = np.zeros((num_trials, capacity), dtype=bool)
        # Slot-0 write sink, as in the kernels: scatters index the flat
        # buffer with ``flat_index * mask`` instead of extracting indices.
        vertex_flat = np.zeros(num_trials * n + 1, dtype=bool)
        vertex_informed = vertex_flat[1:].reshape(num_trials, n)
        # Meet-exchange: the source holds the rumor for its first visitor.
        source_still_informs = np.zeros(num_trials, dtype=bool)

        for t, state in enumerate(trials):
            draws = state.gen.random(initial)
            slots = np.minimum(
                (draws * slot_sources.size).astype(np.int64), slot_sources.size - 1
            )
            positions[t] = slot_sources[slots]
        agent_informed[...] = positions == source
        if self.protocol == "meet-exchange":
            source_still_informs[...] = ~agent_informed.any(axis=1)
        else:
            vertex_informed[:, source] = True

        def informed_vertex_count(t: int) -> int:
            if self.protocol == "meet-exchange":
                return 1  # kernel convention: only the source "stores" it
            return int(np.count_nonzero(vertex_informed[t]))

        def is_complete(t: int) -> bool:
            if self.protocol == "meet-exchange":
                alive_t = alive[t]
                return bool(alive_t.any() and agent_informed[t][alive_t].all())
            return int(np.count_nonzero(vertex_informed[t])) == n

        def record(t: int) -> None:
            state = trials[t]
            state.population_history.append(int(np.count_nonzero(alive[t])))
            state.informed_vertex_history.append(informed_vertex_count(t))
            state.informed_agent_history.append(
                int(np.count_nonzero(agent_informed[t] & alive[t]))
            )

        active = [t for t in range(num_trials)]
        for t in active:
            record(t)
            if is_complete(t):
                trials[t].broadcast_time = 0
        active = [t for t in active if trials[t].broadcast_time is None]

        # Per-round rectangular draw buffers, regrown with capacity.
        death_draws = np.empty((num_trials, capacity))
        walk_draws = np.empty((num_trials, capacity))
        lazy_draws = np.empty((num_trials, capacity)) if self.lazy else None
        callee_draws = (
            np.empty((num_trials, n)) if self.protocol == "hybrid-ppull-visitx" else None
        )

        round_index = 0
        while active and round_index < budget:
            round_index += 1
            slot_active, vertex_active = (
                runtime.round_masks(round_index) if runtime is not None else (None, None)
            )

            # --- per-trial draws (shapes depend only on the trial's own
            # history, which keeps every trial a pure function of its seed) ---
            births: dict = {}
            for t in active:
                state = trials[t]
                cap = state.capacity
                state.gen.random(out=death_draws[t, :cap])
                if self.failure_round is not None and round_index == self.failure_round:
                    failure = state.gen.random(cap)
                    dies = alive[t, :cap] & (
                        (death_draws[t, :cap] < self.death_rate)
                        | (failure < self.failure_fraction)
                    )
                else:
                    dies = alive[t, :cap] & (death_draws[t, :cap] < self.death_rate)
                state.total_deaths += int(np.count_nonzero(dies))
                alive[t, :cap] &= ~dies

                num_births = (
                    int(state.gen.poisson(births_per_round)) if births_per_round > 0 else 0
                )
                if num_births:
                    free = np.flatnonzero(~alive[t, :cap])
                    if free.size < num_births:
                        grow = max(num_births - free.size, cap // 2, 8)
                        state.capacity = cap = cap + grow
                        if cap > capacity:
                            pad = cap - capacity
                            positions = np.pad(positions, ((0, 0), (0, pad)))
                            alive = np.pad(alive, ((0, 0), (0, pad)))
                            agent_informed = np.pad(agent_informed, ((0, 0), (0, pad)))
                            death_draws = np.pad(death_draws, ((0, 0), (0, pad)))
                            walk_draws = np.pad(walk_draws, ((0, 0), (0, pad)))
                            if lazy_draws is not None:
                                lazy_draws = np.pad(lazy_draws, ((0, 0), (0, pad)))
                            capacity = cap
                        free = np.flatnonzero(~alive[t, :cap])
                    birth_slots = free[:num_births]
                    place = state.gen.random(num_births)
                    place_slots = np.minimum(
                        (place * slot_sources.size).astype(np.int64),
                        slot_sources.size - 1,
                    )
                    positions[t, birth_slots] = slot_sources[place_slots]
                    alive[t, birth_slots] = True
                    agent_informed[t, birth_slots] = False
                    state.total_births += num_births
                    births[t] = birth_slots
                state.gen.random(out=walk_draws[t, :cap])
                if lazy_draws is not None:
                    state.gen.random(out=lazy_draws[t, :cap])
                if callee_draws is not None:
                    state.gen.random(out=callee_draws[t])

            rows = np.asarray(active, dtype=np.int64)
            informed_before = agent_informed[rows] & alive[rows]

            # --- hybrid: push-pull sub-round on the vertices ----------------
            if self.protocol == "hybrid-ppull-visitx":
                self._push_pull_subround(
                    graph, rows, callee_draws, vertex_flat, vertex_informed,
                    slot_active,
                )

            # --- walk step (vectorized across the active trials) ------------
            pos = positions[rows]
            degs = graph.degrees[pos]
            offsets = np.minimum(
                (walk_draws[rows] * degs).astype(np.int64), degs - 1
            )
            flat_slots = graph.indptr[pos] + offsets
            sampled = graph.indices[flat_slots]
            if slot_active is not None:
                blocked = ~slot_active[flat_slots]
                np.copyto(sampled, pos, where=blocked)
            if lazy_draws is not None:
                np.copyto(sampled, pos, where=lazy_draws[rows] < 0.5)
            np.copyto(sampled, pos, where=~alive[rows])
            positions[rows] = sampled

            vertex_ok = vertex_active[sampled] if vertex_active is not None else None

            if self.protocol == "meet-exchange":
                self._meet_subround(
                    graph, rows, sampled, informed_before, agent_informed, alive,
                    source, source_still_informs, vertex_ok,
                )
            else:
                # Visit-exchange rules against the shared informed-vertex set.
                flat_pos = rows[:, None] * n + 1 + sampled
                carriers = informed_before
                if vertex_ok is not None:
                    carriers = carriers & vertex_ok
                vertex_flat[flat_pos * carriers] = True
                learned = vertex_flat[flat_pos]
                if vertex_ok is not None:
                    learned = learned & vertex_ok
                agent_informed[rows] = agent_informed[rows] | (learned & alive[rows])

            # --- record & retire -------------------------------------------
            finished = []
            for t in active:
                record(t)
                trials[t].rounds_executed = round_index
                if is_complete(t):
                    trials[t].broadcast_time = round_index
                    finished.append(t)
            active = [t for t in active if t not in finished]

        return [
            DynamicAgentsResult(
                graph_name=graph.name,
                num_vertices=n,
                initial_agents=initial,
                broadcast_time=state.broadcast_time,
                completed=state.broadcast_time is not None,
                rounds_executed=state.rounds_executed,
                population_history=state.population_history,
                informed_vertex_history=state.informed_vertex_history,
                total_births=state.total_births,
                total_deaths=state.total_deaths,
                protocol=self.protocol,
                informed_agent_history=state.informed_agent_history,
            )
            for state in trials
        ]

    # ------------------------------------------------------------------
    # protocol sub-rounds
    # ------------------------------------------------------------------
    def _push_pull_subround(
        self, graph, rows, callee_draws, vertex_flat, vertex_informed, slot_active,
    ) -> None:
        """One push-pull exchange of every vertex (the hybrid's first half)."""
        n = graph.num_vertices
        draws = callee_draws[rows]
        degs = graph.degrees[None, :]
        offsets = np.minimum((draws * degs).astype(np.int64), degs - 1)
        flat_slots = graph.indptr[:-1][None, :] + offsets
        callees = graph.indices[flat_slots]
        ok = slot_active[flat_slots] if slot_active is not None else None
        caller_informed = vertex_informed[rows]
        callee_flat = rows[:, None] * n + 1 + callees
        callee_informed = vertex_flat[callee_flat]
        push_mask = caller_informed & ~callee_informed
        pull_mask = ~caller_informed & callee_informed
        if ok is not None:
            push_mask &= ok
            pull_mask &= ok
        vertex_flat[callee_flat * push_mask] = True
        vertex_informed[rows] = vertex_informed[rows] | pull_mask

    def _meet_subround(
        self, graph, rows, sampled, informed_before, agent_informed, alive,
        source, source_still_informs, vertex_ok,
    ) -> None:
        """Source hand-off plus meetings (only agents store the rumor)."""
        n = graph.num_vertices
        # The source hands the rumor to its first alive visitor(s); a crashed
        # source informs nobody (vertex_ok already encodes its state).
        for i, t in enumerate(rows.tolist()):
            if not source_still_informs[t]:
                continue
            at_source = (sampled[i] == source) & alive[t]
            if vertex_ok is not None:
                at_source &= vertex_ok[i]
            if at_source.any():
                agent_informed[t] |= at_source
                source_still_informs[t] = False
        # Meetings: vertices holding a previously informed alive agent inform
        # every alive agent there (crashed vertices host no meetings).
        meeting_flat = np.zeros(rows.size * n + 1, dtype=bool)
        local_flat = np.arange(rows.size, dtype=np.int64)[:, None] * n + 1 + sampled
        carriers = informed_before
        if vertex_ok is not None:
            carriers = carriers & vertex_ok
        meeting_flat[local_flat * carriers] = True
        met = meeting_flat[local_flat]
        if vertex_ok is not None:
            met = met & vertex_ok
        agent_informed[rows] = agent_informed[rows] | (met & alive[rows])


class DynamicVisitExchange(DynamicAgentsSimulation):
    """Visit-exchange whose agent population churns over time.

    The original entry point of this module, now a thin wrapper over
    :class:`DynamicAgentsSimulation` with ``protocol="visit-exchange"``; see
    that class for the parameters.
    """

    def __init__(self, **kwargs) -> None:
        super().__init__(protocol="visit-exchange", **kwargs)
