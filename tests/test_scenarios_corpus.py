"""Tests for the corpus manifest layer (repro.scenarios.corpus) and CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli.main import main
from repro.graphs.graph import Graph
from repro.scenarios import (
    ScenarioError,
    corpus_report,
    corpus_status,
    load_corpus,
    run_corpus,
)
from repro.store import ResultStore

#: A small connected fixture graph: a 6-cycle with two chords.
FIXTURE_EDGES = "0 1\n1 2\n2 3\n3 4\n4 5\n5 0\n0 3\n1 4\n"


@pytest.fixture
def manifest(tmp_path):
    """A two-scenario corpus manifest (JSON) with a checked-in edge file."""
    (tmp_path / "ring.edges").write_text(FIXTURE_EDGES)
    payload = {
        "corpus": "test-corpus",
        "defaults": {"trials": 2, "protocols": ["push"]},
        "scenarios": [
            {
                "name": "ingested-ring",
                "graph": {"kind": "file", "path": "ring.edges"},
                "source": "max-degree",
                "sizes": [1],
                "rumors": {"count": 2, "interval": 2, "trials": 1},
            },
            {
                "name": "tiny-sbm",
                "graph": {"kind": "sbm", "num_blocks": 2, "p_in": 0.6, "p_out": 0.2},
                "sizes": [16, 24],
            },
        ],
    }
    path = tmp_path / "corpus.json"
    path.write_text(json.dumps(payload))
    return path


class TestLoadCorpus:
    def test_load_resolves_relative_paths(self, manifest):
        corpus = load_corpus(manifest)
        assert corpus.name == "test-corpus"
        assert [s.name for s in corpus.scenarios] == ["ingested-ring", "tiny-sbm"]
        ring = corpus.scenario("ingested-ring")
        # The file path was resolved against the manifest's directory.
        assert ring.graph["path"] == str(manifest.parent / "ring.edges")
        assert ring.trials == 2  # from defaults

    def test_duplicate_names_rejected(self, tmp_path):
        path = tmp_path / "dup.json"
        path.write_text(json.dumps({
            "corpus": "dup",
            "scenarios": [
                {"name": "a", "graph": "complete", "sizes": [8]},
                {"name": "a", "graph": "cycle", "sizes": [8]},
            ],
        }))
        with pytest.raises(ScenarioError, match="duplicate scenario name"):
            load_corpus(path)

    def test_unknown_top_level_key_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"corpus": "x", "scenario": []}))
        with pytest.raises(ScenarioError):
            load_corpus(path)


class TestRunCorpus:
    def test_cold_then_warm_with_zero_constructions(self, manifest, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        cold = run_corpus(load_corpus(manifest), store=store)
        # Cold: every cell computed (2 sweep cells + 2*1 sweep cells for
        # sizes [16, 24]... counted straight off the summary), plus the
        # rumor document.
        assert cold.computed > 0 and cold.cached == 0
        assert cold.graph_constructions > 0

        warm = run_corpus(load_corpus(manifest), store=store)
        assert warm.computed == 0
        assert warm.cached == cold.computed
        assert warm.graph_constructions == 0

    def test_interrupted_run_resumes(self, manifest, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        corpus = load_corpus(manifest)
        # "Interrupt": only the first scenario ran before the crash.
        partial = run_corpus(corpus, store=store, names=["ingested-ring"])
        assert [s.name for s in partial.scenarios] == ["ingested-ring"]

        resumed = run_corpus(corpus, store=store)
        by_name = {s.name: s for s in resumed.scenarios}
        assert by_name["ingested-ring"].computed == 0
        assert by_name["ingested-ring"].rumor_computed == 0
        assert by_name["tiny-sbm"].computed == by_name["tiny-sbm"].total_cells

    def test_status_and_report(self, manifest, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        corpus = load_corpus(manifest)
        empty = corpus_status(corpus, store=store)
        assert empty.cached == 0

        run_corpus(corpus, store=store)
        before = Graph.construction_count
        status = corpus_status(corpus, store=store)
        assert status.computed == 0
        assert status.cached > 0
        assert {s.name: s.missing for s in status.scenarios} == {
            "ingested-ring": 0, "tiny-sbm": 0,
        }
        text = corpus_report(corpus, store=store)
        # Status and report are pure store reads: no graph was built.
        assert Graph.construction_count == before
        assert "ingested-ring" in text and "tiny-sbm" in text
        assert "Multi-rumor contention" in text

    def test_report_strict_raises_on_missing(self, manifest, tmp_path):
        store = ResultStore(str(tmp_path / "empty"))
        corpus = load_corpus(manifest)
        with pytest.raises(KeyError):
            corpus_report(corpus, store=store, strict=True)
        # Non-strict renders placeholders instead.
        text = corpus_report(corpus, store=store)
        assert "tiny-sbm" in text


class TestCorpusCli:
    def test_run_status_report(self, manifest, tmp_path, capsys):
        store = str(tmp_path / "store")
        argv = ["corpus", "run", str(manifest), "--store", store]
        assert main(argv) == 0
        cold = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert cold["computed"] > 0

        assert main(argv) == 0
        warm = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert warm["computed"] == 0
        assert warm["graph_constructions"] == 0

        assert main(["corpus", "status", str(manifest), "--store", store]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["cached"] == cold["computed"]

        out_path = tmp_path / "report.md"
        assert main([
            "corpus", "report", str(manifest), "--store", store,
            "--output", str(out_path),
        ]) == 0
        assert "tiny-sbm" in out_path.read_text()

    def test_run_rejects_no_store(self, manifest, capsys):
        assert main(["corpus", "run", str(manifest), "--no-store"]) == 2
        assert "store-backed" in capsys.readouterr().err

    def test_missing_manifest_fails_cleanly(self, tmp_path, capsys):
        assert main(["corpus", "run", str(tmp_path / "nope.json")]) == 2

    def test_run_scenario_flag(self, manifest, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main([
            "run", "--scenario", f"{manifest}#tiny-sbm", "--store", store,
        ]) == 0
        assert "tiny-sbm" in capsys.readouterr().out

    def test_run_requires_exactly_one_target(self, capsys):
        assert main(["run"]) == 2
        assert main(["run", "fig1a-star", "--scenario", "x#y"]) == 2

    def test_report_scenario_sections(self, manifest, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["corpus", "run", str(manifest), "--store", store]) == 0
        capsys.readouterr()
        assert main([
            "report", "--scenario", str(manifest), "--only", "tiny-sbm",
            "--from-store", "--store", store,
        ]) == 0
        out = capsys.readouterr().out
        assert "tiny-sbm" in out
