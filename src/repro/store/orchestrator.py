"""Cell-plan resolution: the single source of truth for "what would run".

:func:`resolve_cell` performs exactly the resolution steps
:func:`repro.experiments.runner.run_trial_set` performs before touching a
kernel — spec-level dynamics override, ``auto`` backend selection, per-trial
seed derivation — and condenses them into a :class:`CellPlan` whose ``key``
addresses the cell in a :class:`~repro.store.artifacts.ResultStore`.  The
runner executes plans; the reporting layer (and ``repro store`` tooling)
only *derives* them, which is how figures and tables regenerate from the
store without recomputing anything: same resolution, same key, same bits.

Warm starts resolve keys *without building graphs*: when a caller passes a
previous run's sweep-journal manifest, :func:`resolve_sweep_plans` checks
each entry's recorded builder spec against the one it recomputes from the
versioned builder registry (:mod:`repro.graphs.builders`) and, on a match,
plans the cell around a :class:`GraphStub` carrying the manifest's trusted
fingerprint — zero CSR arrays are materialized for cells that end up cache
hits.  Set ``REPRO_VERIFY_MANIFEST=1`` to re-build and re-fingerprint every
trusted entry anyway (:class:`ManifestMismatchError` on disagreement).

This module deliberately does not import the runner, so the dependency flow
stays one-way: ``experiments.runner -> store -> core/graphs``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from ..core.batch import (
    compiled_auto_enabled,
    compiled_supported,
    compiled_threshold,
    supports_batched,
    trial_seeds,
)
from ..graphs.graph import Graph
from ..telemetry import span
from .artifacts import StoreError
from .keys import cell_key, dynamics_spec, graph_fingerprint, trial_cell_payload

if TYPE_CHECKING:  # imported for annotations only — the experiments package
    # imports this module at runtime, so a runtime import would be circular.
    from ..experiments.config import ExperimentConfig, GraphCase, ProtocolSpec

__all__ = [
    "CellPlan",
    "GraphStub",
    "ManifestMismatchError",
    "SweepCellPlan",
    "resolve_cell",
    "resolve_sweep_plans",
    "sweep_payload",
]


class ManifestMismatchError(StoreError):
    """A manifest-trusted graph record disagrees with an actual rebuild.

    Only raised in the ``REPRO_VERIFY_MANIFEST=1`` paranoia mode: normal
    operation never *needs* the check, because a manifest entry is only
    trusted when its recorded builder spec (family, params, builder version,
    case revision) matches the one recomputed today — a builder change
    without a version bump is the one hole, and this error is how the
    paranoia mode reports it.
    """


@dataclass(frozen=True)
class GraphStub:
    """A graph stand-in carrying everything key derivation needs — no CSR.

    Rides in a :class:`~repro.experiments.config.GraphCase` for cells whose
    fingerprint came from a trusted manifest:
    :func:`~repro.store.keys.graph_fingerprint` short-circuits on the
    ``trusted_fingerprint`` attribute, and the vertex count feeds the
    ``auto`` backend's compiled-threshold decision.  Anything that tries to
    *simulate* on a stub fails loudly (there are no adjacency arrays), which
    is exactly the contract: stubs are for cells the store already holds.
    """

    trusted_fingerprint: str
    name: str
    num_vertices: int
    num_edges: int


@dataclass
class CellPlan:
    """Everything needed to execute — or look up — one cell.

    ``kwargs`` is the protocol spec's keyword arguments with the
    ``"dynamics"`` entry removed (it travels separately in ``dynamics``,
    after the spec-level value has overridden any sweep-wide default), and
    ``backend`` is always resolved to ``"compiled"``, ``"batched"`` or
    ``"sequential"``.  The resolved backend is part of the cell payload:
    compiled cells draw from a different stream family than batched ones
    (CI-overlap equivalent, not bit-identical), so they are distinct
    addresses in the store.

    ``payload`` and ``key`` are computed lazily and cached: hashing the
    graph's CSR arrays and canonicalizing a dynamics spec is cheap next to a
    simulation but not free, and store-less runs (the overwhelmingly common
    hot path in tests and benchmarks) never need a key at all.
    """

    graph: Graph
    source: int
    protocol_name: str
    backend: str
    seeds: Tuple[int, ...]
    kwargs: Dict[str, Any]
    dynamics: Any
    max_rounds: Optional[int] = None
    record_history: bool = False

    @property
    def use_batched(self) -> bool:
        """True when the plan runs on the batched multi-trial backend."""
        return self.backend == "batched"

    @cached_property
    def payload(self) -> Dict[str, Any]:
        """The canonicalizable cell description (see ``trial_cell_payload``)."""
        return trial_cell_payload(
            graph=self.graph,
            source=self.source,
            protocol_name=self.protocol_name,
            protocol_kwargs=self.kwargs,
            dynamics=self.dynamics,
            seeds=self.seeds,
            max_rounds=self.max_rounds,
            record_history=self.record_history,
            backend=self.backend,
        )

    @cached_property
    def key(self) -> str:
        """The cell's content address in a result store."""
        with span("store.key", protocol=self.protocol_name):
            return cell_key(self.payload)


def resolve_cell(
    protocol_spec: "ProtocolSpec",
    case: "GraphCase",
    *,
    trials: int,
    base_seed: int,
    experiment_id: str = "adhoc",
    max_rounds: Optional[int] = None,
    record_history: bool = False,
    backend: str = "auto",
    dynamics: Any = None,
) -> CellPlan:
    """Resolve one (protocol spec, graph case) cell into its executable plan.

    Raises ``ValueError`` for an invalid trial count or backend name, exactly
    as :func:`~repro.experiments.runner.run_trial_set` does — callers that
    only derive keys get the same argument validation as callers that run.
    """
    if trials < 1:
        raise ValueError("trials must be at least 1")
    if backend not in ("auto", "compiled", "batched", "sequential"):
        raise ValueError(f"unknown backend {backend!r}")

    kwargs = dict(protocol_spec.kwargs)
    spec_dynamics = kwargs.pop("dynamics", None)
    if spec_dynamics is not None:
        dynamics = spec_dynamics

    if backend == "compiled":
        if not compiled_supported(protocol_spec.name, kwargs, dynamics=dynamics):
            raise ValueError(
                f"backend='compiled' does not support this cell "
                f"(protocol={protocol_spec.name!r}, dynamics or observer "
                f"tracking requested)"
            )
        resolved_backend = "compiled"
    elif backend == "auto" and (
        compiled_auto_enabled()
        and case.graph.num_vertices >= compiled_threshold()
        and compiled_supported(protocol_spec.name, kwargs, dynamics=dynamics)
    ):
        resolved_backend = "compiled"
    else:
        use_batched = backend == "batched" or (
            backend == "auto"
            and supports_batched(protocol_spec.name, protocol_spec.kwargs)
        )
        resolved_backend = "batched" if use_batched else "sequential"
    seeds = trial_seeds(
        base_seed,
        experiment_id,
        protocol_spec.seed_key,
        case.size_parameter,
        trials=trials,
    )
    return CellPlan(
        graph=case.graph,
        source=case.source,
        protocol_name=protocol_spec.name,
        backend=resolved_backend,
        seeds=tuple(seeds),
        kwargs=kwargs,
        dynamics=dynamics,
        max_rounds=max_rounds,
        record_history=record_history,
    )


@dataclass
class SweepCellPlan:
    """One cell of a sweep, in sweep order: its position, spec and plan.

    ``case_seed`` is the derived graph-construction seed of the cell's sweep
    point and ``builder`` the canonical builder spec (see
    :func:`repro.graphs.builders.builder_spec`) when the experiment's case
    builder declares one — together with the graph record they make the
    manifest entry self-certifying for warm-start trust.
    """

    index: int
    size_parameter: int
    protocol_label: str
    spec: "ProtocolSpec"
    budget: Optional[int]
    plan: CellPlan
    case_seed: Optional[int] = None
    builder: Optional[Dict[str, Any]] = None

    def manifest_entry(self) -> Dict[str, Any]:
        """The cell's row in a sweep manifest (journal ``manifest`` event).

        Beyond the farm's queue-rebuilding fields (``index``/``size``/
        ``protocol``/``key``) the entry records the trust triple of the
        zero-compute warm path: the case seed, the builder spec and the
        graph record (fingerprint, counts, name, source).  A plan resolved
        *from* a trusted manifest round-trips to the identical entry — its
        stub carries the same record — so re-recording a manifest never
        degrades it.
        """
        graph = self.plan.graph
        entry: Dict[str, Any] = {
            "index": self.index,
            "size": self.size_parameter,
            "protocol": self.protocol_label,
            "key": self.plan.key,
            "graph": {
                "fingerprint": graph_fingerprint(graph),
                "name": str(graph.name),
                "num_vertices": int(graph.num_vertices),
                "num_edges": int(graph.num_edges),
                "source": int(self.plan.source),
            },
        }
        if self.case_seed is not None:
            entry["case_seed"] = int(self.case_seed)
        if self.builder is not None:
            entry["builder"] = self.builder
        return entry


def _trusted_stub_case(
    entries: List[Dict[str, Any]],
    *,
    expected_builder: Dict[str, Any],
    case_seed: int,
    size_parameter: int,
) -> Optional["GraphCase"]:
    """Build a stub-backed case from manifest entries of one sweep point.

    Trust requires a complete graph record *and* that the entry's recorded
    builder spec and case seed match what resolution derives today — a
    builder-version (or case-revision) bump, a changed seed derivation or a
    foreign manifest all fail the comparison and fall back to a real build.
    """
    from ..experiments.config import GraphCase

    for entry in entries:
        graph = entry.get("graph")
        if not isinstance(graph, dict):
            continue
        if entry.get("builder") != expected_builder:
            continue
        if entry.get("case_seed") != case_seed:
            continue
        try:
            stub = GraphStub(
                trusted_fingerprint=str(graph["fingerprint"]),
                name=str(graph.get("name", "graph")),
                num_vertices=int(graph["num_vertices"]),
                num_edges=int(graph["num_edges"]),
            )
            source = int(graph["source"])
        except (KeyError, TypeError, ValueError):
            continue
        return GraphCase(graph=stub, source=source, size_parameter=size_parameter)
    return None


def resolve_sweep_plans(
    config: "ExperimentConfig",
    *,
    base_seed: int,
    sizes: Tuple[int, ...],
    trials: int,
    backend: str = "auto",
    dynamics: Any = None,
    manifest: Optional[Sequence[Dict[str, Any]]] = None,
) -> List[SweepCellPlan]:
    """Resolve every cell of a sweep, in the exact serial execution order.

    Walks sizes and protocols precisely as
    :func:`~repro.experiments.runner.run_experiment` does — same graph seeds
    (``derive_seed(base_seed, experiment_id, "graph", size)``), same round
    budgets, same spec iteration — so the plan keys here are the keys that
    sweep would compute.  This is the shared resolution step behind sweep
    submission (building a farm manifest), worker-side plan reconstruction
    (a leased key must re-resolve to the same plan), and any tooling that
    asks "what would this sweep run".

    ``manifest`` (a previous run's journal manifest entries, see
    :meth:`SweepCellPlan.manifest_entry`) turns on the zero-compute warm
    path: a sweep point whose recorded builder spec and case seed match
    today's derivation is planned around a :class:`GraphStub` with the
    recorded fingerprint instead of building the graph.  The graph is built
    only where trust fails — and, with ``REPRO_VERIFY_MANIFEST=1``, always,
    with the rebuild cross-checked against the record
    (:class:`ManifestMismatchError`).
    """
    from ..core.rng import derive_seed

    case_spec = getattr(config.graph_builder, "case_spec", None)
    verify = os.environ.get("REPRO_VERIFY_MANIFEST", "") == "1"
    by_size: Dict[int, List[Dict[str, Any]]] = {}
    for entry in manifest or ():
        if isinstance(entry, dict) and isinstance(entry.get("size"), int):
            by_size.setdefault(entry["size"], []).append(entry)

    plans: List[SweepCellPlan] = []
    index = 0
    for size_parameter in sizes:
        case_seed = derive_seed(base_seed, config.experiment_id, "graph", size_parameter)
        builder = case_spec(size_parameter, case_seed) if case_spec is not None else None
        case = None
        if builder is not None and size_parameter in by_size:
            case = _trusted_stub_case(
                by_size[size_parameter],
                expected_builder=builder,
                case_seed=case_seed,
                size_parameter=size_parameter,
            )
            if case is not None and verify:
                rebuilt = config.build_case(size_parameter, case_seed)
                stub = case.graph
                if (
                    graph_fingerprint(rebuilt.graph) != stub.trusted_fingerprint
                    or int(rebuilt.source) != int(case.source)
                ):
                    raise ManifestMismatchError(
                        f"manifest record for {config.experiment_id} size "
                        f"{size_parameter} does not match a rebuild: did a "
                        f"builder change land without a version bump?"
                    )
        if case is None:
            with span("graph.build", size=size_parameter):
                case = config.build_case(size_parameter, case_seed)
        budget = config.round_budget(size_parameter)
        for spec in config.protocols:
            plan = resolve_cell(
                spec,
                case,
                trials=trials,
                base_seed=base_seed,
                experiment_id=config.experiment_id,
                max_rounds=budget,
                backend=backend,
                dynamics=dynamics,
            )
            plans.append(
                SweepCellPlan(
                    index=index,
                    size_parameter=size_parameter,
                    protocol_label=spec.display_label,
                    spec=spec,
                    budget=budget,
                    plan=plan,
                    case_seed=case_seed,
                    builder=builder,
                )
            )
            index += 1
    return plans


def sweep_payload(
    config: "ExperimentConfig",
    *,
    base_seed: int,
    sizes: Tuple[int, ...],
    trials: int,
    backend: str,
    dynamics: Any = None,
) -> Dict[str, Any]:
    """Canonical description of a whole sweep — the journal's identity.

    Identifies the sweep by *what is asked for* (experiment id, seed, size
    sweep, trial count, backend, sweep-wide dynamics and the protocol
    labels), not by the per-cell keys: a resumed run must map to the same
    journal before any graph is built.
    """
    labels: List[str] = [spec.display_label for spec in config.protocols]
    return {
        "experiment_id": config.experiment_id,
        "base_seed": int(base_seed),
        "sizes": [int(size) for size in sizes],
        "trials": int(trials),
        "backend": backend,
        "dynamics": dynamics_spec(dynamics),
        "protocols": labels,
    }
