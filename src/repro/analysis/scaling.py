"""Growth-rate fitting: which ``f(n)`` best explains measured broadcast times.

The paper's claims are asymptotic (e.g. ``E[T_push] = Omega(n log n)`` on the
star, ``T_visitx = O(log n)`` on the double star).  To check the *shape* of a
measurement series ``(n_i, T_i)`` the experiments fit each candidate growth
function ``f`` by least squares on ``T ≈ c · f(n)`` and pick the candidate
with the smallest relative residual; a separate helper estimates the best-fit
exponent of a pure power law, which is convenient for distinguishing
polynomial from logarithmic growth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..theory.predictions import GROWTH_FUNCTIONS, growth_value

__all__ = ["GrowthFit", "fit_growth", "best_growth_model", "power_law_exponent", "ratio_trend"]


@dataclass(frozen=True)
class GrowthFit:
    """Least-squares fit of ``T ≈ c * f(n)`` for a named growth function."""

    growth: str
    constant: float
    relative_rmse: float
    r_squared: float

    def predict(self, n: float) -> float:
        """Predicted broadcast time at size ``n``."""
        return self.constant * growth_value(self.growth, n)


def fit_growth(
    sizes: Sequence[float], times: Sequence[float], growth: str
) -> GrowthFit:
    """Fit a single named growth function to the measurement series."""
    sizes = np.asarray(list(sizes), dtype=float)
    times = np.asarray(list(times), dtype=float)
    if sizes.size != times.size:
        raise ValueError("sizes and times must have equal length")
    if sizes.size < 2:
        raise ValueError("need at least two measurements to fit a growth model")
    basis = np.array([growth_value(growth, n) for n in sizes])
    if np.allclose(basis, 0.0):
        raise ValueError(f"growth function {growth!r} is degenerate on these sizes")
    constant = float(np.dot(basis, times) / np.dot(basis, basis))
    predictions = constant * basis
    residuals = times - predictions
    denom = np.maximum(np.abs(times), 1e-12)
    relative_rmse = float(np.sqrt(np.mean((residuals / denom) ** 2)))
    total_var = float(np.sum((times - times.mean()) ** 2))
    r_squared = 1.0 - float(np.sum(residuals**2)) / total_var if total_var > 0 else 1.0
    return GrowthFit(
        growth=growth,
        constant=constant,
        relative_rmse=relative_rmse,
        r_squared=r_squared,
    )


def best_growth_model(
    sizes: Sequence[float],
    times: Sequence[float],
    *,
    candidates: Optional[Sequence[str]] = None,
) -> GrowthFit:
    """Return the candidate growth function with the smallest relative RMSE."""
    names = list(candidates) if candidates is not None else list(GROWTH_FUNCTIONS)
    if not names:
        raise ValueError("need at least one candidate growth function")
    fits = [fit_growth(sizes, times, name) for name in names]
    return min(fits, key=lambda fit: fit.relative_rmse)


def power_law_exponent(sizes: Sequence[float], times: Sequence[float]) -> float:
    """Estimate ``beta`` in ``T ≈ c * n^beta`` by log-log linear regression.

    A measured exponent near 0 indicates (poly)logarithmic growth; near 1,
    linear growth; near 2/3, the ``n^{2/3}`` regime of Lemma 9.
    """
    sizes = np.asarray(list(sizes), dtype=float)
    times = np.asarray(list(times), dtype=float)
    if sizes.size != times.size or sizes.size < 2:
        raise ValueError("need two equal-length series with at least two points")
    if np.any(sizes <= 0) or np.any(times <= 0):
        raise ValueError("power-law fitting requires positive sizes and times")
    log_n = np.log(sizes)
    log_t = np.log(times)
    slope, _intercept = np.polyfit(log_n, log_t, deg=1)
    return float(slope)


def ratio_trend(
    sizes: Sequence[float],
    numerator_times: Sequence[float],
    denominator_times: Sequence[float],
) -> Dict[str, float]:
    """Describe how the ratio of two time series behaves as ``n`` grows.

    Returns the ratio at the smallest and largest size, the max/min ratio over
    the series, and the slope of ``log(ratio)`` against ``log n``.  Theorem 1
    predicts a bounded, roughly flat ratio for push vs visit-exchange on
    regular graphs; Lemma 9 predicts a ratio growing like ``log n`` for
    meet-exchange vs visit-exchange on the cycle-of-stars graph.
    """
    sizes = np.asarray(list(sizes), dtype=float)
    numerator = np.asarray(list(numerator_times), dtype=float)
    denominator = np.asarray(list(denominator_times), dtype=float)
    if not (sizes.size == numerator.size == denominator.size) or sizes.size < 2:
        raise ValueError("need three equal-length series with at least two points")
    if np.any(denominator <= 0):
        raise ValueError("denominator times must be positive")
    ratios = numerator / denominator
    slope, _ = np.polyfit(np.log(sizes), np.log(np.maximum(ratios, 1e-12)), deg=1)
    return {
        "first_ratio": float(ratios[0]),
        "last_ratio": float(ratios[-1]),
        "min_ratio": float(ratios.min()),
        "max_ratio": float(ratios.max()),
        "log_log_slope": float(slope),
    }
