"""Extensions in action: rumor pipelines and fault-tolerant agent populations.

Two scenarios beyond the paper's core model, both implemented in
``repro.extensions``:

1. **A rumor pipeline** — the setting that motivates the paper's
   stationary-start assumption: one agent population perpetually walks the
   graph while new rumors are injected every few rounds at random sources; we
   measure the per-rumor delivery latency.

2. **Agent churn and failures** — the fault-tolerance direction from the
   paper's open-problems section: agents die at a constant rate (plus one
   catastrophic failure that wipes out 80% of them mid-broadcast) while new
   agents are born at a proportional rate; we measure how much the broadcast
   time degrades.

Run with::

    python examples/fault_tolerant_agents.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.extensions import DynamicVisitExchange, MultiRumorVisitExchange, RumorInjection
from repro.graphs import random_regular_graph


def build_graph(n: int = 512):
    """A random regular graph in the paper's d = Theta(log n) regime."""
    degree = max(4, int(2 * np.log2(n)))
    if (n * degree) % 2:
        degree += 1
    return random_regular_graph(n, degree, np.random.default_rng(11))


def rumor_pipeline(graph) -> None:
    """Inject a new rumor every 5 rounds and report per-rumor latencies."""
    rng = np.random.default_rng(3)
    injections = [
        RumorInjection(round_index=5 * i, source=int(rng.integers(graph.num_vertices)), label=f"rumor-{i}")
        for i in range(10)
    ]
    result = MultiRumorVisitExchange().run(graph, injections, seed=5)

    rows = []
    for injection, latency in zip(result.injections, result.broadcast_times):
        rows.append([injection.label, injection.round_index, injection.source, latency])
    print(
        format_table(
            ["rumor", "injected at round", "source", "delivery latency (rounds)"],
            rows,
            title=f"Rumor pipeline on {graph.name} with {result.num_agents} shared agents",
        )
    )
    print(
        f"\nMean latency {result.mean_broadcast_time():.1f} rounds, max "
        f"{result.max_broadcast_time()} rounds — each rumor is delivered in "
        "logarithmic time even though the agents serve ten of them at once.\n"
    )


def churn_and_failures(graph) -> None:
    """Compare the static population with churned and failure-struck ones."""
    scenarios = [
        ("static population", DynamicVisitExchange(death_rate=0.0, birth_rate=0.0)),
        ("5% churn per round", DynamicVisitExchange(death_rate=0.05)),
        (
            "5% churn + 80% wipe-out at round 5",
            DynamicVisitExchange(death_rate=0.05, failure_round=5, failure_fraction=0.8),
        ),
    ]
    rows = []
    for label, simulator in scenarios:
        times = []
        min_population = None
        for seed in range(5):
            result = simulator.run(graph, 0, seed=seed)
            assert result.completed
            times.append(result.broadcast_time)
            min_population = (
                result.min_population
                if min_population is None
                else min(min_population, result.min_population)
            )
        rows.append([label, float(np.mean(times)), min(times), max(times), min_population])
    print(
        format_table(
            ["scenario", "mean rounds", "min", "max", "lowest population seen"],
            rows,
            title="Broadcast time under agent churn and failures",
        )
    )
    print(
        "\nAs the open-problems section of the paper suggests, a dynamic "
        "population in which births balance deaths tolerates both steady churn "
        "and a large one-off failure at a modest constant-factor cost."
    )


def main() -> None:
    graph = build_graph(512)
    rumor_pipeline(graph)
    churn_and_failures(graph)


if __name__ == "__main__":
    main()
