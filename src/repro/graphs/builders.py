"""Versioned graph-builder registry: the trust anchor for warm manifests.

A warm sweep wants to resolve its store cell keys *without building any
graph*: the keys only need the graph fingerprint, and a previous run's
sweep-journal manifest already recorded spec→fingerprint for every cell.
Trusting that record is only sound while "same builder description ⇒ same
instance" still holds, which is what this registry versions:

* every graph family in :mod:`repro.graphs` registers a ``(family,
  builder_version)`` pair next to its construction code;
* an experiment's case builder declares — via :func:`with_case_spec` — how a
  sweep point maps to builder parameters, yielding a canonical *builder
  spec* ``{"family", "version", "params", "case_revision"}``;
* the sweep journal stores that spec alongside the resulting fingerprint,
  and :func:`repro.store.orchestrator.resolve_sweep_plans` trusts a manifest
  entry only when the spec it recomputes today matches the recorded one
  bit for bit.

Bump a family's registered version whenever the construction algorithm
changes the instance it emits for the same parameters; bump an experiment's
``case_revision`` when its source-selection or parameter-derivation logic
changes.  Either bump makes every previously recorded spec mismatch, so the
warm path falls back to really building the graph — a stale manifest can
slow a run down, never corrupt it.  ``REPRO_VERIFY_MANIFEST=1`` adds a
paranoia mode that rebuilds anyway and cross-checks the fingerprint.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

__all__ = [
    "builder_spec",
    "builder_version",
    "register_builder",
    "registered_builders",
    "with_case_spec",
]

_REGISTRY: Dict[str, int] = {}


def register_builder(family: str, version: int) -> None:
    """Register (or re-register, idempotently) one graph family's version.

    Re-registering the same family with a *different* version raises — two
    modules disagreeing about a family's version would make manifest trust
    depend on import order.
    """
    version = int(version)
    if version < 1:
        raise ValueError(f"builder version must be >= 1, got {version}")
    existing = _REGISTRY.get(family)
    if existing is not None and existing != version:
        raise ValueError(
            f"builder family {family!r} already registered with version "
            f"{existing}, cannot re-register as {version}"
        )
    _REGISTRY[family] = version


def builder_version(family: str) -> int:
    """The registered version of one family (``KeyError`` if unregistered)."""
    try:
        return _REGISTRY[family]
    except KeyError:
        raise KeyError(f"graph builder family {family!r} is not registered") from None


def registered_builders() -> Dict[str, int]:
    """A snapshot of every registered ``family -> version`` pair."""
    return dict(_REGISTRY)


def builder_spec(
    family: str, params: Dict[str, Any], *, case_revision: int = 1
) -> Dict[str, Any]:
    """The canonical, JSON-round-trippable spec of one parameterized build.

    This dict is what sweep manifests persist and what a warm start compares
    against; keep ``params`` to plain ints/floats/strings/bools so equality
    survives a JSON round trip.
    """
    return {
        "family": str(family),
        "version": builder_version(family),
        "params": {str(k): params[k] for k in sorted(params)},
        "case_revision": int(case_revision),
    }


def with_case_spec(
    family: str,
    params_fn: Callable[[int, int], Dict[str, Any]],
    *,
    case_revision: int = 1,
) -> Callable:
    """Decorator attaching a ``case_spec(size, seed)`` hook to a case builder.

    ``params_fn(size_parameter, case_seed)`` must derive exactly the builder
    parameters the decorated function passes to the family's constructor
    (including the seed, for random families — deterministic families simply
    ignore it).  The attached hook lets
    :func:`repro.store.orchestrator.resolve_sweep_plans` describe the build
    without performing it.  Function attributes pickle by reference, so
    decorated builders remain usable with the process-parallel scheduler.
    """

    def decorate(fn: Callable) -> Callable:
        def case_spec(size_parameter: int, case_seed: int) -> Dict[str, Any]:
            return builder_spec(
                family,
                params_fn(int(size_parameter), int(case_seed)),
                case_revision=case_revision,
            )

        fn.case_spec = case_spec
        return fn

    return decorate
